//! # cfmerge — Bank-Conflict-Free GPU Mergesort (SPAA 2025 reproduction)
//!
//! Façade crate re-exporting the full reproduction of Berney & Sitchinava,
//! *Eliminating Bank Conflicts in GPU Mergesort* (SPAA 2025):
//!
//! * [`numtheory`] — GCDs, modular inverses, complete residue systems
//!   (Appendix A).
//! * [`gpu_sim`] — warp-synchronous shared-memory simulator with exact
//!   bank-conflict accounting (the DMM model of Section 2).
//! * [`mergepath`] — merge path partitioning, serial merges, sorting
//!   networks, CPU baselines.
//! * [`core`] — the paper's contributions: the load-balanced dual
//!   subsequence gather (Section 3), CF-Merge and the Thrust-style baseline
//!   mergesort pipelines (Section 5), and the generalized worst-case input
//!   construction (Section 4).
//! * [`algos`] — companion GPU algorithms on the same simulator:
//!   conflict-free scans, bitonic sort, radix sort (context baselines).
//!
//! ## Quickstart
//!
//! ```
//! use cfmerge::prelude::*;
//!
//! // Sort on the simulated GPU with both pipelines and compare conflicts.
//! let config = SortConfig::paper_e15_u512();
//! let input = InputSpec::UniformRandom { seed: 42 }.generate(1 << 12);
//!
//! let thrust = simulate_sort(&input, SortAlgorithm::ThrustMergesort, &config);
//! let cf = simulate_sort(&input, SortAlgorithm::CfMerge, &config);
//!
//! assert!(thrust.output.windows(2).all(|p| p[0] <= p[1]));
//! assert_eq!(thrust.output, cf.output);
//! // CF-Merge never touches two distinct words in one bank in one round:
//! assert_eq!(cf.profile.merge_bank_conflicts(), 0);
//! ```

#![forbid(unsafe_code)]

pub use cfmerge_algos as algos;
pub use cfmerge_core as core;
pub use cfmerge_gpu_sim as gpu_sim;
pub use cfmerge_mergepath as mergepath;
pub use cfmerge_numtheory as numtheory;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use cfmerge_core::gather::{dual_scan_block, CfLayout, ThreadSplit};
    pub use cfmerge_core::inputs::InputSpec;
    pub use cfmerge_core::recovery::{
        resume_sort_robust, simulate_sort_robust, simulate_sort_robust_checkpointed,
        RecoveryCounters, RecoveryReport, RobustConfig, RobustSortRun, SortService,
    };
    pub use cfmerge_core::resilience::{
        AdmissionConfig, BreakerConfig, CheckpointPolicy, HedgeConfig, ResilienceConfig,
        RetryBudgetConfig, ServiceCounters, ShedPolicy, SortCheckpoint,
    };
    pub use cfmerge_core::sort::{
        simulate_sort, simulate_sort_keys, simulate_sort_traced, sort_pairs_stable,
        try_simulate_sort, Degradation, SortAlgorithm, SortConfig, SortError, SortKey, SortRun,
        TracedSortRun,
    };
    pub use cfmerge_core::worst_case::WorstCaseBuilder;
    pub use cfmerge_gpu_sim::device::Device;
    pub use cfmerge_gpu_sim::fault::{FaultPlan, FaultSpec};
    pub use cfmerge_gpu_sim::profiler::KernelProfile;
    pub use cfmerge_gpu_sim::timing::TimingModel;
    pub use cfmerge_gpu_sim::trace::{ConflictForensics, SortTrace, Tracer};
}
