//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides a
//! small wall-clock benchmark harness with criterion's spelling: the
//! [`Criterion`] builder, [`BenchmarkGroup`]s with throughput annotation,
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. It reports mean/min/max time per iteration (and derived
//! throughput) as plain text — no statistical regression analysis, HTML
//! reports, or outlier classification.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work performed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Total time budget for measurement of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up (and calibration) time budget for one benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotate subsequent benchmarks with per-iteration work.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Calibrate: grow iterations-per-sample until one sample is long
        // enough to time reliably within the warm-up budget.
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            let long_enough = b.elapsed >= Duration::from_micros(200);
            if (long_enough && Instant::now() >= warm_up_end) || iters >= 1 << 30 {
                break;
            }
            if !long_enough {
                iters = iters.saturating_mul(2);
            }
        }
        // Measure: fixed iteration count per sample, as many samples as
        // fit the budget (at least 2, at most the configured count).
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let measure_end = Instant::now() + self.measurement_time;
        for sample in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
            if sample >= 1 && Instant::now() >= measure_end {
                break;
            }
        }
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let min = per_iter_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter_ns.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let thrpt = self.throughput.map(|t| {
            let (amount, unit) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            format!("  thrpt: {}", scaled_rate(amount * 1e9 / mean, unit))
        });
        println!(
            "{}/{:<28} time: [{} {} {}]{}",
            self.name,
            id,
            scaled_time(min),
            scaled_time(mean),
            scaled_time(max),
            thrpt.unwrap_or_default(),
        );
        self
    }

    /// End the group (printing is per-benchmark; this is a no-op hook).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it the harness-chosen number of times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn scaled_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn scaled_rate(per_sec: f64, unit: &str) -> String {
    if per_sec < 1e3 {
        format!("{per_sec:.2} {unit}")
    } else if per_sec < 1e6 {
        format!("{:.2} K{unit}", per_sec / 1e3)
    } else if per_sec < 1e9 {
        format!("{:.2} M{unit}", per_sec / 1e6)
    } else {
        format!("{:.2} G{unit}", per_sec / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups (cargo-bench CLI args are
/// accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); ignore them.
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts_iters() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.throughput(Throughput::Elements(4));
            g.bench_function("counter", |b| {
                b.iter(|| {
                    calls += 1;
                    black_box(calls)
                })
            });
            g.finish();
        }
        assert!(calls > 0);
    }

    #[test]
    fn formatting_scales() {
        assert_eq!(scaled_time(12.0), "12.00 ns");
        assert_eq!(scaled_time(1500.0), "1.50 µs");
        assert_eq!(scaled_rate(2.5e7, "elem/s"), "25.00 Melem/s");
    }
}
