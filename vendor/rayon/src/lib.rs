//! Offline shim for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no crates.io access, so this crate maps
//! rayon's data-parallel spelling onto **sequential** std iterators: every
//! `par_*` entry point returns the corresponding `std` iterator, and the
//! adaptors the workspace chains on top (`zip`, `enumerate`, `map`,
//! `collect`, `for_each`) are the ordinary [`Iterator`] methods.
//!
//! This preserves rayon's semantics exactly — rayon guarantees the same
//! observable results as sequential execution for these pipelines — and
//! the simulator's DESIGN.md already notes the target host is single-core,
//! so no local parallelism is lost. Swapping the real rayon back in is a
//! one-line change in the workspace manifest.

#![forbid(unsafe_code)]

/// Drop-in for `rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// Sequential stand-ins for rayon's parallel iterator entry points.
pub mod iter {
    /// `par_chunks` on slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for rayon's `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_chunks_mut` on slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for rayon's `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// `into_par_iter` on owned collections and ranges.
    pub trait IntoParallelIterator {
        /// The sequential iterator standing in for the parallel one.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterated item type.
        type Item;
        /// Sequential stand-in for rayon's `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter` on borrowed collections.
    pub trait IntoParallelRefIterator<'a> {
        /// The sequential iterator standing in for the parallel one.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterated item type.
        type Item: 'a;
        /// Sequential stand-in for rayon's `par_iter`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: 'a> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        type Item = <&'a C as IntoIterator>::Item;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_chunks_matches_chunks() {
        let v: Vec<u32> = (0..10).collect();
        let sums: Vec<u32> = v.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }

    #[test]
    fn par_chunks_mut_mutates() {
        let mut v = vec![3u32, 1, 2, 7, 5, 6];
        v.par_chunks_mut(3).for_each(<[u32]>::sort);
        assert_eq!(v, vec![1, 2, 3, 5, 6, 7]);
    }

    #[test]
    fn zip_and_collect_work() {
        let a = vec![1u32, 2, 3];
        let mut out = vec![0u32; 3];
        a.par_iter()
            .zip(out.par_chunks_mut(1))
            .enumerate()
            .for_each(|(i, (x, o))| o[0] = x + i as u32);
        assert_eq!(out, vec![1, 3, 5]);
    }

    #[test]
    fn into_par_iter_on_ranges() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 1 + 1, || "x");
        assert_eq!((a, b), (2, "x"));
    }
}
