//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the property-testing surface the repository's tests rely
//! on: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`strategy::Just`], [`strategy::any`],
//! [`collection::vec`], `ProptestConfig::with_cases`, and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from upstream, deliberate for a zero-dependency build:
//!
//! * **No shrinking.** A failing case panics with the assertion message;
//!   inputs are reproducible because every test derives its RNG seed from
//!   the test name (FNV-1a), so failures replay identically run to run.
//! * **Default case count is 64** (upstream: 256). The heavyweight suites
//!   in this repository already pin their own counts via
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

#![forbid(unsafe_code)]

/// Runner configuration and deterministic RNG plumbing.
pub mod test_runner {
    use rand::SeedableRng;

    /// The RNG driving value generation (deterministic per test).
    pub type TestRng = rand::rngs::SmallRng;

    /// Runner configuration; only `cases` is honoured by this shim.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic RNG for a named test (FNV-1a over the name).
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy for the full domain of `T` (see [`any`]).
    #[derive(Clone, Debug)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Uniform values over the whole domain of `T`.
    pub fn any<T: rand::Standard>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Things usable as the size argument of [`vec`].
    pub trait SizeRange {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Vectors of `element`-generated values with length drawn from
    /// `size` (a fixed `usize` or a range).
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert a condition inside a [`proptest!`] property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a [`proptest!`] property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test running `body` over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat =
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0usize..=4, f in 0.25f64..=0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn flat_map_threads_values(
            pair in (1usize..=8).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..10, n)))
        ) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn map_applies(v in crate::collection::vec(any::<u32>(), 0..16).prop_map(|v| v.len())) {
            prop_assert!(v < 16);
        }

        #[test]
        fn trailing_comma_and_mut_patterns(mut v in crate::collection::vec(0u32..100, 1..20),) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn seeds_differ_by_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("alpha");
        let mut b = crate::test_runner::rng_for("beta");
        let sa: Vec<u32> = (0..8).map(|_| (0u32..1000).generate(&mut a)).collect();
        let sb: Vec<u32> = (0..8).map(|_| (0u32..1000).generate(&mut b)).collect();
        assert_ne!(sa, sb);
    }
}
