//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors minimal, API-compatible implementations of its
//! few external dependencies (see `vendor/README.md`). This crate provides:
//!
//! * [`rngs::SmallRng`] — a small, fast, deterministic PRNG
//!   (xoshiro256++, the same family real `rand` uses for `SmallRng`).
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion, so seeds
//!   produce well-distributed independent streams.
//! * [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`] over the
//!   integer and float types the repository samples.
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! The streams are **not** bit-compatible with upstream `rand`; every use
//! in this repository treats seeds as opaque reproducibility handles, so
//! only determinism and statistical quality matter.

#![forbid(unsafe_code)]

/// Core RNG interface: a source of random `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`]. Generic over the output type
/// (rather than using an associated type) so integer literals in a range
/// infer their type from the call site, as with upstream `rand`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let r = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(r)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-domain inclusive range.
                    return <$t as Standard>::sample(rng);
                }
                let r = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(r)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the family
    /// upstream `rand` uses for its `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion (Vigna's recommended seeding).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0..=5u64);
            assert!(y <= 5);
            let f = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&f));
            let n: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_u32_gen_varies() {
        let mut rng = SmallRng::seed_from_u64(3);
        let vals: Vec<u32> = (0..64).map(|_| rng.gen()).collect();
        let distinct: std::collections::BTreeSet<u32> = vals.iter().copied().collect();
        assert!(distinct.len() > 60, "poor entropy: {distinct:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
