//! Hazard-injection suite for the dynamic kernel sanitizer: seeded racy,
//! divergent, out-of-bounds, and uninitialized-read kernels MUST be
//! flagged with the right hazard kind and forensics, while the shipping
//! pipelines MUST come back clean on worst-case and random inputs.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{simulate_sort_checked, SortAlgorithm, SortConfig};
use cfmerge::gpu_sim::check::{Finding, Hazard, Sanitizer};
use cfmerge::gpu_sim::{BankModel, BlockSim, NullTracer, PhaseClass};

fn block(u: usize, w: u32, len: usize) -> BlockSim<u32, NullTracer, Sanitizer> {
    BlockSim::with_checker(BankModel::new(w), u, len, NullTracer, Sanitizer::new())
}

fn findings(b: BlockSim<u32, NullTracer, Sanitizer>) -> Vec<Finding> {
    let (_, _, ck) = b.finish_checked();
    ck.into_findings()
}

#[test]
fn write_write_race_is_flagged_with_forensics() {
    let mut b = block(8, 8, 32);
    b.phase(PhaseClass::Sort, |tid, lane| {
        lane.st(5, tid as u32); // every lane stores the same word
    });
    let found = findings(b);
    let races: Vec<_> =
        found.iter().filter(|f| matches!(f.hazard, Hazard::WriteWriteRace { .. })).collect();
    assert!(!races.is_empty(), "seeded write-write race must be flagged");
    for f in races {
        assert_eq!(f.addr, Some(5));
        assert_eq!(f.class, PhaseClass::Sort);
        assert_eq!(f.warp, 0);
    }
}

#[test]
fn write_then_read_race_is_flagged() {
    let mut b = block(8, 8, 32);
    b.phase(PhaseClass::Merge, |tid, lane| {
        if tid == 0 {
            lane.st(3, 99);
        } else {
            let _ = lane.ld(3); // no barrier between the store and these
        }
    });
    let found = findings(b);
    assert!(
        found.iter().any(|f| matches!(f.hazard, Hazard::ReadWriteRace { .. }) && f.addr == Some(3)),
        "seeded write→read race must be flagged: {found:?}"
    );
}

#[test]
fn read_then_write_race_is_flagged() {
    let mut b = block(8, 8, 32);
    b.phase(PhaseClass::LoadTile, |tid, lane| {
        for r in 0..4 {
            lane.st(r * 8 + tid, 1); // initialize the tile
        }
    });
    b.phase(PhaseClass::Merge, |tid, lane| {
        if tid < 7 {
            let _ = lane.ld(3);
        } else {
            lane.st(3, 42); // overwrites a word lanes 0..6 just read
        }
    });
    let found = findings(b);
    assert!(
        found.iter().any(|f| matches!(f.hazard, Hazard::ReadWriteRace { .. }) && f.addr == Some(3)),
        "seeded read→write race must be flagged: {found:?}"
    );
}

#[test]
fn shared_oob_is_flagged_and_suppressed() {
    let mut b = block(8, 8, 16);
    let mut got = [0u32; 8];
    b.phase(PhaseClass::Other, |tid, lane| {
        got[tid] = lane.ld(999); // far past the 16-word tile
    });
    // The faulty load is suppressed (yields the default), not a crash.
    assert!(got.iter().all(|&v| v == 0));
    let found = findings(b);
    let oob: Vec<_> = found
        .iter()
        .filter(|f| matches!(f.hazard, Hazard::SharedOutOfBounds { len: 16, store: false }))
        .collect();
    assert_eq!(oob.len(), 8, "every lane's OOB load flagged once: {found:?}");
    assert!(oob.iter().all(|f| f.addr == Some(999)));
}

#[test]
fn shared_oob_store_is_flagged() {
    let mut b = block(8, 8, 16);
    b.phase(PhaseClass::Other, |tid, lane| {
        if tid == 2 {
            lane.st(16, 7); // one past the end
        } else {
            lane.st(tid, 7);
        }
    });
    let found = findings(b);
    assert!(found.iter().any(|f| matches!(
        f.hazard,
        Hazard::SharedOutOfBounds { len: 16, store: true }
    ) && f.tid == 2
        && f.addr == Some(16)));
}

#[test]
fn global_oob_is_flagged_and_suppressed() {
    let src = vec![1u32; 10];
    let mut b = block(8, 8, 16);
    b.phase(PhaseClass::LoadTile, |tid, lane| {
        let v = lane.ld_global(&src, tid + 8); // lanes 2.. run off the end
        lane.st(tid, v);
    });
    let found = findings(b);
    let oob: Vec<_> = found
        .iter()
        .filter(|f| matches!(f.hazard, Hazard::GlobalOutOfBounds { len: 10, store: false }))
        .collect();
    assert_eq!(oob.len(), 6, "lanes 2..8 read global[10..16]: {found:?}");
}

#[test]
fn uninitialized_read_is_flagged_once_per_word() {
    let mut b = block(8, 8, 32);
    b.phase(PhaseClass::Sort, |tid, lane| {
        if tid == 0 {
            let _ = lane.ld(30); // never stored by anyone
            let _ = lane.ld(30); // second read of the same word: no repeat
        } else {
            lane.st(tid, 5);
        }
    });
    let found = findings(b);
    let uninit: Vec<_> = found.iter().filter(|f| f.hazard == Hazard::UninitializedRead).collect();
    assert_eq!(uninit.len(), 1, "{found:?}");
    assert_eq!(uninit[0].addr, Some(30));
    assert_eq!(uninit[0].tid, 0);
}

#[test]
fn divergence_is_flagged_outside_search() {
    let mut b = block(8, 8, 32);
    b.phase(PhaseClass::LoadTile, |tid, lane| {
        for r in 0..4 {
            lane.st(r * 8 + tid, 1);
        }
    });
    b.phase(PhaseClass::Merge, |tid, lane| {
        let _ = lane.ld(tid);
        if tid == 0 {
            let _ = lane.ld(8 + tid); // lane 0 issues one extra load
        }
    });
    let found = findings(b);
    assert!(
        found.iter().any(|f| matches!(
            f.hazard,
            Hazard::Divergence { space: "shared", min: 1, max: 2, .. }
        ) && f.class == PhaseClass::Merge),
        "unequal per-lane access counts in a data-movement phase must be flagged: {found:?}"
    );
}

#[test]
fn search_divergence_is_exempt_by_default() {
    let mut b = block(8, 8, 32);
    b.phase(PhaseClass::LoadTile, |tid, lane| {
        for r in 0..4 {
            lane.st(r * 8 + tid, 1);
        }
    });
    // Merge-path-style predicated probing: trip count varies per lane.
    b.phase(PhaseClass::Search, |tid, lane| {
        for probe in 0..=tid {
            let _ = lane.ld(probe);
        }
    });
    let found = findings(b);
    assert!(found.is_empty(), "Search is divergence-exempt by default: {found:?}");
}

#[test]
fn search_exemption_can_be_revoked() {
    let mut ck = Sanitizer::new();
    ck.set_divergence_exempt(PhaseClass::Search, false);
    let mut b = BlockSim::<u32, NullTracer, Sanitizer>::with_checker(
        BankModel::new(8),
        8,
        32,
        NullTracer,
        ck,
    );
    b.phase(PhaseClass::LoadTile, |tid, lane| {
        for r in 0..4 {
            lane.st(r * 8 + tid, 1);
        }
    });
    b.phase(PhaseClass::Search, |tid, lane| {
        for probe in 0..=tid {
            let _ = lane.ld(probe);
        }
    });
    let found = findings(b);
    assert!(
        found
            .iter()
            .any(|f| matches!(f.hazard, Hazard::Divergence { .. }) && f.class == PhaseClass::Search),
        "with the exemption revoked the same kernel must be flagged"
    );
}

#[test]
fn well_formed_kernel_is_clean() {
    let mut b = block(8, 8, 32);
    b.phase(PhaseClass::LoadTile, |tid, lane| {
        for r in 0..4 {
            lane.st(r * 8 + tid, (r * 8 + tid) as u32);
        }
    });
    b.phase(PhaseClass::StoreTile, |tid, lane| {
        for r in 0..4 {
            let _ = lane.ld(r * 8 + tid);
        }
    });
    assert!(findings(b).is_empty());
}

/// The shipping pipelines must be hazard-free on the adversarial inputs
/// that maximize their bank conflicts — conflicts cost time but are not
/// hazards — and on random/degenerate inputs, for both parameter regimes.
#[test]
fn shipping_pipelines_are_hazard_free() {
    let w = 32usize;
    for (e, u) in [(15usize, 64usize), (16, 64), (17, 64)] {
        let config = SortConfig::with_params(SortParams::new(e, u));
        let n = 4 * e * u;
        for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
            for spec in [
                InputSpec::WorstCase { w, e, u },
                InputSpec::UniformRandom { seed: 42 },
                InputSpec::FewDistinct { seed: 1, distinct: 2 },
            ] {
                let input = spec.generate(n);
                let checked = simulate_sort_checked(&input, algo, &config);
                assert!(
                    checked.is_clean(),
                    "{} E={e} u={u} {}:\n{}",
                    algo.label(),
                    spec.label(),
                    checked.report()
                );
                let mut expect = input;
                expect.sort_unstable();
                assert_eq!(checked.run.output, expect, "{} E={e} u={u}", algo.label());
            }
        }
    }
}
