//! Per-phase conflict attribution across the two pipelines — the
//! simulator-level version of the paper's `nvprof` check: CF-Merge's
//! merge and gather phases are conflict-free on random inputs while the
//! Thrust baseline's are not, and the tracer agrees with the profiler.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{
    simulate_sort, simulate_sort_traced, SortAlgorithm, SortConfig, TracedSortRun,
};
use cfmerge::gpu_sim::profiler::PhaseClass;

const N_TILES: usize = 8;

fn run(params: SortParams, algo: SortAlgorithm, seed: u64) -> cfmerge::core::sort::SortRun {
    let cfg = SortConfig::with_params(params);
    let input = InputSpec::UniformRandom { seed }.generate(N_TILES * params.tile());
    simulate_sort(&input, algo, &cfg)
}

#[test]
fn cf_merge_has_zero_merge_and_gather_conflicts_on_random_inputs() {
    for params in [SortParams::e15_u512(), SortParams::e17_u256()] {
        for seed in [11u64, 12, 13] {
            let cf = run(params, SortAlgorithm::CfMerge, seed);
            let merge = cf.profile.phase(PhaseClass::Merge).bank_conflicts();
            let gather = cf.profile.phase(PhaseClass::Gather).bank_conflicts();
            assert_eq!(merge, 0, "E={} seed={seed}: CF merge-phase conflicts", params.e);
            assert_eq!(gather, 0, "E={} seed={seed}: CF gather-phase conflicts", params.e);
        }
    }
}

#[test]
fn thrust_baseline_does_conflict_in_its_merge_phase() {
    for params in [SortParams::e15_u512(), SortParams::e17_u256()] {
        let thrust = run(params, SortAlgorithm::ThrustMergesort, 11);
        assert!(
            thrust.profile.phase(PhaseClass::Merge).bank_conflicts() > 0,
            "E={}: Thrust merge phase unexpectedly conflict-free — the
             comparison with CF-Merge would be vacuous",
            params.e
        );
    }
}

#[test]
fn tracer_conflict_rounds_agree_with_the_profiler() {
    // The tracer's per-round forensic record and the profiler's aggregate
    // counters are computed independently; they must tell the same story.
    let params = SortParams::new(15, 128);
    let cfg = SortConfig::with_params(params);
    let input = InputSpec::UniformRandom { seed: 99 }.generate(N_TILES * params.tile());

    let thrust: TracedSortRun = simulate_sort_traced(&input, SortAlgorithm::ThrustMergesort, &cfg);
    let cf: TracedSortRun = simulate_sort_traced(&input, SortAlgorithm::CfMerge, &cfg);

    // Same outputs and profiles as the untraced run (tracing is passive).
    let untraced = simulate_sort(&input, SortAlgorithm::ThrustMergesort, &cfg);
    assert_eq!(thrust.run.output, untraced.output);
    assert_eq!(thrust.run.profile.merge_bank_conflicts(), untraced.profile.merge_bank_conflicts());

    assert!(thrust.trace.conflict_rounds() > 0, "tracer saw no Thrust conflicts");
    assert_eq!(cf.run.profile.merge_bank_conflicts(), 0);
    // CF-Merge: no conflict round in any merge/gather phase (blocksort's
    // rank-layout stores may legitimately conflict, so filter by class).
    let forensics = cf.trace.forensics();
    for (kernel, _, round) in &forensics.worst {
        assert!(
            round.class != PhaseClass::Merge && round.class != PhaseClass::Gather,
            "CF-Merge recorded a {:?} conflict round in {kernel}",
            round.class
        );
    }
}
