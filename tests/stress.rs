//! Larger-scale stress tests. These run with access counting disabled
//! (pure correctness) so they stay fast enough for CI; the `--ignored`
//! one exercises a paper-scale size.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{simulate_sort, SortAlgorithm, SortConfig};

fn fast_cfg(params: SortParams) -> SortConfig {
    let mut cfg = SortConfig::with_params(params);
    cfg.count_accesses = false;
    cfg
}

#[test]
fn quarter_million_keys_both_pipelines() {
    let n = 1 << 18;
    let input = InputSpec::UniformRandom { seed: 0x57E5 }.generate(n);
    let mut expect = input.clone();
    expect.sort_unstable();
    for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
        let run = simulate_sort(&input, algo, &fast_cfg(SortParams::e15_u512()));
        assert_eq!(run.output, expect, "{algo:?}");
    }
}

#[test]
fn worst_case_input_at_scale_still_sorts() {
    let params = SortParams::e15_u512();
    let n = 64 * params.tile();
    let input = InputSpec::worst_case(params).generate(n);
    let run = simulate_sort(&input, SortAlgorithm::ThrustMergesort, &fast_cfg(params));
    assert_eq!(run.output, (0..n as u32).collect::<Vec<_>>());
}

/// Paper-scale size (n = 2^21·15 ≈ 31M keys would take minutes even
/// uncounted; 2^20·15 ≈ 15.7M is a solid stress point). Run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "multi-minute at debug opt levels; run in release"]
fn sixteen_million_keys() {
    let params = SortParams::e15_u512();
    let n = (1 << 20) * params.e;
    let input = InputSpec::UniformRandom { seed: 0xB16 }.generate(n);
    let mut expect = input.clone();
    expect.sort_unstable();
    let run = simulate_sort(&input, SortAlgorithm::CfMerge, &fast_cfg(params));
    assert_eq!(run.output, expect);
}
