//! Golden-file pin for the cluster report: a two-device cluster loses a
//! device mid-batch and every interrupted job must complete via
//! checkpoint migration — with zero corrupted outputs — and the report
//! (outcomes, counters, per-tenant SLOs, per-device summaries) must
//! serialize byte-for-byte to the committed golden file.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test cluster_report`
//! after an intentional schema change.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::recovery::RobustConfig;
use cfmerge::core::resilience::{
    ClusterConfig, ClusterService, DeviceFaultEvent, DeviceFaultKind, DeviceFaultPlan,
    ServiceCounters,
};
use cfmerge::core::sort::{SortAlgorithm, SortConfig};
use cfmerge::core::verify::verify_sorted_permutation;
use cfmerge_json::{FromJson, Json, ToJson};

fn rcfg() -> RobustConfig {
    RobustConfig::new(SortConfig::with_params(SortParams::new(5, 32)))
}

/// The pinned batch: six jobs of mixed sizes from two tenants, all
/// submitted up front.
fn submit_batch(cluster: &mut ClusterService) -> Vec<Vec<u32>> {
    let params = SortParams::new(5, 32);
    let mut inputs = Vec::new();
    for (i, tiles) in [4usize, 8, 2, 6, 3, 8].iter().enumerate() {
        let n = tiles * params.tile() + i;
        let input = InputSpec::UniformRandom { seed: 0xC1_0C4A ^ ((i as u64) << 8) }.generate(n);
        let tenant = if i % 2 == 0 { "tenant-a" } else { "tenant-b" };
        cluster.submit_at(
            &format!("golden/{tenant}/job-{i}"),
            tenant,
            Default::default(),
            0.0,
            input.clone(),
            SortAlgorithm::CfMerge,
            cfmerge::gpu_sim::fault::FaultPlan::none(),
            None,
        );
        inputs.push(input);
    }
    inputs
}

#[test]
fn cluster_report_matches_golden_file() {
    // Pass 1 (fault-free): find when each device is mid-job so the kill
    // lands while both devices hold in-flight work. Deterministic, so
    // the derived crash time is as pinned as a literal.
    let mut probe = ClusterService::new(ClusterConfig::homogeneous(2, rcfg()));
    submit_batch(&mut probe);
    let fault_free = probe.run();
    let victim = fault_free
        .outcomes
        .iter()
        .filter(|o| o.result.is_ok())
        .max_by(|a, b| a.completed_s.total_cmp(&b.completed_s))
        .expect("fault-free batch verifies");
    let exec_s = victim.result.as_ref().expect("ok").run.simulated_seconds;
    let crash_s = victim.completed_s - 0.5 * exec_s;
    let dead = victim.device.expect("ran on a device");

    // Pass 2: the same batch with the device killed mid-batch.
    let mut cfg = ClusterConfig::homogeneous(2, rcfg());
    cfg.faults = DeviceFaultPlan::from_events(vec![DeviceFaultEvent {
        at_s: crash_s,
        device: dead,
        kind: DeviceFaultKind::Crash,
    }]);
    let mut cluster = ClusterService::new(cfg);
    let inputs = submit_batch(&mut cluster);
    let report = cluster.run();

    // The scenario must actually exercise failover, and failover must be
    // lossless: every job verified, zero corrupted outputs, zero losses.
    assert!(report.counters.migrations >= 1, "the kill must interrupt in-flight work");
    assert_eq!(report.counters.device_crashes, 1);
    assert_eq!(report.counters.device_lost, 0, "migration must rescue every interrupted job");
    assert_eq!(report.counters.migrations_failed, 0);
    assert_eq!(report.counters.verified_ok, inputs.len() as u64);
    for (input, o) in inputs.iter().zip(&report.outcomes) {
        let run = o.result.as_ref().expect("every job completes");
        verify_sorted_permutation(input, &run.run.output)
            .unwrap_or_else(|f| panic!("{}: corrupted output after migration: {f}", o.label));
    }
    let migrated = report.outcomes.iter().find(|o| o.migrations > 0).expect("a migrated job");
    assert_ne!(migrated.device, Some(dead), "the migrated job finished on the survivor");

    let got = report.to_json().to_string_pretty();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/cluster_report.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &got).expect("bless golden file");
    }
    let want = std::fs::read_to_string(golden_path).unwrap_or_else(|e| {
        panic!("missing golden file {golden_path}: {e} (run with UPDATE_GOLDEN=1 to create it)")
    });
    assert_eq!(
        got.trim(),
        want.trim(),
        "cluster report drifted from the golden file; if the change is\n\
         intentional, regenerate tests/golden/cluster_report.json"
    );

    // Round-trip: the counters embedded in the golden document parse
    // back, cluster-era fields included.
    let parsed = Json::parse(&want).expect("golden file parses");
    let counters =
        ServiceCounters::from_json(parsed.req("counters").unwrap()).expect("counters round-trip");
    assert_eq!(counters, report.counters);
    assert_eq!(counters.migrations, report.counters.migrations);
}
