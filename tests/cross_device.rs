//! Device-independence of the paper's qualitative conclusions: the
//! gather stays conflict-free and CF-Merge stays worst-case-immune on a
//! very different device (A100-class Ampere), not just the paper's
//! RTX 2080 Ti.

use cfmerge::core::analysis::check_registry_on;
use cfmerge::core::cert::device_profiles;
use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{simulate_sort, SortAlgorithm, SortConfig};
use cfmerge::gpu_sim::check::BankShape;
use cfmerge::gpu_sim::device::Device;
use cfmerge::gpu_sim::occupancy::{mergesort_regs_estimate, occupancy, BlockResources};
use cfmerge::gpu_sim::timing::TimingModel;

fn ampere_cfg(params: SortParams) -> SortConfig {
    SortConfig {
        params,
        device: Device::a100_like(),
        timing: TimingModel::rtx2080ti_like(),
        count_accesses: true,
    }
}

#[test]
fn conclusions_hold_on_ampere_class_device() {
    let params = SortParams::e15_u512();
    let cfg = ampere_cfg(params);
    let n = 16 * params.tile();
    let worst = InputSpec::worst_case(params).generate(n);
    let random = InputSpec::UniformRandom { seed: 0xA100 }.generate(n);

    let tw = simulate_sort(&worst, SortAlgorithm::ThrustMergesort, &cfg);
    let tr = simulate_sort(&random, SortAlgorithm::ThrustMergesort, &cfg);
    let cw = simulate_sort(&worst, SortAlgorithm::CfMerge, &cfg);
    let cr = simulate_sort(&random, SortAlgorithm::CfMerge, &cfg);

    // Conflict counts are device-independent for fixed w = 32 (exact,
    // not modeled): same attack, same immunity.
    assert!(tw.profile.merge_bank_conflicts() > 2 * tr.profile.merge_bank_conflicts());
    assert_eq!(cw.profile.merge_bank_conflicts(), 0);
    assert_eq!(cr.profile.merge_bank_conflicts(), 0);

    // Modeled ordering: the baseline still loses on worst case; CF is
    // still input-independent.
    assert!(tw.simulated_seconds > tr.simulated_seconds);
    let ratio = cw.simulated_seconds / cr.simulated_seconds;
    assert!((0.9..1.1).contains(&ratio), "CF worst/random on Ampere: {ratio}");
    assert_eq!(tw.output, cw.output);
}

#[test]
fn worst_case_immunity_does_not_transfer_to_fused_64bit_banks() {
    // The paper's conflict-freedom proof is for `w` banks of one 32-bit
    // word each. On a Kepler-style device whose banks fuse adjacent
    // words into 64-bit rows, the coprime layout's guarantee *changes
    // qualitatively* — and the simulator, the prover, and the registry
    // must all agree on that, rather than exporting the w=32 conclusion
    // to a shape it was never proved for.
    let params = SortParams::new(15, 64);
    let cfg = SortConfig {
        params,
        device: Device::kepler_64bit_like(),
        timing: TimingModel::rtx2080ti_like(),
        count_accesses: true,
    };
    let n = 8 * params.tile();
    let worst = InputSpec::worst_case(params).generate(n);

    let cw = simulate_sort(&worst, SortAlgorithm::CfMerge, &cfg);
    let mut expect = worst.clone();
    expect.sort_unstable();
    assert_eq!(cw.output, expect, "fused banks change cost, never correctness");

    // Dynamically: the CF pipeline records shared-memory conflicts under
    // fused banks (zero on every 32-bit-bank device, see
    // `conclusions_hold_on_ampere_class_device`).
    let total_conflicts = cw.profile.total_bank_conflicts();
    assert!(
        total_conflicts > 0,
        "64-bit rows must surface conflicts in the CF pipeline (saw {total_conflicts})"
    );

    // Statically: the registry's verdict set degrades in the same
    // direction — strictly fewer conflict-free certificates than the
    // 32-bit shape, but every phase still gets a *decided* verdict (the
    // fused-exhaustive strategies cover the shape; nothing falls back to
    // a refusal that the 32-bit prover could decide).
    let w32 = check_registry_on(SortAlgorithm::CfMerge, BankShape::word32(32), params.e, params.u);
    let w64 = check_registry_on(SortAlgorithm::CfMerge, BankShape::word64(32), params.e, params.u);
    let free = |rs: &[cfmerge::core::analysis::PhaseReport]| {
        rs.iter().filter(|r| r.verdict.is_conflict_free()).count()
    };
    assert!(free(&w64) < free(&w32));
    for (r32, r64) in w32.iter().zip(&w64) {
        assert_eq!(r32.spec.phase, r64.spec.phase);
        let refused = |r: &cfmerge::core::analysis::PhaseReport| {
            matches!(r.verdict, cfmerge::gpu_sim::check::Verdict::NotCertifiable { .. })
        };
        assert_eq!(
            refused(r32),
            refused(r64),
            "{}/{}: decidability must match across bank widths",
            r64.spec.kernel,
            r64.spec.phase
        );
    }
}

#[test]
fn every_device_profile_yields_a_passing_registry() {
    // The certificate table quantifies over the shipped device-profile
    // lattice; each profile's bank shape must be supported and the full
    // registry must pass on it for both pipelines and both paper presets.
    for profile in device_profiles() {
        let shape = BankShape::of_device(&profile.device);
        assert!(shape.supported(), "{}", profile.name);
        for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
            for params in [SortParams::e15_u512(), SortParams::e17_u256()] {
                let reports = check_registry_on(algo, shape, params.e, params.u);
                assert!(!reports.is_empty());
                for r in &reports {
                    assert!(r.pass(), "{} {}: {}", profile.name, algo.label(), r.summary());
                }
            }
        }
    }
}

#[test]
fn occupancy_landscape_shifts_across_devices() {
    // The E=17,u=256 configuration is shared-memory-limited to 75% on
    // the 2080 Ti but fully occupiable on an A100-class part (bigger
    // carve-out) — parameter tuning is device-specific, which is why the
    // paper reports E/u pairs per device.
    let res = |params: SortParams| BlockResources {
        threads: params.u as u32,
        shared_bytes: params.shared_bytes(),
        regs_per_thread: mergesort_regs_estimate(params.e as u32),
    };
    let p = SortParams::e17_u256();
    let turing = occupancy(&Device::rtx2080ti(), &res(p)).expect("launchable");
    let ampere = occupancy(&Device::a100_like(), &res(p)).expect("launchable");
    assert!(turing.fraction < 0.8);
    assert_eq!(
        turing.limiter,
        cfmerge::gpu_sim::occupancy::Limiter::SharedMemory,
        "on Turing the 17 KiB tile is the binding resource"
    );
    assert_ne!(
        ampere.limiter,
        cfmerge::gpu_sim::occupancy::Limiter::SharedMemory,
        "the 164 KiB carve-out removes the shared-memory limit on Ampere \
         (the register file binds instead)"
    );
    assert!(ampere.fraction >= turing.fraction);
}
