//! Device-independence of the paper's qualitative conclusions: the
//! gather stays conflict-free and CF-Merge stays worst-case-immune on a
//! very different device (A100-class Ampere), not just the paper's
//! RTX 2080 Ti.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{simulate_sort, SortAlgorithm, SortConfig};
use cfmerge::gpu_sim::device::Device;
use cfmerge::gpu_sim::occupancy::{mergesort_regs_estimate, occupancy, BlockResources};
use cfmerge::gpu_sim::timing::TimingModel;

fn ampere_cfg(params: SortParams) -> SortConfig {
    SortConfig {
        params,
        device: Device::a100_like(),
        timing: TimingModel::rtx2080ti_like(),
        count_accesses: true,
    }
}

#[test]
fn conclusions_hold_on_ampere_class_device() {
    let params = SortParams::e15_u512();
    let cfg = ampere_cfg(params);
    let n = 16 * params.tile();
    let worst = InputSpec::worst_case(params).generate(n);
    let random = InputSpec::UniformRandom { seed: 0xA100 }.generate(n);

    let tw = simulate_sort(&worst, SortAlgorithm::ThrustMergesort, &cfg);
    let tr = simulate_sort(&random, SortAlgorithm::ThrustMergesort, &cfg);
    let cw = simulate_sort(&worst, SortAlgorithm::CfMerge, &cfg);
    let cr = simulate_sort(&random, SortAlgorithm::CfMerge, &cfg);

    // Conflict counts are device-independent for fixed w = 32 (exact,
    // not modeled): same attack, same immunity.
    assert!(tw.profile.merge_bank_conflicts() > 2 * tr.profile.merge_bank_conflicts());
    assert_eq!(cw.profile.merge_bank_conflicts(), 0);
    assert_eq!(cr.profile.merge_bank_conflicts(), 0);

    // Modeled ordering: the baseline still loses on worst case; CF is
    // still input-independent.
    assert!(tw.simulated_seconds > tr.simulated_seconds);
    let ratio = cw.simulated_seconds / cr.simulated_seconds;
    assert!((0.9..1.1).contains(&ratio), "CF worst/random on Ampere: {ratio}");
    assert_eq!(tw.output, cw.output);
}

#[test]
fn occupancy_landscape_shifts_across_devices() {
    // The E=17,u=256 configuration is shared-memory-limited to 75% on
    // the 2080 Ti but fully occupiable on an A100-class part (bigger
    // carve-out) — parameter tuning is device-specific, which is why the
    // paper reports E/u pairs per device.
    let res = |params: SortParams| BlockResources {
        threads: params.u as u32,
        shared_bytes: params.shared_bytes(),
        regs_per_thread: mergesort_regs_estimate(params.e as u32),
    };
    let p = SortParams::e17_u256();
    let turing = occupancy(&Device::rtx2080ti(), &res(p)).expect("launchable");
    let ampere = occupancy(&Device::a100_like(), &res(p)).expect("launchable");
    assert!(turing.fraction < 0.8);
    assert_eq!(
        turing.limiter,
        cfmerge::gpu_sim::occupancy::Limiter::SharedMemory,
        "on Turing the 17 KiB tile is the binding resource"
    );
    assert_ne!(
        ampere.limiter,
        cfmerge::gpu_sim::occupancy::Limiter::SharedMemory,
        "the 164 KiB carve-out removes the shared-memory limit on Ampere \
         (the register file binds instead)"
    );
    assert!(ampere.fraction >= turing.fraction);
}
