//! Trace-event schema validation and a golden-file pin for the Perfetto
//! exporter: every event a traced pipeline emits must be well-formed
//! (known `ph`, numeric `ts`/`dur`/`pid`/`tid`, non-negative durations,
//! per-thread monotone timestamps), and a small deterministic trace must
//! serialize byte-for-byte to the committed golden file.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{simulate_sort_traced, SortAlgorithm, SortConfig};
use cfmerge::gpu_sim::banks::BankModel;
use cfmerge::gpu_sim::block::BlockSim;
use cfmerge::gpu_sim::profiler::PhaseClass;
use cfmerge::gpu_sim::trace::{BlockTracer, KernelTrace, SortTrace};
use cfmerge_json::Json;
use std::collections::HashMap;

/// Structural checks on one exported trace document.
fn validate_trace_document(doc: &Json) {
    let events = doc.req("traceEvents").unwrap().as_arr().expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no events");
    assert_eq!(doc.req("displayTimeUnit").unwrap().as_str(), Some("ms"));

    // Last-seen end time per (pid, tid) lane, to check monotonicity.
    let mut lane_clock: HashMap<(u64, u64), f64> = HashMap::new();

    for ev in events {
        let ph = ev.req("ph").unwrap().as_str().expect("ph is a string");
        let pid = ev.req("pid").unwrap().as_u64().expect("pid is an integer");
        match ph {
            "M" => {
                // Metadata: names a process or thread.
                let name = ev.req("name").unwrap().as_str().unwrap();
                assert!(
                    name == "process_name" || name == "thread_name",
                    "unexpected metadata record {name}"
                );
                assert!(ev.req("args").unwrap().get("name").is_some());
            }
            "X" => {
                // Complete event: a barrier-delimited phase span.
                let tid = ev.req("tid").unwrap().as_u64().expect("tid is an integer");
                let ts = ev.req("ts").unwrap().as_f64().expect("ts is a number");
                let dur = ev.req("dur").unwrap().as_f64().expect("dur is a number");
                assert!(ts >= 0.0, "negative timestamp {ts}");
                assert!(dur >= 0.0, "negative duration {dur}");
                let name = ev.req("name").unwrap().as_str().unwrap();
                assert!(
                    PhaseClass::from_label(name).is_some(),
                    "span name {name} is not a phase class"
                );
                let clock = lane_clock.entry((pid, tid)).or_insert(0.0);
                assert!(
                    ts + 1e-9 >= *clock,
                    "span {name} at ts={ts} overlaps lane clock {clock} (pid={pid} tid={tid})"
                );
                *clock = ts + dur;
            }
            "i" => {
                // Instant event: one conflicted round.
                assert_eq!(ev.req("cat").unwrap().as_str(), Some("conflict"));
                assert!(ev.req("ts").unwrap().as_f64().is_some());
                let args = ev.req("args").unwrap();
                let degree = args.req("degree").unwrap().as_u64().unwrap();
                assert!(degree >= 2, "a conflict round must have degree ≥ 2");
                let banks = args.req("banks").unwrap().as_arr().unwrap();
                let addrs = args.req("addrs").unwrap().as_arr().unwrap();
                assert_eq!(banks.len(), addrs.len(), "banks/addrs multisets must align");
            }
            other => panic!("unexpected event type {other:?}"),
        }
    }
}

#[test]
fn pipeline_trace_export_is_schema_valid() {
    let cfg = SortConfig::with_params(SortParams::new(15, 128));
    let input = InputSpec::WorstCase { w: 32, e: 15, u: 128 }.generate(4 * 15 * 128);
    for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
        let traced = simulate_sort_traced(&input, algo, &cfg);
        let doc = Json::parse(&traced.trace.to_perfetto_string()).expect("exporter emits JSON");
        validate_trace_document(&doc);
    }
    // And the negative control: the Thrust trace must actually show
    // conflict instants, otherwise "schema-valid" is vacuous.
    let thrust = simulate_sort_traced(&input, SortAlgorithm::ThrustMergesort, &cfg);
    let doc = Json::parse(&thrust.trace.to_perfetto_string()).unwrap();
    let events = doc.req("traceEvents").unwrap().as_arr().unwrap();
    assert!(
        events.iter().any(|e| e.req("ph").unwrap().as_str() == Some("i")),
        "worst-case Thrust trace shows no conflict events"
    );
}

/// Build a tiny fully-deterministic trace: one kernel, one block, two
/// phases, one engineered 4-way conflict. `seconds` is chosen so one tick
/// scales to exactly 1 µs, keeping every exported number an integer.
fn tiny_trace() -> SortTrace {
    let w = 8u32;
    let mut block = BlockSim::<u32, BlockTracer>::with_tracer(
        BankModel::new(w),
        8,
        64,
        BlockTracer::new(BankModel::new(w)),
    );
    block.phase(PhaseClass::LoadTile, |tid, lane| {
        lane.st(tid, tid as u32); // unit stride: conflict-free
    });
    block.phase(PhaseClass::Merge, |tid, lane| {
        let _ = lane.ld((tid % 4) * 8); // banks {0,8,16,24} mod 8 → 4-way on bank 0
    });
    let (_, tracer) = block.finish();
    let ticks = tracer.ticks();
    SortTrace {
        label: "golden/tiny".into(),
        num_banks: w,
        kernels: vec![KernelTrace {
            name: "tiny-kernel".into(),
            grid_blocks: 1,
            seconds: ticks as f64 * 1e-6,
            blocks: vec![tracer],
        }],
    }
}

#[test]
fn tiny_trace_matches_the_golden_file() {
    let got = tiny_trace().to_perfetto_string();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/tiny_trace.perfetto.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &got).expect("bless golden file");
    }
    let want = std::fs::read_to_string(golden_path).unwrap_or_else(|e| {
        panic!("missing golden file {golden_path}: {e} (run with UPDATE_GOLDEN=1 to create it)")
    });
    assert_eq!(
        got.trim(),
        want.trim(),
        "Perfetto exporter output drifted from the golden file; if the\n\
         change is intentional, regenerate tests/golden/tiny_trace.perfetto.json"
    );
    // The golden trace itself must be schema-valid too.
    validate_trace_document(&Json::parse(&got).unwrap());
}
