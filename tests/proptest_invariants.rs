//! Property-based tests over the core invariants, with proptest driving
//! the shapes: arbitrary warp widths, `E`, block sizes, merge-path
//! splits, and key distributions.

use cfmerge::core::gather::{CfLayout, GatherSchedule, ThreadSplit};
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{simulate_sort, SortAlgorithm, SortConfig};
use cfmerge::mergepath::diagonal::merge_path;
use cfmerge::mergepath::networks::{batcher_sort, oets_ops, oets_sort};
use cfmerge::numtheory::residue::{is_complete_residue_system, r_prime_j};
use proptest::prelude::*;

/// A random merge-path-shaped split set: per-thread `a_len ∈ [0, E]`.
fn splits_strategy(u: usize, e: usize) -> impl Strategy<Value = Vec<ThreadSplit>> {
    proptest::collection::vec(0..=e, u).prop_map(move |lens| {
        let mut out = Vec::with_capacity(lens.len());
        let mut a = 0usize;
        for len in lens {
            out.push(ThreadSplit { a_begin: a, a_len: len });
            a += len;
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Corollary 3 as a property: R'_j is a complete residue system for
    /// every (w, E, j).
    #[test]
    fn prop_r_prime_is_crs(w in 1u64..=48, e in 1u64..=48, j in 0i64..48) {
        let j = j % e as i64;
        prop_assert!(is_complete_residue_system(&r_prime_j(j, e, w), w));
    }

    /// The gather schedule never produces a bank conflict in any round,
    /// for random (w, E, warps) and random splits — the paper's Theorem
    /// (Sections 3.1–3.3) as an executable property.
    #[test]
    fn prop_gather_conflict_free(
        params in (2usize..=32, 1usize..=6).prop_flat_map(|(w, warps)| {
            (Just(w), 1usize..=w, Just(warps))
        }).prop_flat_map(|(w, e, warps)| {
            (Just(w), Just(e), Just(warps), splits_strategy(w * warps, e))
        })
    ) {
        let (w, e, warps, splits) = params;
        let u = w * warps;
        let a_total = splits.last().map_or(0, |s| s.a_begin + s.a_len);
        let layout = CfLayout::new(w, e, u * e, a_total);
        for v in 0..warps {
            for j in 0..e {
                let mut seen = vec![false; w];
                for lane in 0..w {
                    let tid = v * w + lane;
                    let slot = GatherSchedule::new(layout, tid, splits[tid]).round(j).slot();
                    let bank = slot % w;
                    prop_assert!(!seen[bank], "w={w} E={e} warp={v} round={j} bank={bank}");
                    seen[bank] = true;
                }
            }
        }
    }

    /// Every thread's register array covers its (A_i, B_i) exactly once.
    #[test]
    fn prop_gather_is_load_balanced(
        params in (2usize..=24).prop_flat_map(|w| (Just(w), 1usize..=w))
            .prop_flat_map(|(w, e)| (Just(w), Just(e), splits_strategy(w, e)))
    ) {
        let (w, e, splits) = params;
        let a_total = splits.last().map_or(0, |s| s.a_begin + s.a_len);
        let layout = CfLayout::new(w, e, w * e, a_total);
        let mut touched = vec![false; w * e];
        for (tid, &sp) in splits.iter().enumerate() {
            let sched = GatherSchedule::new(layout, tid, sp);
            for j in 0..e {
                let slot = sched.round(j).slot();
                prop_assert!(!touched[slot]);
                touched[slot] = true;
            }
        }
        prop_assert!(touched.iter().all(|&t| t));
    }

    /// Sorting networks sort anything (beyond the exhaustive 0-1 tests).
    #[test]
    fn prop_networks_sort(mut v in proptest::collection::vec(any::<u32>(), 0..80)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        let mut v2 = v.clone();
        let ops = oets_sort(&mut v);
        prop_assert_eq!(&v, &expect);
        prop_assert_eq!(ops, oets_ops(v.len()));
        batcher_sort(&mut v2);
        prop_assert_eq!(&v2, &expect);
    }

    /// merge_path splits are consistent: recombining prefixes reproduces
    /// the stable merge.
    #[test]
    fn prop_merge_path_prefix(
        mut a in proptest::collection::vec(0u32..50, 0..60),
        mut b in proptest::collection::vec(0u32..50, 0..60),
        frac in 0.0f64..=1.0,
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let diag = ((a.len() + b.len()) as f64 * frac) as usize;
        let x = merge_path(&a, &b, diag);
        // All of a[..x] must be ≤ every element of b[diag-x..] and vice
        // versa (the defining property of the split).
        if x > 0 && diag - x < b.len() {
            prop_assert!(a[x - 1] <= b[diag - x]);
        }
        if diag - x > 0 && x < a.len() {
            prop_assert!(b[diag - x - 1] < a[x]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full-pipeline property: both simulated sorts equal std's sort for
    /// arbitrary inputs and a small parameter set.
    #[test]
    fn prop_pipelines_sort(input in proptest::collection::vec(any::<u32>(), 0..2000)) {
        let cfg = SortConfig::with_params(SortParams::new(5, 32));
        let mut expect = input.clone();
        expect.sort_unstable();
        for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
            let run = simulate_sort(&input, algo, &cfg);
            prop_assert_eq!(&run.output, &expect);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `BankModel::strided_cost(base, stride)` is definitionally the cost
    /// of the expanded address vector `base + k·stride` for `k ∈ [0, w)`
    /// — over random bank counts (including non-powers-of-two and wider
    /// than 32), bases, and strides, including the broadcast stride 0.
    #[test]
    fn prop_strided_cost_matches_round_cost(
        w in 1u32..=64,
        base in 0u32..1_000_000,
        stride in 0u32..4096,
    ) {
        let model = cfmerge::gpu_sim::BankModel::new(w);
        let addrs: Vec<u32> = (0..w).map(|k| base + k * stride).collect();
        let expanded = model.round_cost(&addrs);
        let strided = model.strided_cost(base, stride);
        prop_assert_eq!(strided.transactions, expanded.transactions);
        prop_assert_eq!(strided.conflicts, expanded.conflicts);
        prop_assert_eq!(strided.active_lanes, expanded.active_lanes);
    }

    /// The gcd law behind the prover's `affine-gcd` rule, as a property of
    /// the cost model itself: a full-warp strided access costs exactly
    /// `gcd(stride, w)` transactions (1 for the broadcast stride 0),
    /// independent of the base.
    #[test]
    fn prop_strided_cost_is_gcd(
        w in 1u32..=64,
        base in 0u32..1_000_000,
        stride in 0u32..4096,
    ) {
        let model = cfmerge::gpu_sim::BankModel::new(w);
        let expect = if stride == 0 {
            1
        } else {
            cfmerge::numtheory::gcd(u64::from(stride), u64::from(w)) as u32
        };
        prop_assert_eq!(model.strided_cost(base, stride).transactions, expect);
    }
}
