//! Property tests for the certified auto-tuner.
//!
//! Three families:
//!
//! 1. **Table round-trip** — any tuning table (arbitrary ladders, rung
//!    mixes, exclusions, validation logs) survives JSON serialization
//!    byte-exactly, and the checksum catches any post-hoc tampering
//!    with the ladders.
//! 2. **Ladder legality** — for any job mix on any device profile, a
//!    tuned service only ever executes configurations that sit on the
//!    device's degradation ladder; every non-`Certified` rung it runs
//!    is marked `degraded` on the outcome; and a pipeline with no
//!    certified rungs always fails closed with a typed
//!    `SortError::Uncertified`, never a silent fallback.
//! 3. **Canary determinism** — for any canary cadence, promotion
//!    threshold, and fault mask, replaying the same submission stream
//!    reproduces the same routing decisions, outcomes, and counters —
//!    rollback is a pure function of the (seeded) history.

use cfmerge::core::cert::{build_certificate_table, device_profiles};
use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::recovery::RobustConfig;
use cfmerge::core::resilience::{BreakerConfig, ResilienceConfig, SortService};
use cfmerge::core::sort::{SortAlgorithm, SortConfig, SortError};
use cfmerge::core::tuning::{
    build_tuning_table, CanaryPolicy, ExcludedConfig, RungTier, TuningLadder, TuningPolicy,
    TuningRung, TuningTable, ValidationScenario, TUNING_SCHEMA_VERSION,
};
use cfmerge::gpu_sim::fault::{FaultKind, FaultPlan, FaultSite, Persistence};
use cfmerge_json::{FromJson, Json, ToJson};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One replayed outcome: (label, executed (E, u), canary, degraded, ok).
type RouteTrace = (String, Option<(usize, usize)>, bool, bool, bool);

/// The real table is deterministic and costs a full certificate build —
/// do it once for the whole suite.
fn real_table() -> &'static TuningTable {
    static TABLE: OnceLock<TuningTable> = OnceLock::new();
    TABLE.get_or_init(|| build_tuning_table(&build_certificate_table()))
}

fn sticky_poison() -> FaultPlan {
    FaultPlan::from_sites(vec![FaultSite {
        kernel: 0,
        block: 0,
        phase: 1,
        kind: FaultKind::StuckBank { bank: 1, bit: 3 },
        persistence: Persistence::Sticky,
    }])
}

// ---------------------------------------------------------------------------
// Family 1: table round-trip and checksum integrity
// ---------------------------------------------------------------------------

fn tier_strategy() -> impl Strategy<Value = RungTier> {
    any::<bool>().prop_map(|b| if b { RungTier::Certified } else { RungTier::Degraded })
}

fn rung_strategy() -> impl Strategy<Value = TuningRung> {
    (1usize..32, (6u32..10).prop_map(|p| 1usize << p), tier_strategy(), 1u32..9)
        .prop_flat_map(|(e, u, tier, worst_degree)| {
            (Just((e, u, tier, worst_degree)), 1u32..1025, 1u32..1_000_000)
        })
        .prop_map(|((e, u, tier, worst_degree), occ_q, cost_q)| TuningRung {
            rank: 0, // assigned by the ladder strategy
            e,
            u,
            tier,
            worst_degree,
            // Dyadic rationals: exactly representable, so byte-exact
            // round-trip is a property of the writer, not of luck.
            occupancy: f64::from(occ_q) / 1024.0,
            modeled_cost_s: f64::from(cost_q) / 1024.0 / 1024.0,
        })
}

/// The vendored proptest has no regex string strategies; construct
/// strings from integers instead, and include JSON-hostile characters
/// (quotes, backslashes, slashes) so escaping is part of the property.
fn text_strategy(prefix: &'static str) -> impl Strategy<Value = String> {
    (0u32..1000, any::<bool>()).prop_map(move |(n, spicy)| {
        if spicy {
            format!("{prefix}-{n} \"quoted\\path/{n}\"")
        } else {
            format!("{prefix}-{n}")
        }
    })
}

fn excluded_strategy() -> impl Strategy<Value = ExcludedConfig> {
    (1usize..32, (6u32..10).prop_map(|p| 1usize << p), text_strategy("reason"))
        .prop_map(|(e, u, reason)| ExcludedConfig { e, u, reason })
}

fn ladder_strategy() -> impl Strategy<Value = TuningLadder> {
    (
        text_strategy("profile"),
        text_strategy("device"),
        text_strategy("algo"),
        proptest::collection::vec(rung_strategy(), 0..4),
        proptest::collection::vec(excluded_strategy(), 0..3),
    )
        .prop_map(|(profile, device, algo, mut rungs, excluded)| {
            for (rank, rung) in rungs.iter_mut().enumerate() {
                rung.rank = rank;
            }
            TuningLadder { profile, device, algo, rungs, excluded }
        })
}

fn scenario_strategy() -> impl Strategy<Value = ValidationScenario> {
    (
        text_strategy("scenario"),
        any::<bool>(),
        proptest::collection::vec(text_strategy("event"), 0..4),
    )
        .prop_map(|(name, pass, events)| ValidationScenario { name, pass, events })
}

fn table_strategy() -> impl Strategy<Value = TuningTable> {
    (
        proptest::collection::vec(ladder_strategy(), 0..4),
        proptest::collection::vec(scenario_strategy(), 0..3),
    )
        .prop_map(|(ladders, validation)| TuningTable {
            schema: TUNING_SCHEMA_VERSION,
            cert_schema: 1,
            checksum: TuningTable::compute_checksum(&ladders),
            ladders,
            validation,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any table round-trips through its JSON wire format losslessly
    /// and verifies; tampering with a rung after checksumming is
    /// always caught.
    #[test]
    fn prop_table_roundtrips_and_checksum_catches_tampering(table in table_strategy()) {
        prop_assert!(table.verify().is_ok());
        let text = table.to_json().to_string_pretty();
        let back = TuningTable::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(&back, &table);
        prop_assert!(back.verify().is_ok());

        let mut corrupt = table.clone();
        corrupt.checksum = "fnv1a64:0000000000000000".to_string();
        prop_assert!(corrupt.verify().is_err(), "a forged checksum must not verify");

        // Tamper with ladder content (when there is any): the checksum
        // covers every rung field, so a single bumped degree is caught.
        let mut tampered = table.clone();
        if let Some(rung) =
            tampered.ladders.iter_mut().find_map(|l| l.rungs.first_mut())
        {
            rung.worst_degree += 1;
            prop_assert!(tampered.verify().is_err(), "ladder tampering must not verify");
        }
    }
}

// ---------------------------------------------------------------------------
// Family 2: ladder legality under arbitrary job mixes
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A tuned service never executes a configuration that is not on
    /// the device's ladder; non-certified rungs always carry the
    /// `degraded` marker; rung-less pipelines always fail closed.
    #[test]
    fn prop_tuned_service_only_runs_ladder_rungs(
        profile_idx in 0usize..3,
        threshold in 1u32..3,
        seed in any::<u64>(),
        jobs in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..6),
    ) {
        let table = real_table();
        let profile = &device_profiles()[profile_idx];
        let cfg = RobustConfig::new(SortConfig {
            device: profile.device.clone(),
            ..SortConfig::paper_e17_u256()
        });
        let mut svc = SortService::with_resilience(
            cfg,
            ResilienceConfig {
                breaker: BreakerConfig {
                    enabled: true,
                    failure_threshold: threshold,
                    cooldown_s: 1.0,
                },
                ..ResilienceConfig::default()
            },
        );
        svc.enable_tuning(table.clone(), TuningPolicy::default()).unwrap();
        let input = InputSpec::UniformRandom { seed }.generate(4500);
        for (i, (thrust, poisoned)) in jobs.iter().enumerate() {
            let algo =
                if *thrust { SortAlgorithm::ThrustMergesort } else { SortAlgorithm::CfMerge };
            let plan = if *poisoned { sticky_poison() } else { FaultPlan::none() };
            svc.submit_with_faults(&format!("job-{i}"), input.clone(), algo, plan, None);
        }
        let outcomes = svc.drain();
        for ((thrust, _), o) in jobs.iter().zip(&outcomes) {
            if *thrust {
                // Thrust has no certified rungs on any profile: always a
                // typed fail-closed rejection, never an execution.
                prop_assert!(
                    matches!(&o.result, Err(SortError::Uncertified { algo, .. }) if algo == "thrust"),
                    "{}: thrust must fail closed, got {:?}", o.label, o.result
                );
                prop_assert!(o.tuned.is_none());
                continue;
            }
            match o.tuned {
                Some(p) => {
                    let ladder = table
                        .ladder_for(&profile.device.name, "cf-merge")
                        .expect("cf ladder exists on every profile");
                    let rung = ladder.rung_for(p);
                    prop_assert!(
                        rung.is_some(),
                        "{}: executed E={},u={} which is not on the ladder", o.label, p.e, p.u
                    );
                    prop_assert_eq!(
                        o.degraded,
                        rung.unwrap().tier != RungTier::Certified,
                        "{}: outcome degraded marker must mirror the rung tier", o.label
                    );
                }
                // No config executed: only the fail-closed path (ladder
                // exhausted under open breakers) produces this, and it
                // must be typed.
                None => prop_assert!(
                    matches!(&o.result, Err(SortError::Uncertified { .. })),
                    "{}: untuned cf job must be a typed rejection, got {:?}", o.label, o.result
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Family 3: canary determinism
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Canary routing, rollback, and promotion are deterministic: the
    /// same submission stream replays to identical outcomes and
    /// counters, for any cadence / promotion threshold / fault mask.
    #[test]
    fn prop_canary_rollout_is_deterministic(
        seed in any::<u64>(),
        every in 1u64..5,
        promote_after in 1u32..4,
        poison in proptest::collection::vec(any::<bool>(), 1..8),
    ) {
        let table = real_table();
        let run = || {
            let mut svc = SortService::new(RobustConfig::new(SortConfig::paper_e17_u256()));
            svc.enable_tuning(
                table.clone(),
                TuningPolicy {
                    canary: Some(CanaryPolicy {
                        candidate: SortParams::e15_u512(),
                        every,
                        promote_after,
                    }),
                },
            )
            .unwrap();
            let input = InputSpec::UniformRandom { seed }.generate(4500);
            for (i, poisoned) in poison.iter().enumerate() {
                let plan = if *poisoned { sticky_poison() } else { FaultPlan::none() };
                svc.submit_with_faults(
                    &format!("job-{i}"),
                    input.clone(),
                    SortAlgorithm::CfMerge,
                    plan,
                    None,
                );
            }
            let outcomes = svc.drain();
            let trace: Vec<RouteTrace> = outcomes
                .iter()
                .map(|o| {
                    (
                        o.label.clone(),
                        o.tuned.map(|p| (p.e, p.u)),
                        o.canary,
                        o.degraded,
                        o.result.is_ok(),
                    )
                })
                .collect();
            let sc = svc.counters();
            (trace, (sc.canary_jobs, sc.canary_rollbacks, sc.canary_promotions, sc.tuned_jobs))
        };
        let (trace_a, counters_a) = run();
        let (trace_b, counters_b) = run();
        prop_assert_eq!(&trace_a, &trace_b, "replay must be bit-identical");
        prop_assert_eq!(counters_a, counters_b);
        // Every canary probe ran a real ladder rung.
        let ladder = table
            .ladder_for(&SortConfig::paper_e17_u256().device.name, "cf-merge")
            .expect("rtx cf ladder");
        for (label, tuned, canary, _, _) in &trace_a {
            if *canary {
                let (e, u) = tuned.expect("canary probes execute");
                prop_assert!(
                    ladder.rung_for(SortParams::new(e, u)).is_some(),
                    "{label}: canary probed an off-ladder config"
                );
            }
        }
    }
}
