//! The paper's quantitative claims, asserted end to end (coarse bands —
//! the bench binaries produce the precise tables in EXPERIMENTS.md).

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{simulate_sort, SortAlgorithm, SortConfig};
use cfmerge::core::worst_case::{lockstep_baseline_conflicts, predicted_warp_conflicts};
use cfmerge::gpu_sim::device::Device;
use cfmerge::gpu_sim::occupancy::{mergesort_regs_estimate, occupancy, BlockResources};

const N_TILES: usize = 16;

fn run(params: SortParams, algo: SortAlgorithm, spec: InputSpec) -> cfmerge::core::sort::SortRun {
    let cfg = SortConfig::with_params(params);
    let input = spec.generate(N_TILES * params.tile());
    simulate_sort(&input, algo, &cfg)
}

/// §1/§5: "the modified mergesort takes virtually the same time to run on
/// the worst-case inputs as it does on random inputs".
#[test]
fn claim_cf_is_input_independent() {
    let params = SortParams::e15_u512();
    let worst = run(params, SortAlgorithm::CfMerge, InputSpec::worst_case(params));
    let random = run(params, SortAlgorithm::CfMerge, InputSpec::UniformRandom { seed: 1 });
    let ratio = worst.simulated_seconds / random.simulated_seconds;
    assert!((0.9..1.1).contains(&ratio), "CF worst/random time ratio {ratio}");
}

/// §5.1: CF ≈ Thrust on random inputs (the gather's overhead amounts to a
/// couple of extra accesses per element).
#[test]
fn claim_cf_matches_thrust_on_random() {
    for params in [SortParams::e15_u512(), SortParams::e17_u256()] {
        let t = run(params, SortAlgorithm::ThrustMergesort, InputSpec::UniformRandom { seed: 2 });
        let c = run(params, SortAlgorithm::CfMerge, InputSpec::UniformRandom { seed: 2 });
        let ratio = c.simulated_seconds / t.simulated_seconds;
        assert!((0.85..1.15).contains(&ratio), "E={} cf/thrust on random = {ratio}", params.e);
    }
}

/// §5.1: CF-Merge speedup on worst-case inputs ≈ 1.37–1.47 (E=15,u=512)
/// and ≈ 1.17–1.25 (E=17,u=256). Asserted with ±0.15 slack at one size.
#[test]
fn claim_worst_case_speedup_bands() {
    let cases = [(SortParams::e15_u512(), 1.37, 1.47), (SortParams::e17_u256(), 1.17, 1.25)];
    for (params, lo, hi) in cases {
        let t = run(params, SortAlgorithm::ThrustMergesort, InputSpec::worst_case(params));
        let c = run(params, SortAlgorithm::CfMerge, InputSpec::worst_case(params));
        let speedup = t.simulated_seconds / c.simulated_seconds;
        assert!(
            speedup > lo - 0.15 && speedup < hi + 0.15,
            "E={} speedup {speedup} outside [{lo}, {hi}] ± 0.15",
            params.e
        );
    }
}

/// §5: "we confirmed that our implementation produces no bank conflicts
/// during merging" (nvprof) — exact here, on every input shape.
#[test]
fn claim_cf_zero_merge_conflicts() {
    for params in [SortParams::e15_u512(), SortParams::e17_u256()] {
        for spec in [
            InputSpec::UniformRandom { seed: 3 },
            InputSpec::worst_case(params),
            InputSpec::Sorted,
            InputSpec::Reversed,
        ] {
            let r = run(params, SortAlgorithm::CfMerge, spec);
            assert_eq!(r.profile.merge_bank_conflicts(), 0, "E={} on {}", params.e, spec.label());
        }
    }
}

/// §5 / [29]: Thrust incurs 2–3 bank conflicts per merge step on random
/// inputs.
#[test]
fn claim_karsin_two_to_three_conflicts() {
    for params in [SortParams::e15_u512(), SortParams::e17_u256()] {
        let r = run(params, SortAlgorithm::ThrustMergesort, InputSpec::UniformRandom { seed: 4 });
        let c = r.conflicts_per_merge_round();
        assert!((1.5..3.5).contains(&c), "E={}: {c} conflicts/step", params.e);
    }
}

/// §5 / [8]: worst-case inputs slow the Thrust baseline by roughly 20–50%.
#[test]
fn claim_berney_sitchinava_slowdown() {
    let params = SortParams::e15_u512();
    let w = run(params, SortAlgorithm::ThrustMergesort, InputSpec::worst_case(params));
    let r = run(params, SortAlgorithm::ThrustMergesort, InputSpec::UniformRandom { seed: 5 });
    let slowdown = w.simulated_seconds / r.simulated_seconds;
    assert!((1.2..1.6).contains(&slowdown), "slowdown {slowdown}");
}

/// §5: the occupancy explanation of the two parameter sets.
#[test]
fn claim_occupancy_of_parameter_sets() {
    let dev = Device::rtx2080ti();
    let occ = |params: SortParams| {
        occupancy(
            &dev,
            &BlockResources {
                threads: params.u as u32,
                shared_bytes: params.shared_bytes(),
                regs_per_thread: mergesort_regs_estimate(params.e as u32),
            },
        )
        .expect("paper configs launch")
        .fraction
    };
    assert_eq!(occ(SortParams::e15_u512()), 1.0);
    assert_eq!(occ(SortParams::e17_u256()), 0.75);
}

/// §4 / Theorem 8: the closed forms match the lock-step measurement for
/// the headline parameters (within the counting-convention band).
#[test]
fn claim_theorem8_headline_numbers() {
    assert_eq!(predicted_warp_conflicts(32, 15), 225);
    assert_eq!(predicted_warp_conflicts(32, 17), 288);
    for (w, e) in [(32usize, 15usize), (32, 17), (32, 16)] {
        let measured = lockstep_baseline_conflicts(w, e, 4) as f64 / 4.0;
        let predicted = predicted_warp_conflicts(w, e) as f64;
        assert!(
            (0.85..=1.05).contains(&(measured / predicted)),
            "(w={w},E={e}): measured {measured} / predicted {predicted}"
        );
    }
}

/// §5: E=15,u=512 outperforms Thrust's default E=17,u=256 (the occupancy
/// effect), for both pipelines on random inputs.
#[test]
fn claim_e15_u512_is_faster() {
    for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
        let fast = run(SortParams::e15_u512(), algo, InputSpec::UniformRandom { seed: 6 });
        let slow = run(SortParams::e17_u256(), algo, InputSpec::UniformRandom { seed: 6 });
        assert!(
            fast.throughput() > slow.throughput(),
            "{algo:?}: {} vs {}",
            fast.throughput(),
            slow.throughput()
        );
    }
}
