//! Property tests for the telemetry subsystem's two load-bearing
//! guarantees:
//!
//! 1. **Determinism** — a [`MetricsSnapshot`] is a pure function of the
//!    recorded operations: replaying any operation sequence into a fresh
//!    registry yields byte-identical snapshot JSON, and the JSON
//!    round-trips losslessly (the perf gate and the golden test both
//!    lean on this).
//! 2. **Zero-cost observation** — enabling telemetry on a
//!    [`SortService`] changes nothing about the modeled execution: same
//!    outcomes, same modeled clock, same recovery counters, bit for bit.
//!
//! Plus the histogram's structural invariant: every observation lands in
//! a bucket whose bounds bracket it, and quantiles are monotone.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::recovery::{RobustConfig, SortService};
use cfmerge::core::resilience::{
    AdmissionConfig, BreakerConfig, ResilienceConfig, RetryBudgetConfig, ShedPolicy,
};
use cfmerge::core::sort::{SortAlgorithm, SortConfig};
use cfmerge::core::telemetry::{LogHistogram, MetricsRegistry, MetricsSnapshot};
use cfmerge::gpu_sim::fault::{FaultPlan, FaultSpec};
use cfmerge_json::{FromJson, ToJson};
use proptest::prelude::*;

/// One recordable operation, for replay testing.
#[derive(Debug, Clone)]
enum Op {
    Inc(u8, u64),
    Gauge(u8, f64),
    Observe(u8, u64),
    ObserveSeconds(u8, f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // (the shim has no `prop_oneof`; a discriminant field does the job)
    // Values are shifted into the JSON layer's exact-integer domain
    // (< 2^53, see the cfmerge-json crate docs) so snapshots round-trip.
    (0u8..4, 0u8..4, any::<u64>(), 0.0f64..1e3).prop_map(|(kind, n, v, f)| match kind {
        0 => Op::Inc(n, v >> 17),
        1 => Op::Gauge(n, f - 500.0),
        2 => Op::Observe(n, v >> 11),
        _ => Op::ObserveSeconds(n, f),
    })
}

fn apply(reg: &mut MetricsRegistry, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Inc(n, d) => reg.inc(&format!("counter_{n}_total"), d),
            Op::Gauge(n, v) => reg.set_gauge(&format!("gauge_{n}"), v),
            Op::Observe(n, v) => reg.observe(&format!("hist_{n}"), v),
            Op::ObserveSeconds(n, s) => reg.observe_seconds(&format!("lat_{n}_seconds"), s),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replaying any operation sequence yields a byte-identical
    /// snapshot, and the snapshot JSON round-trips losslessly.
    #[test]
    fn prop_snapshot_is_pure_function_of_operations(
        ops in proptest::collection::vec(op_strategy(), 0..64),
    ) {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        apply(&mut a, &ops);
        apply(&mut b, &ops);
        let sa = a.snapshot();
        let sb = b.snapshot();
        let ja = sa.to_json().to_string_pretty();
        prop_assert_eq!(&ja, &sb.to_json().to_string_pretty(), "replay must be byte-identical");

        let parsed = MetricsSnapshot::from_json(&sa.to_json()).expect("snapshot JSON parses");
        prop_assert_eq!(parsed.to_json().to_string_pretty(), ja, "JSON round-trip is lossless");

        // Prefixing then merging is still deterministic and sorted.
        let merged = sa.with_prefix("x_").merged(&sb.with_prefix("y_"));
        let names: Vec<&str> = merged.metrics.iter().map(|m| m.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        prop_assert_eq!(names, sorted, "snapshots stay sorted by name");
    }

    /// Every observation lands in a bucket that brackets it, and the
    /// derived quantiles are monotone and bounded by min/max.
    #[test]
    fn prop_histogram_buckets_bracket_observations(
        values in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.observe(v);
            let idx = LogHistogram::bucket_index(v);
            prop_assert!(v <= LogHistogram::bucket_upper_bound(idx));
            if idx > 0 {
                prop_assert!(v > LogHistogram::bucket_upper_bound(idx - 1));
            }
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let (p50, p99, p999) = (h.quantile(0.50), h.quantile(0.99), h.quantile(0.999));
        prop_assert!(h.min() <= p50 && p50 <= p99 && p99 <= p999 && p999 <= h.max());
    }

    /// Telemetry is purely observational: the same fault-seasoned job
    /// mix produces identical outcomes, clock, and counters with
    /// telemetry on or off — and two telemetry-on runs produce
    /// byte-identical snapshots.
    #[test]
    fn prop_service_telemetry_is_observational_and_deterministic(
        seed in any::<u64>(),
        sizes in proptest::collection::vec(1usize..4, 1..6),
        faulty in proptest::collection::vec(any::<bool>(), 6),
    ) {
        let params = SortParams::new(5, 32);
        let spec = FaultSpec {
            sites: 2,
            max_phase: 6,
            sticky_permille: 300,
            permanent_permille: 0,
            spikes: true,
        };
        let run = |telemetry: bool| {
            let mut svc = SortService::with_resilience(
                RobustConfig::new(SortConfig::with_params(params)),
                ResilienceConfig {
                    admission: AdmissionConfig::bounded(4, ShedPolicy::RejectNewest),
                    retry_budget: RetryBudgetConfig::bounded(4.0),
                    breaker: BreakerConfig {
                        enabled: true,
                        failure_threshold: 2,
                        cooldown_s: 1e-6,
                    },
                },
            );
            if telemetry {
                svc.enable_telemetry();
            }
            for (i, tiles) in sizes.iter().enumerate() {
                let job_seed = seed ^ ((i as u64) << 16);
                let input =
                    InputSpec::UniformRandom { seed: job_seed }.generate(tiles * params.tile() + i);
                let plan = if faulty[i] {
                    FaultPlan::generate(
                        job_seed,
                        &cfmerge::core::recovery::pipeline_shape(input.len(), &params),
                        &spec,
                    )
                } else {
                    FaultPlan::none()
                };
                svc.submit_with_faults(&format!("job-{i}"), input, SortAlgorithm::CfMerge, plan, None);
            }
            let outcomes = svc.drain();
            let digest: Vec<String> = outcomes
                .iter()
                .map(|o| match &o.result {
                    Ok(run) => format!("{}: ok {:.17e}", o.label, run.run.simulated_seconds),
                    Err(e) => format!("{}: err {e}", o.label),
                })
                .collect();
            let snap = svc.telemetry_snapshot().map(|s| s.to_json().to_string_pretty());
            (digest, svc.clock_s(), *svc.counters(), snap)
        };

        let (d_off, clock_off, counters_off, snap_off) = run(false);
        let (d_on, clock_on, counters_on, snap_on) = run(true);
        let (_, _, _, snap_on2) = run(true);

        prop_assert!(snap_off.is_none(), "telemetry off means no snapshot");
        prop_assert_eq!(d_off, d_on, "outcomes must not depend on telemetry");
        prop_assert_eq!(clock_off, clock_on, "modeled clock must not depend on telemetry");
        prop_assert_eq!(counters_off, counters_on);
        prop_assert_eq!(snap_on, snap_on2, "telemetry snapshots are byte-identical across runs");
    }
}
