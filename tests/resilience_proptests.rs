//! Property tests for the service-level resilience stack.
//!
//! Three families:
//!
//! 1. **Budget & shedding** — for any job mix under a bounded retry
//!    budget and a bounded queue, the token count never goes negative
//!    and shed jobs never execute (not even partially: they contribute
//!    zero recovery counters and zero modeled time).
//! 2. **Breaker legality** — for any outcome sequence, a breaker's
//!    transition log is a path in the legal state machine
//!    `closed→open→half-open→{closed, open}`.
//! 3. **Checkpoint/resume** — for any kill point, resuming from the
//!    checkpoint reproduces the uninterrupted run's output byte for
//!    byte; on a fault-free plan the modeled cost and counters are
//!    byte-identical too.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::recovery::{
    pipeline_shape, resume_sort_robust, simulate_sort_robust, simulate_sort_robust_checkpointed,
    RobustConfig, SortService,
};
use cfmerge::core::resilience::{
    AdmissionConfig, BreakerConfig, BreakerState, CheckpointPolicy, CircuitBreaker,
    ResilienceConfig, RetryBudgetConfig, ShedPolicy,
};
use cfmerge::core::sort::{SortAlgorithm, SortConfig, SortError};
use cfmerge::gpu_sim::fault::{FaultPlan, FaultSpec};
use proptest::prelude::*;

fn params() -> SortParams {
    SortParams::new(5, 32) // tile = 160: small enough for many proptest cases
}

fn rcfg() -> RobustConfig {
    RobustConfig::new(SortConfig::with_params(params()))
}

fn shed_policy_strategy() -> impl Strategy<Value = ShedPolicy> {
    (0u8..3).prop_map(|i| match i {
        0 => ShedPolicy::RejectNewest,
        1 => ShedPolicy::RejectLargest,
        _ => ShedPolicy::DeadlineAware,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Family 1: budget tokens never go negative, and shed jobs are
    /// never partially executed.
    #[test]
    fn prop_budget_never_negative_and_sheds_never_execute(
        seed in any::<u64>(),
        capacity in 0.0f64..6.0,
        queue_cap in 1usize..4,
        policy in shed_policy_strategy(),
        sizes in proptest::collection::vec(1usize..4, 1..8),
        faulty in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let p = params();
        let mut svc = SortService::with_resilience(
            rcfg(),
            ResilienceConfig {
                admission: AdmissionConfig::bounded(queue_cap, policy),
                retry_budget: RetryBudgetConfig::bounded(capacity),
                ..ResilienceConfig::default()
            },
        );
        let spec = FaultSpec {
            sites: 2,
            max_phase: 6,
            sticky_permille: 300,
            permanent_permille: 0,
            spikes: true,
        };
        for (i, tiles) in sizes.iter().enumerate() {
            let n = tiles * p.tile() + i;
            let job_seed = seed ^ ((i as u64) << 16);
            let input = InputSpec::UniformRandom { seed: job_seed }.generate(n);
            let plan = if faulty[i] {
                FaultPlan::generate(job_seed, &pipeline_shape(n, &p), &spec)
            } else {
                FaultPlan::none()
            };
            // A deadline on every other job gives DeadlineAware victims.
            let deadline = if i % 2 == 1 { Some(1e-12) } else { None };
            svc.submit_with_faults(
                &format!("prop/job-{i}"),
                input,
                SortAlgorithm::CfMerge,
                plan,
                deadline,
            );
            // Tokens must be non-negative at every intermediate point.
            if let Some(t) = svc.budget_tokens() {
                prop_assert!(t >= 0.0, "budget underflow after submit: {t}");
            }
        }
        let outcomes = svc.drain();
        if let Some(t) = svc.budget_tokens() {
            prop_assert!(t >= 0.0, "budget underflow after drain: {t}");
        }
        let mut executed = 0u64;
        for o in &outcomes {
            match &o.result {
                Ok(_) | Err(SortError::DeadlineExceeded { .. }) => executed += 1,
                Err(SortError::Shed { .. } | SortError::Overloaded { .. }) => {
                    // Shed jobs never execute — not even partially.
                    let c = o.counters();
                    prop_assert_eq!(c.faults_injected, 0, "shed job injected faults");
                    prop_assert_eq!(c.retries, 0, "shed job retried blocks");
                    prop_assert_eq!(o.retries_granted, 0, "shed job was granted retries");
                    prop_assert!(o.checkpoints.is_empty(), "shed job took checkpoints");
                }
                Err(e) => prop_assert!(false, "untyped outcome: {e}"),
            }
        }
        prop_assert_eq!(svc.counters().executed, executed);
    }

    /// Family 2: for any outcome/time sequence, the breaker's transition
    /// log is a path in the legal state machine.
    #[test]
    fn prop_breaker_transitions_are_legal(
        threshold in 1u32..4,
        cooldown in 1e-6f64..1e-2,
        steps in proptest::collection::vec((any::<bool>(), 0.0f64..1e-2), 1..64),
    ) {
        let cfg = BreakerConfig { enabled: true, failure_threshold: threshold, cooldown_s: cooldown };
        let mut b = CircuitBreaker::new();
        let mut now = 0.0f64;
        for (success, dt) in steps {
            let route = b.route(now);
            // Quarantined runs are not fed back; normal and probe runs are.
            if route != cfmerge::core::resilience::Route::Quarantine {
                b.on_outcome(success, now, &cfg);
            }
            now += dt;
        }
        let mut state = BreakerState::Closed;
        for t in b.transitions() {
            prop_assert_eq!(t.from, state, "transition log is not contiguous");
            let legal = matches!(
                (t.from, t.to),
                (BreakerState::Closed, BreakerState::Open)
                    | (BreakerState::Open, BreakerState::HalfOpen)
                    | (BreakerState::HalfOpen, BreakerState::Closed)
                    | (BreakerState::HalfOpen, BreakerState::Open)
            );
            prop_assert!(legal, "illegal transition {:?} -> {:?}", t.from, t.to);
            state = t.to;
        }
        prop_assert_eq!(state, b.state());
    }
}

proptest! {
    // The resume family runs three full pipelines per case; keep the
    // case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Family 3: checkpoint → resume reproduces the uninterrupted run's
    /// output byte for byte for any kill point and any recoverable
    /// fault plan; on a fault-free plan the modeled cost and counters
    /// are byte-identical too. (With live faults, exact cost equality
    /// is not guaranteed: a corruption that stale scratch data masked
    /// in the original run is detected against the resume's fresh
    /// scratch buffers and priced as an extra retry, and a fallback
    /// restart discards the abandoned pipeline's partial seconds while
    /// a resume keeps the checkpoint's committed seconds.)
    #[test]
    fn prop_checkpoint_resume_is_byte_identical(
        seed in any::<u64>(),
        tiles in 2usize..9,
        extra in 0usize..160,
        kill_after in 0usize..4,
        inject in any::<bool>(),
    ) {
        let p = params();
        let n = tiles * p.tile() + extra;
        let shape = pipeline_shape(n, &p);
        // Kill points past the last pass never interrupt; clamp into range.
        let kill_after = kill_after.min(shape.len() - 1);
        let spec = FaultSpec {
            sites: 2,
            max_phase: 6,
            sticky_permille: 200,
            permanent_permille: 0,
            spikes: true,
        };
        let plan = if inject {
            FaultPlan::generate(seed, &shape, &spec)
        } else {
            FaultPlan::none()
        };
        let input = InputSpec::UniformRandom { seed }.generate(n);
        let cfg = rcfg();

        let whole = simulate_sort_robust(&input, SortAlgorithm::CfMerge, &cfg, &plan)
            .expect("recoverable plan");
        let killed = simulate_sort_robust_checkpointed(
            &input,
            SortAlgorithm::CfMerge,
            &cfg,
            &plan,
            CheckpointPolicy::kill_after(kill_after),
        );
        let cp = match killed {
            Err(SortError::Interrupted { after_pass, checkpoint }) => {
                prop_assert_eq!(after_pass, kill_after);
                *checkpoint
            }
            other => panic!("expected Interrupted after pass {kill_after}, got {other:?}"),
        };
        let resumed = resume_sort_robust::<u32>(&cp, &cfg, &plan).expect("resume");
        // The output is byte-identical regardless of the fault plan.
        prop_assert_eq!(&resumed.run.output, &whole.run.output, "outputs diverged");
        prop_assert_eq!(resumed.report.counters.unrecovered, 0);
        if !inject {
            // Fault-free resumes are byte-identical in the timing domain
            // too, and never re-execute a verified pass.
            prop_assert_eq!(
                resumed.run.simulated_seconds,
                whole.run.simulated_seconds,
                "modeled seconds diverged"
            );
            prop_assert_eq!(resumed.report.counters, whole.report.counters);
            prop_assert!(
                resumed.run.kernels.len() < whole.run.kernels.len(),
                "resume re-executed verified passes"
            );
        } else {
            // With live faults the resume can only do MORE recovery work
            // than the checkpoint recorded, never less.
            let cp_c = cp.counters;
            let r = resumed.report.counters;
            prop_assert!(r.faults_injected >= cp_c.faults_injected);
            prop_assert!(r.retries >= cp_c.retries);
        }
    }
}
