//! Determinism and parity properties for the multi-device cluster
//! service.
//!
//! 1. **Replay determinism** — for any (seed, traffic shape, device
//!    fault plan, admission policy), running the identical cluster twice
//!    yields a bit-identical report: same outcome order, same modeled
//!    completion times, same counters, same SLO percentiles, same
//!    serialized JSON. The workspace's rayon is the deterministic
//!    vendored shim (`vendor/rayon`), so available parallelism cannot
//!    perturb the event order either — the serialized-report equality
//!    here is what pins that contract.
//! 2. **Single-device parity** — with faults off, one device, and every
//!    arrival at `t = 0`, the cluster is bit-identical to `SortService`:
//!    outcomes, modeled clock, and counters.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::recovery::{RobustConfig, SortService};
use cfmerge::core::resilience::{
    AdmissionConfig, ClusterConfig, ClusterReport, ClusterService, DeviceFaultPlan,
    DeviceFaultSpec, LoadGenConfig, MigrationConfig, ResilienceConfig, ShedPolicy, TrafficShape,
};
use cfmerge::core::sort::{SortAlgorithm, SortConfig};
use cfmerge_json::ToJson;
use proptest::prelude::*;

fn rcfg() -> RobustConfig {
    RobustConfig::new(SortConfig::with_params(SortParams::new(5, 32)))
}

fn shape_strategy() -> impl Strategy<Value = TrafficShape> {
    (0u8..4, 5e4f64..2e5, 2usize..6).prop_map(|(kind, base_hz, burst_size)| match kind {
        0 => TrafficShape::Steady { rate_hz: 2.0 * base_hz },
        1 => TrafficShape::Diurnal { base_hz, peak_hz: 4.0 * base_hz, period_s: 1e-4 },
        2 => TrafficShape::Bursty { base_hz, burst_every_s: 5e-5, burst_size },
        _ => TrafficShape::WorstCaseFlood { rate_hz: 2.0 * base_hz },
    })
}

fn policy_strategy() -> impl Strategy<Value = AdmissionConfig> {
    (0u8..4, 2usize..6).prop_map(|(p, cap)| match p {
        0 => AdmissionConfig::default(),
        1 => AdmissionConfig::bounded(cap, ShedPolicy::RejectNewest),
        2 => AdmissionConfig::bounded(cap, ShedPolicy::RejectLargest),
        _ => AdmissionConfig::bounded(cap, ShedPolicy::DeadlineAware),
    })
}

fn build(
    seed: u64,
    devices: usize,
    shape: TrafficShape,
    admission: AdmissionConfig,
    fault_seed: u64,
    migration_enabled: bool,
) -> ClusterReport {
    let mut cfg = ClusterConfig::homogeneous(devices, rcfg());
    cfg.resilience.admission = admission;
    cfg.migration =
        if migration_enabled { MigrationConfig::default() } else { MigrationConfig::disabled() };
    // A seeded fault schedule over the whole traffic horizon: some draws
    // produce no faults at all, which is a case worth covering too.
    cfg.faults = DeviceFaultPlan::generate(
        fault_seed,
        devices,
        2e-4,
        &DeviceFaultSpec { events: 2, ..DeviceFaultSpec::default() },
    );
    let mut cluster = ClusterService::new(cfg);
    cluster.enable_telemetry();
    let gen = LoadGenConfig { shape, ..LoadGenConfig::steady(seed, 12, 1e5) };
    for req in gen.generate() {
        cluster.submit_request(req);
    }
    cluster.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: identical (seed, traffic, fault plan, policy) replay
    /// bit-identically — outcome order, counters, SLO percentiles, and
    /// the full serialized report.
    #[test]
    fn prop_cluster_reports_replay_bit_identically(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        devices in 1usize..4,
        shape in shape_strategy(),
        admission in policy_strategy(),
        migrate in any::<bool>(),
    ) {
        let a = build(seed, devices, shape, admission, fault_seed, migrate);
        let b = build(seed, devices, shape, admission, fault_seed, migrate);

        // Event order: per-job devices and completion times match 1:1.
        prop_assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.device, y.device);
            prop_assert_eq!(x.completed_s, y.completed_s);
            prop_assert_eq!(x.migrations, y.migrations);
            prop_assert_eq!(x.result.is_ok(), y.result.is_ok());
        }
        prop_assert_eq!(&a.counters, &b.counters);
        prop_assert_eq!(&a.tenant_slos, &b.tenant_slos);
        prop_assert_eq!(a.clock_s, b.clock_s);
        prop_assert_eq!(a.to_json().to_string_pretty(), b.to_json().to_string_pretty());
        let ta = a.telemetry.expect("telemetry enabled").to_json().to_string_pretty();
        let tb = b.telemetry.expect("telemetry enabled").to_json().to_string_pretty();
        prop_assert_eq!(ta, tb);
    }

    /// Property 2: a fault-free N=1 cluster with all arrivals at t=0 is
    /// bit-identical to `SortService` for any job mix.
    #[test]
    fn prop_single_device_cluster_matches_sort_service(
        seed in any::<u64>(),
        sizes in proptest::collection::vec(1usize..6, 1..6),
    ) {
        let params = SortParams::new(5, 32);
        let mut svc = SortService::new(rcfg());
        let mut cluster =
            ClusterService::new(ClusterConfig::single(rcfg(), ResilienceConfig::default()));
        for (i, tiles) in sizes.iter().enumerate() {
            let n = tiles * params.tile() + i % 5;
            let input =
                InputSpec::UniformRandom { seed: seed ^ ((i as u64) << 8) }.generate(n);
            let algo = if i % 2 == 0 {
                SortAlgorithm::CfMerge
            } else {
                SortAlgorithm::ThrustMergesort
            };
            svc.submit(&format!("job-{i}"), input.clone(), algo);
            cluster.submit(&format!("job-{i}"), input, algo);
        }
        let svc_out = svc.drain();
        let report = cluster.run();

        prop_assert_eq!(report.outcomes.len(), svc_out.len());
        for (c, s) in report.outcomes.iter().zip(&svc_out) {
            match (&c.result, &s.result) {
                (Ok(cr), Ok(sr)) => {
                    prop_assert_eq!(&cr.run.output, &sr.run.output);
                    prop_assert_eq!(cr.run.simulated_seconds, sr.run.simulated_seconds);
                }
                (Err(ce), Err(se)) => prop_assert_eq!(ce.to_string(), se.to_string()),
                _ => prop_assert!(false, "outcome class diverged"),
            }
        }
        prop_assert_eq!(report.clock_s, svc.clock_s());
        prop_assert_eq!(&report.counters, svc.counters());
    }
}
