//! Cross-crate integration: the companion algorithms against the core
//! pipelines and CPU oracle on shared inputs.

use cfmerge::algos::bitonic::bitonic_sort;
use cfmerge::algos::radix::radix_sort;
use cfmerge::algos::scan::{block_exclusive_scan, exclusive_scan_reference, ScanKind};
use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{simulate_sort, SortAlgorithm, SortConfig};
use cfmerge::gpu_sim::banks::BankModel;
use cfmerge::gpu_sim::device::Device;
use cfmerge::gpu_sim::timing::TimingModel;

#[test]
fn all_four_sorts_agree_on_every_input_shape() {
    let dev = Device::rtx2080ti();
    let tm = TimingModel::rtx2080ti_like();
    let cfg = SortConfig::with_params(SortParams::new(5, 32));
    for spec in [
        InputSpec::UniformRandom { seed: 0xA11 },
        InputSpec::Sorted,
        InputSpec::Reversed,
        InputSpec::FewDistinct { seed: 0xA11, distinct: 2 },
    ] {
        let input = spec.generate(3000);
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(
            simulate_sort(&input, SortAlgorithm::ThrustMergesort, &cfg).output,
            expect,
            "thrust on {}",
            spec.label()
        );
        assert_eq!(
            simulate_sort(&input, SortAlgorithm::CfMerge, &cfg).output,
            expect,
            "cf on {}",
            spec.label()
        );
        assert_eq!(bitonic_sort(&input, 32, &dev, &tm, false).output, expect);
        assert_eq!(radix_sort(&input, 32, &dev, &tm, false).output, expect);
    }
}

#[test]
fn scan_variants_and_conflict_contract() {
    let input: Vec<u32> = (0..512).map(|i| i * 7 + 3).collect();
    let expect = exclusive_scan_reference(&input);
    let mut conflict_counts = Vec::new();
    for kind in [ScanKind::HillisSteele, ScanKind::Blelloch, ScanKind::BlellochPadded] {
        let (out, profile) = block_exclusive_scan(BankModel::nvidia(), &input, kind);
        assert_eq!(out, expect, "{}", kind.label());
        conflict_counts.push(profile.total_bank_conflicts());
    }
    // hillis-steele: 0, blelloch: > 0, padded: 0.
    assert_eq!(conflict_counts[0], 0);
    assert!(conflict_counts[1] > 0);
    assert_eq!(conflict_counts[2], 0);
}

#[test]
fn comparison_sorts_beat_bitonic_at_scale() {
    // The landscape claim as a test: at 2^16 keys the merge-path sorts
    // outrun bitonic in simulated time.
    let dev = Device::rtx2080ti();
    let tm = TimingModel::rtx2080ti_like();
    let cfg = SortConfig::with_params(SortParams::e15_u512());
    let input = InputSpec::UniformRandom { seed: 77 }.generate(1 << 16);
    let merge = simulate_sort(&input, SortAlgorithm::CfMerge, &cfg);
    let bitonic = bitonic_sort(&input, 256, &dev, &tm, true);
    assert!(
        merge.simulated_seconds < bitonic.simulated_seconds,
        "cf-merge {:.2e}s vs bitonic {:.2e}s",
        merge.simulated_seconds,
        bitonic.simulated_seconds
    );
}
