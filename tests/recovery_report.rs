//! Golden-file pin for the recovery report: a small deterministic
//! fault-injection run must serialize its [`RecoveryReport`] (counters,
//! injection and detection records, degradations, priced recovery time)
//! byte-for-byte to the committed golden file.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test recovery_report`
//! after an intentional schema change.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::recovery::{pipeline_shape, simulate_sort_robust, RobustConfig};
use cfmerge::core::sort::{SortAlgorithm, SortConfig};
use cfmerge::core::verify::verify_sorted_permutation;
use cfmerge::gpu_sim::fault::{FaultPlan, FaultSpec};
use cfmerge_json::{FromJson, Json, ToJson};

#[test]
fn recovery_report_matches_golden_file() {
    let params = SortParams::new(5, 32);
    let n = 2 * params.tile() + 9;
    let spec = FaultSpec {
        sites: 4,
        max_phase: 6,
        sticky_permille: 400,
        permanent_permille: 0,
        spikes: true,
    };
    let plan = FaultPlan::generate(0xD00D_FEED, &pipeline_shape(n, &params), &spec);
    let input = InputSpec::UniformRandom { seed: 11 }.generate(n);
    let rcfg = RobustConfig::new(SortConfig::with_params(params));

    let run = simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &plan)
        .expect("recoverable plan");
    assert_eq!(verify_sorted_permutation(&input, &run.run.output), Ok(()));
    // The pinned plan must actually exercise the machinery, otherwise the
    // golden file pins a trivial document.
    assert!(run.report.counters.faults_injected > 0);
    assert!(run.report.counters.faults_detected > 0);

    let doc = Json::obj([
        ("algorithm", Json::from(format!("{:?}", run.algorithm))),
        ("n", Json::from(n)),
        ("report", run.report.to_json()),
    ]);
    let got = doc.to_string_pretty();

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/recovery_report.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &got).expect("bless golden file");
    }
    let want = std::fs::read_to_string(golden_path).unwrap_or_else(|e| {
        panic!("missing golden file {golden_path}: {e} (run with UPDATE_GOLDEN=1 to create it)")
    });
    assert_eq!(
        got.trim(),
        want.trim(),
        "recovery report drifted from the golden file; if the change is\n\
         intentional, regenerate tests/golden/recovery_report.json"
    );

    // Round-trip: the counters embedded in the golden document parse back.
    let parsed = Json::parse(&want).expect("golden file parses");
    let counters = cfmerge::core::recovery::RecoveryCounters::from_json(
        parsed.req("report").unwrap().req("counters").unwrap(),
    )
    .expect("counters round-trip");
    assert_eq!(counters, run.report.counters);
}
