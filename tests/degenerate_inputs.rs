//! Regression tests for degenerate inputs and configurations: empty and
//! single-element arrays, sizes that are not a multiple of the tile
//! `u·E`, all-equal keys, and invalid/unlaunchable configurations routed
//! through the typed (`try_*`) entry points.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::recovery::{simulate_sort_robust, RobustConfig};
use cfmerge::core::sort::{
    simulate_merge, simulate_sort, try_simulate_merge, try_simulate_sort, validate_sort_config,
    SortAlgorithm, SortConfig, SortError,
};
use cfmerge::gpu_sim::fault::FaultPlan;

fn cfg() -> SortConfig {
    SortConfig::with_params(SortParams::new(5, 32)) // tile = 160
}

const ALGOS: [SortAlgorithm; 2] = [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge];

#[test]
fn empty_input_sorts_to_empty() {
    for algo in ALGOS {
        let run = simulate_sort(&[], algo, &cfg());
        assert!(run.output.is_empty());
        assert_eq!(run.n, 0);
        assert_eq!(run.simulated_seconds, 0.0);
        assert!(run.kernels.is_empty());
    }
}

#[test]
fn single_element_is_identity() {
    for algo in ALGOS {
        let run = simulate_sort(&[99u32], algo, &cfg());
        assert_eq!(run.output, vec![99]);
        assert_eq!(run.n, 1);
    }
}

#[test]
fn non_tile_multiple_sizes_pad_and_truncate_correctly() {
    // Around every tile boundary of tile = 160: one short, exact, one over.
    for n in [2usize, 159, 160, 161, 319, 320, 321, 479, 641] {
        let input = InputSpec::UniformRandom { seed: n as u64 }.generate(n);
        let mut expect = input.clone();
        expect.sort_unstable();
        for algo in ALGOS {
            let run = simulate_sort(&input, algo, &cfg());
            assert_eq!(run.output, expect, "{algo:?} n={n}");
            assert_eq!(run.output.len(), n, "padding must be truncated away");
        }
    }
}

#[test]
fn all_equal_keys_survive_every_path() {
    let input = vec![7u32; 3 * 160 + 5];
    for algo in ALGOS {
        let run = simulate_sort(&input, algo, &cfg());
        assert_eq!(run.output, input, "{algo:?}");
        // Robust driver too: equal keys are where comparator-order bugs
        // and checksum blind spots would hide.
        let r = simulate_sort_robust(&input, algo, &RobustConfig::new(cfg()), &FaultPlan::none())
            .expect("all-equal keys must sort");
        assert_eq!(r.run.output, input, "{algo:?} robust");
        assert!(r.report.is_clean());
    }
}

#[test]
fn sentinel_keys_in_the_input_are_preserved() {
    // u32::MAX doubles as the padding sentinel; real MAX keys must not be
    // truncated with the pad.
    let mut input = InputSpec::UniformRandom { seed: 3 }.generate(200);
    input.extend([u32::MAX; 7]);
    let mut expect = input.clone();
    expect.sort_unstable();
    for algo in ALGOS {
        let run = simulate_sort(&input, algo, &cfg());
        assert_eq!(run.output, expect, "{algo:?}");
    }
}

#[test]
fn typed_errors_for_bad_configurations() {
    let input = InputSpec::UniformRandom { seed: 4 }.generate(100);
    // u not a multiple of w.
    let bad = SortConfig::with_params(SortParams::new(5, 48));
    assert!(matches!(
        try_simulate_sort(&input, SortAlgorithm::CfMerge, &bad),
        Err(SortError::InvalidConfig { .. })
    ));
    // u not a power of two (blocksort pairing).
    let bad = SortConfig::with_params(SortParams::new(5, 96));
    assert!(matches!(
        try_simulate_sort(&input, SortAlgorithm::CfMerge, &bad),
        Err(SortError::InvalidConfig { .. })
    ));
    // Thread count beyond the device limit.
    let bad = SortConfig::with_params(SortParams::new(15, 2048));
    assert!(matches!(
        try_simulate_sort(&input, SortAlgorithm::CfMerge, &bad),
        Err(SortError::Unlaunchable { .. })
    ));
    assert!(matches!(validate_sort_config(&bad), Err(SortError::Unlaunchable { .. })));
    // And a good config passes through to a real run.
    let run = try_simulate_sort(&input, SortAlgorithm::CfMerge, &cfg()).expect("valid config");
    assert!(run.output.is_sorted());
}

#[test]
fn try_merge_checks_sortedness_and_degenerate_shapes() {
    let sorted: Vec<u32> = (0..100).collect();
    let unsorted = vec![3u32, 1, 2];
    assert!(matches!(
        try_simulate_merge(&unsorted, &sorted, SortAlgorithm::CfMerge, &cfg()),
        Err(SortError::InvalidConfig { .. })
    ));
    assert!(matches!(
        try_simulate_merge(&sorted, &unsorted, SortAlgorithm::CfMerge, &cfg()),
        Err(SortError::InvalidConfig { .. })
    ));
    // Empty-by-empty and empty-by-something merges.
    let empty: Vec<u32> = Vec::new();
    let run = try_simulate_merge(&empty, &empty, SortAlgorithm::CfMerge, &cfg()).expect("empty");
    assert!(run.output.is_empty());
    let run = simulate_merge(&sorted, &empty, SortAlgorithm::ThrustMergesort, &cfg());
    assert_eq!(run.output, sorted);
}

#[test]
fn robust_driver_handles_degenerate_sizes_under_injection() {
    // A fault plan aimed at block 0 of every kernel; sizes small enough
    // that some launches have a single block.
    use cfmerge::gpu_sim::fault::{FaultKind, FaultSite, Persistence};
    let plan = FaultPlan::from_sites(vec![
        FaultSite {
            kernel: 0,
            block: 0,
            phase: 1,
            kind: FaultKind::StuckBank { bank: 0, bit: 5 },
            persistence: Persistence::Transient,
        },
        FaultSite {
            kernel: 1,
            block: 0,
            phase: 2,
            kind: FaultKind::LaneDropout { lane: 3 },
            persistence: Persistence::Transient,
        },
    ]);
    let rcfg = RobustConfig::new(cfg());
    for n in [1usize, 2, 159, 161, 320] {
        let input = InputSpec::UniformRandom { seed: 5 + n as u64 }.generate(n);
        let mut expect = input.clone();
        expect.sort_unstable();
        for algo in ALGOS {
            let r = simulate_sort_robust(&input, algo, &rcfg, &plan)
                .expect("transient faults must recover");
            assert_eq!(r.run.output, expect, "{algo:?} n={n}");
        }
    }
}
