//! Golden-file pin for the service resilience report: a small
//! deterministic `SortService` scenario — breaker trip, quarantine,
//! probe, recovery, a retry-budget denial, and an admission rejection —
//! must serialize its [`ServiceCounters`], per-job outcomes, and
//! breaker snapshots byte-for-byte to the committed golden file.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test resilience_report`
//! after an intentional schema change.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::recovery::{RobustConfig, SortService};
use cfmerge::core::resilience::{
    AdmissionConfig, BreakerConfig, ResilienceConfig, RetryBudgetConfig, ServiceCounters,
    ShedPolicy,
};
use cfmerge::core::sort::{SortAlgorithm, SortConfig};
use cfmerge::gpu_sim::fault::{FaultKind, FaultPlan, FaultSite, Persistence};
use cfmerge_json::{FromJson, Json, ToJson};

/// A sticky fault at the first blocksort block: defeats every retry, is
/// rescued by the fallback pipeline, and so reads as a breaker failure
/// signal (`fallbacks > 0`) without erroring the job.
fn sticky_poison() -> FaultPlan {
    FaultPlan::from_sites(vec![FaultSite {
        kernel: 0,
        block: 0,
        phase: 1,
        kind: FaultKind::StuckBank { bank: 1, bit: 3 },
        persistence: Persistence::Sticky,
    }])
}

#[test]
fn resilience_report_matches_golden_file() {
    let params = SortParams::new(5, 32);
    let n = 2 * params.tile();
    let rcfg = RobustConfig::new(SortConfig::with_params(params));
    let mut svc = SortService::with_resilience(
        rcfg,
        ResilienceConfig {
            admission: AdmissionConfig::bounded(4, ShedPolicy::RejectNewest),
            retry_budget: RetryBudgetConfig::bounded(4.0),
            breaker: BreakerConfig {
                enabled: true,
                failure_threshold: 2,
                // One launch overhead: the job right after the trip is
                // quarantined at the unchanged clock, and the job after
                // that probes (the quarantined job advanced the clock).
                cooldown_s: 3e-6,
            },
        },
    );

    let input = |seed: u64| InputSpec::UniformRandom { seed }.generate(n);
    // Two poisoned jobs trip the breaker (threshold 2), the third is
    // quarantined, the fourth probes and closes it. A fifth submission
    // overflows the bounded queue and is rejected up front.
    for i in 0..2 {
        svc.submit_with_faults(
            &format!("golden/poisoned-{i}"),
            input(i),
            SortAlgorithm::CfMerge,
            sticky_poison(),
            None,
        );
    }
    svc.submit("golden/quarantined", input(2), SortAlgorithm::CfMerge);
    svc.submit("golden/probe", input(3), SortAlgorithm::CfMerge);
    svc.submit("golden/rejected", input(4), SortAlgorithm::CfMerge);

    let outcomes = svc.drain();
    assert_eq!(outcomes.len(), 5);
    // The pinned scenario must actually exercise the machinery,
    // otherwise the golden file pins a trivial document.
    assert_eq!(svc.counters().breaker_opens, 1);
    assert_eq!(svc.counters().breaker_closes, 1);
    assert_eq!(svc.counters().quarantined, 1);
    assert_eq!(svc.counters().probes, 1);
    assert_eq!(svc.counters().shed_overload, 1);
    assert!(svc.counters().budget_denied > 0);

    let jobs: Vec<Json> = outcomes
        .iter()
        .map(|o| {
            let result = match &o.result {
                Ok(run) => Json::obj([
                    ("ok", Json::from(true)),
                    ("n", Json::from(run.run.n)),
                    ("seconds", Json::from(run.run.simulated_seconds)),
                    ("fallbacks", Json::from(run.report.counters.fallbacks)),
                ]),
                Err(e) => Json::obj([("ok", Json::from(false)), ("error", e.to_json())]),
            };
            Json::obj([
                ("id", Json::from(o.id.to_string())),
                ("label", Json::from(o.label.clone())),
                ("quarantined", Json::from(o.quarantined)),
                ("probe", Json::from(o.probe)),
                ("retries_granted", Json::from(o.retries_granted)),
                ("result", result),
            ])
        })
        .collect();
    let breakers: Vec<Json> = svc
        .breaker_snapshots()
        .into_iter()
        .map(|(algo, e, u, state, opens)| {
            Json::obj([
                ("pipeline", Json::from(algo)),
                ("e", Json::from(e)),
                ("u", Json::from(u)),
                ("state", Json::from(state.label())),
                ("opens", Json::from(opens)),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("n", Json::from(n)),
        ("jobs", Json::arr(jobs)),
        ("counters", svc.counters().to_json()),
        ("breakers", Json::arr(breakers)),
        ("clock_s", Json::from(svc.clock_s())),
        ("budget_tokens", Json::from(svc.budget_tokens().unwrap_or(f64::NAN))),
    ]);
    let got = doc.to_string_pretty();

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/resilience_report.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &got).expect("bless golden file");
    }
    let want = std::fs::read_to_string(golden_path).unwrap_or_else(|e| {
        panic!("missing golden file {golden_path}: {e} (run with UPDATE_GOLDEN=1 to create it)")
    });
    assert_eq!(
        got.trim(),
        want.trim(),
        "resilience report drifted from the golden file; if the change is\n\
         intentional, regenerate tests/golden/resilience_report.json"
    );

    // Round-trip: the counters embedded in the golden document parse back.
    let parsed = Json::parse(&want).expect("golden file parses");
    let counters =
        ServiceCounters::from_json(parsed.req("counters").unwrap()).expect("counters round-trip");
    assert_eq!(&counters, svc.counters());
}
