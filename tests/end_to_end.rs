//! Cross-crate integration tests: the simulated pipelines against the
//! CPU oracle, across algorithms, parameter sets, and input shapes.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{simulate_sort, SortAlgorithm, SortConfig};
use cfmerge::mergepath::cpu::{merge_sort_par, merge_sort_seq};

fn all_inputs() -> Vec<InputSpec> {
    vec![
        InputSpec::UniformRandom { seed: 0xE2E },
        InputSpec::RandomPermutation { seed: 0xE2E },
        InputSpec::Sorted,
        InputSpec::Reversed,
        InputSpec::FewDistinct { seed: 0xE2E, distinct: 3 },
        InputSpec::NearlySorted { seed: 0xE2E, swaps: 100 },
    ]
}

#[test]
fn gpu_pipelines_match_cpu_oracle() {
    for params in [SortParams::e15_u512(), SortParams::e17_u256(), SortParams::new(5, 64)] {
        let cfg = SortConfig::with_params(params);
        for spec in all_inputs() {
            let n = 3 * params.tile() + 17; // ragged on purpose
            let input = spec.generate(n);

            let mut oracle = input.clone();
            merge_sort_seq(&mut oracle);

            for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
                let run = simulate_sort(&input, algo, &cfg);
                assert_eq!(
                    run.output,
                    oracle,
                    "mismatch: {:?} on {} with E={},u={}",
                    algo,
                    spec.label(),
                    params.e,
                    params.u
                );
            }
        }
    }
}

#[test]
fn cpu_sorts_agree_with_each_other() {
    for spec in all_inputs() {
        for n in [0usize, 1, 2, 1000, 12345] {
            let input = spec.generate(n);
            let mut a = input.clone();
            let mut b = input.clone();
            merge_sort_seq(&mut a);
            merge_sort_par(&mut b, 480);
            assert_eq!(a, b, "{} n={n}", spec.label());
        }
    }
}

#[test]
fn both_pipelines_produce_identical_output() {
    // Identical inputs → identical sorted output, whatever the internal
    // layout differences.
    let cfg = SortConfig::paper_e15_u512();
    let input = InputSpec::UniformRandom { seed: 99 }.generate(4 * 7680);
    let a = simulate_sort(&input, SortAlgorithm::ThrustMergesort, &cfg);
    let b = simulate_sort(&input, SortAlgorithm::CfMerge, &cfg);
    assert_eq!(a.output, b.output);
    assert_eq!(a.n, b.n);
}

#[test]
fn global_traffic_parity_between_pipelines() {
    // CF-Merge's permutation lives entirely in shared addressing: the
    // DRAM traffic must be byte-identical to the baseline.
    let cfg = SortConfig::paper_e15_u512();
    let input = InputSpec::UniformRandom { seed: 5 }.generate(8 * 7680);
    let a = simulate_sort(&input, SortAlgorithm::ThrustMergesort, &cfg);
    let b = simulate_sort(&input, SortAlgorithm::CfMerge, &cfg);
    assert_eq!(a.profile.total().global_ld_sectors, b.profile.total().global_ld_sectors);
    assert_eq!(a.profile.total().global_st_sectors, b.profile.total().global_st_sectors);
}

#[test]
fn throughput_rises_with_n_before_saturation() {
    // The left side of the paper's Figure 6: throughput climbs with n
    // while the grid is too small to fill the device (more blocks → more
    // SMs busy), and simulated time still increases monotonically.
    let cfg = SortConfig::with_params(SortParams::new(5, 32));
    let mut prev_time = 0.0f64;
    let mut first_tp = None;
    let mut last_tp = 0.0f64;
    for tiles in [4usize, 16, 64, 256] {
        let n = tiles * cfg.params.tile();
        let run = simulate_sort(
            &InputSpec::UniformRandom { seed: 1 }.generate(n),
            SortAlgorithm::CfMerge,
            &cfg,
        );
        assert!(run.simulated_seconds > prev_time, "time must grow with n");
        prev_time = run.simulated_seconds;
        first_tp.get_or_insert(run.throughput());
        last_tp = run.throughput();
    }
    assert!(
        last_tp > 2.0 * first_tp.unwrap(),
        "throughput should climb steeply in the unsaturated regime: {first_tp:?} → {last_tp}"
    );
}

#[test]
fn profile_counters_are_internally_consistent() {
    let cfg = SortConfig::paper_e17_u256();
    let input = InputSpec::UniformRandom { seed: 2 }.generate(8 * 4352);
    for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
        let run = simulate_sort(&input, algo, &cfg);
        let t = run.profile.total();
        // Transactions ≥ requests (every request is at least one
        // transaction) for loads and stores separately.
        assert!(t.shared_ld_transactions >= t.shared_ld_requests);
        assert!(t.shared_st_transactions >= t.shared_st_requests);
        // Global sectors ≥ requests.
        assert!(t.global_ld_sectors >= t.global_ld_requests);
        // Kernel sum equals the aggregate.
        let mut sum = 0u64;
        for k in &run.kernels {
            sum += k.profile.total().shared_ld_transactions;
        }
        assert_eq!(sum, t.shared_ld_transactions);
    }
}
