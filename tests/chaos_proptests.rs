//! Property tests for the fault-injection / recovery stack: for *any*
//! seeded [`FaultPlan`], the robust driver must terminate within its
//! retry bound and return either a verified sorted permutation of the
//! input or a typed error — never silently corrupted output.

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::recovery::{pipeline_shape, simulate_sort_robust, RobustConfig};
use cfmerge::core::sort::{SortAlgorithm, SortConfig, SortError};
use cfmerge::core::verify::{multiset_checksum, verify_sorted_permutation};
use cfmerge::gpu_sim::fault::{FaultPlan, FaultSpec};
use proptest::prelude::*;

fn params() -> SortParams {
    SortParams::new(5, 32) // tile = 160: small enough for many proptest cases
}

fn algo_strategy() -> impl Strategy<Value = SortAlgorithm> {
    any::<bool>().prop_map(
        |cf| {
            if cf {
                SortAlgorithm::CfMerge
            } else {
                SortAlgorithm::ThrustMergesort
            }
        },
    )
}

fn spec_strategy() -> impl Strategy<Value = FaultSpec> {
    (1u32..=5, 0u32..=300, 0u32..=200, any::<bool>()).prop_map(
        |(sites, sticky_permille, permanent_permille, spikes)| FaultSpec {
            sites,
            max_phase: 6,
            sticky_permille,
            permanent_permille,
            spikes,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary fault plans: the driver always terminates with either a
    /// verified sorted permutation or a typed unrecoverable error, and the
    /// retry counters respect the configured bound.
    #[test]
    fn prop_faulty_runs_never_return_silent_corruption(
        seed in any::<u64>(),
        input_seed in any::<u64>(),
        n in 1usize..=3 * 160 + 37,
        algo in algo_strategy(),
        spec in spec_strategy(),
        allow_fallback in any::<bool>(),
        max_retries in 0u32..=3,
    ) {
        let p = params();
        let rcfg = RobustConfig {
            max_retries,
            allow_fallback,
            ..RobustConfig::new(SortConfig::with_params(p))
        };
        let plan = FaultPlan::generate(seed, &pipeline_shape(n, &p), &spec);
        let input = InputSpec::UniformRandom { seed: input_seed }.generate(n);

        match simulate_sort_robust(&input, algo, &rcfg, &plan) {
            Ok(r) => {
                // The only acceptable success: the exact sorted permutation.
                prop_assert_eq!(verify_sorted_permutation(&input, &r.run.output), Ok(()));
                // Retries are bounded: each retried block retries at most
                // max_retries times, on at most two pipeline executions
                // (primary + fallback).
                let c = r.report.counters;
                prop_assert!(
                    c.retries <= c.blocks_retried * u64::from(max_retries).max(1) * 2,
                    "retry bound violated: {:?}", c
                );
                prop_assert_eq!(c.unrecovered, 0);
                prop_assert!(c.fallbacks <= 1);
                if !allow_fallback {
                    prop_assert_eq!(c.fallbacks, 0);
                }
                // Detections and injections are recorded consistently.
                prop_assert_eq!(c.faults_detected, r.report.detections.len() as u64);
                prop_assert_eq!(c.faults_injected, r.report.injections.len() as u64);
            }
            Err(SortError::UnrecoverableFault { attempts, .. }) => {
                // Only plans that can outlive the recovery policy may end
                // here: permanent faults always can; sticky faults can when
                // fallback is disabled; transient faults only when there are
                // no retries *and* no fallback. The attempt count must
                // reflect the configured bound.
                prop_assert!(
                    plan.has_permanent()
                        || (!allow_fallback && (plan.has_persistent() || max_retries == 0)),
                    "plan recoverable under this policy must not end unrecoverable"
                );
                prop_assert!(attempts >= 1);
                prop_assert!(attempts <= max_retries + 1);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// A plan with no faults is bit-identical to the plain pipeline — the
    /// robustness layer is zero-cost when disabled.
    #[test]
    fn prop_clean_robust_run_matches_plain_sort(
        input_seed in any::<u64>(),
        n in 0usize..=2 * 160 + 13,
        algo in algo_strategy(),
    ) {
        let p = params();
        let cfg = SortConfig::with_params(p);
        let plain = cfmerge::core::sort::simulate_sort(
            &InputSpec::UniformRandom { seed: input_seed }.generate(n), algo, &cfg);
        let r = simulate_sort_robust(
            &InputSpec::UniformRandom { seed: input_seed }.generate(n),
            algo,
            &RobustConfig::new(cfg),
            &FaultPlan::none(),
        ).unwrap();
        prop_assert_eq!(&r.run.output, &plain.output);
        prop_assert_eq!(r.run.simulated_seconds, plain.simulated_seconds);
        prop_assert!(r.report.is_clean());
    }

    /// The multiset checksum is order-independent and additive — the two
    /// properties the per-block verifier relies on.
    #[test]
    fn prop_checksum_is_order_independent_and_additive(
        mut keys in proptest::collection::vec(any::<u32>(), 0..400),
        split in any::<u64>(),
    ) {
        let whole = multiset_checksum(&keys);
        let at = if keys.is_empty() { 0 } else { split as usize % keys.len() };
        let (a, b) = keys.split_at(at);
        prop_assert_eq!(
            multiset_checksum(a).wrapping_add(multiset_checksum(b)),
            whole,
            "checksum must be additive across any split"
        );
        keys.reverse();
        prop_assert_eq!(multiset_checksum(&keys), whole, "checksum must ignore order");
        keys.sort_unstable();
        prop_assert_eq!(multiset_checksum(&keys), whole);
    }
}
