//! Prover ↔ profiler cross-check: phases the symbolic analyzer certifies
//! conflict-free must show **zero** conflict rounds in the dynamic tracer
//! on the Theorem-8 worst-case inputs (the adversarial regime the
//! certificates quantify over), and phases the prover *refuses* to
//! certify (the Thrust serial merge) must show real conflicts there —
//! the refusal is informative, not conservative.

use cfmerge::core::analysis::{check_registry, check_registry_on, Expectation};
use cfmerge::core::cert::device_profiles;
use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{simulate_sort_traced, SortAlgorithm, SortConfig};
use cfmerge::gpu_sim::check::{BankShape, Verdict};
use cfmerge::gpu_sim::device::Device;
use cfmerge::gpu_sim::timing::TimingModel;
use cfmerge::gpu_sim::PhaseClass;

fn worst_case_trace(algo: SortAlgorithm, e: usize, u: usize) -> cfmerge::gpu_sim::trace::SortTrace {
    worst_case_trace_on(algo, Device::rtx2080ti(), e, u)
}

fn worst_case_trace_on(
    algo: SortAlgorithm,
    device: Device,
    e: usize,
    u: usize,
) -> cfmerge::gpu_sim::trace::SortTrace {
    let w = device.warp_width as usize;
    let config = SortConfig {
        params: SortParams::new(e, u),
        device,
        timing: TimingModel::rtx2080ti_like(),
        count_accesses: true,
    };
    let n = 4 * e * u;
    let input = InputSpec::WorstCase { w, e, u }.generate(n);
    let traced = simulate_sort_traced(&input, algo, &config);
    let mut expect = input;
    expect.sort_unstable();
    assert_eq!(traced.run.output, expect, "trace run must still sort");
    traced.trace
}

/// Conflict rounds recorded under `class` across every block of every
/// kernel launch.
fn conflict_rounds_in(trace: &cfmerge::gpu_sim::trace::SortTrace, class: PhaseClass) -> usize {
    trace
        .kernels
        .iter()
        .flat_map(|k| &k.blocks)
        .flat_map(|b| &b.conflicts)
        .filter(|c| c.class == class)
        .count()
}

#[test]
fn certified_cf_phases_have_zero_conflict_rounds_on_worst_case() {
    for (e, u) in [(15usize, 64usize), (17, 64)] {
        // Layer 1: the prover certifies the CF pipeline's data-movement
        // phases symbolically (no enumeration over inputs).
        let reports = check_registry(SortAlgorithm::CfMerge, 32, e, u);
        for phase in ["dual-gather", "load-tile", "permuting-load", "store-tile"] {
            for r in reports.iter().filter(|r| r.spec.phase == phase) {
                assert!(
                    r.verdict.is_conflict_free(),
                    "E={e}: expected a certificate for {phase}: {}",
                    r.summary()
                );
            }
        }
        // Layer 2: the dynamic tracer agrees on the adversarial input the
        // certificates quantify over.
        let trace = worst_case_trace(SortAlgorithm::CfMerge, e, u);
        for class in [PhaseClass::Gather, PhaseClass::LoadTile, PhaseClass::StoreTile] {
            assert_eq!(
                conflict_rounds_in(&trace, class),
                0,
                "E={e} u={u}: certified {} phase must record no conflict round",
                class.label()
            );
        }
        // The CF pipeline has no serial-merge phase at all.
        assert_eq!(conflict_rounds_in(&trace, PhaseClass::Merge), 0);
    }
}

#[test]
fn prover_verdicts_hold_dynamically_on_every_device_profile() {
    // For every device profile — including the fused 64-bit-bank Kepler
    // mode, where the bank model re-keys transactions on 64-bit rows —
    // the shape-parametric prover's verdicts must bound what the dynamic
    // tracer observes on the Theorem-8 worst case:
    //   * a phase class whose registry entries are all ConflictFree must
    //     record zero conflict rounds;
    //   * a class with Conflicting { transactions: k } entries must never
    //     exceed the largest claimed k.
    // The tracer uses `device.bank_model()` for its conflict degrees, so
    // this closes the loop between `prove_on` and `BankModel::round_cost`
    // per shape, not just at w = 32 × 32-bit.
    for profile in device_profiles() {
        let shape = BankShape::of_device(&profile.device);
        assert!(shape.supported(), "{}: shipped profiles are inside the lattice", profile.name);
        for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
            for (e, u) in [(15usize, 64usize), (17, 64)] {
                let reports = check_registry_on(algo, shape, e, u);
                assert!(!reports.is_empty());
                for r in &reports {
                    assert!(r.pass(), "{} {} E={e}: {}", profile.name, algo.label(), r.summary());
                }
                let trace = worst_case_trace_on(algo, profile.device.clone(), e, u);
                for class in PhaseClass::all() {
                    let of_class: Vec<_> =
                        reports.iter().filter(|r| r.spec.class == class).collect();
                    if of_class.is_empty() {
                        continue;
                    }
                    // The weakest claim across the class's phases bounds
                    // the class's dynamic degrees. A NotCertifiable entry
                    // (serial merge) makes no claim at all.
                    let mut bound = Some(1u32);
                    for r in &of_class {
                        bound = match (&r.verdict, bound) {
                            (_, None) => None,
                            (Verdict::ConflictFree(_), b) => b,
                            (Verdict::Conflicting { transactions, .. }, Some(b)) => {
                                Some(b.max(*transactions))
                            }
                            (Verdict::NotCertifiable { .. }, _) => None,
                        };
                    }
                    let Some(bound) = bound else { continue };
                    let worst_seen = trace
                        .kernels
                        .iter()
                        .flat_map(|k| &k.blocks)
                        .flat_map(|b| &b.conflicts)
                        .filter(|c| c.class == class)
                        .map(|c| c.degree)
                        .max()
                        .unwrap_or(1);
                    assert!(
                        worst_seen <= bound,
                        "{} {} E={e} u={u} {}: prover claims ≤{bound} transactions but the \
                         tracer saw degree {worst_seen}",
                        profile.name,
                        algo.label(),
                        class.label()
                    );
                }
            }
        }
    }
}

#[test]
fn fused_banks_break_some_certificates_and_the_prover_says_so() {
    // On the 64-bit-bank profile the CF pipeline's coprime layout is no
    // longer universally conflict-free — the prover must *downgrade*
    // (not silently keep) the affected verdicts, and the tracer must
    // actually realize a conflict the 32-bit profile never shows.
    let (e, u) = (15usize, 64usize);
    let w32 = check_registry_on(SortAlgorithm::CfMerge, BankShape::word32(32), e, u);
    let w64 = check_registry_on(SortAlgorithm::CfMerge, BankShape::word64(32), e, u);
    let free = |reports: &[cfmerge::core::analysis::PhaseReport]| {
        reports.iter().filter(|r| r.verdict.is_conflict_free()).count()
    };
    assert!(
        free(&w64) < free(&w32),
        "fusing banks must cost certificates: {} free on 64-bit vs {} on 32-bit",
        free(&w64),
        free(&w32)
    );
    let trace = worst_case_trace_on(SortAlgorithm::CfMerge, Device::kepler_64bit_like(), e, u);
    let conflicts: usize =
        trace.kernels.iter().flat_map(|k| &k.blocks).map(|b| b.conflicts.len()).sum();
    assert!(conflicts > 0, "the downgraded verdicts are real: 64-bit rows do conflict");
}

#[test]
fn uncertified_serial_merge_really_conflicts_on_worst_case() {
    let (e, u) = (15usize, 64usize);
    // The prover refuses the serial merge (comparison-driven addresses) …
    let reports = check_registry(SortAlgorithm::ThrustMergesort, 32, e, u);
    let refusals: Vec<_> = reports.iter().filter(|r| r.spec.phase == "serial-merge").collect();
    assert_eq!(refusals.len(), 2, "blocksort + merge-pass serial merges");
    for r in &refusals {
        assert_eq!(r.spec.expected, Expectation::NotCertifiable, "{}", r.summary());
        assert!(r.pass(), "{}", r.summary());
    }
    // … and the refusal is not conservatism: the worst-case input makes
    // the phase conflict heavily in the dynamic tracer.
    let trace = worst_case_trace(SortAlgorithm::ThrustMergesort, e, u);
    let merge_conflicts = conflict_rounds_in(&trace, PhaseClass::Merge);
    assert!(
        merge_conflicts > 100,
        "Thrust serial merge must conflict on the Theorem-8 input \
         (saw {merge_conflicts} conflict rounds)"
    );
}

#[test]
fn mid_width_writeback_verdict_matches_tracer() {
    // The prover's only non-free verdict in the coprime CF blocksort is
    // the inter-round writeback at mid run widths (exactly 2
    // transactions). The tracer must observe Sort-class conflict rounds
    // of degree exactly 2 — no more — confirming the exact evaluation.
    let (e, u) = (15usize, 64usize);
    let reports = check_registry(SortAlgorithm::CfMerge, 32, e, u);
    assert!(reports.iter().any(|r| r.spec.phase.starts_with("merge-writeback")
        && r.spec.expected == Expectation::CertifiedDegree(2)
        && r.pass()));
    let trace = worst_case_trace(SortAlgorithm::CfMerge, e, u);
    let sort_degrees: Vec<u32> = trace
        .kernels
        .iter()
        .flat_map(|k| &k.blocks)
        .flat_map(|b| &b.conflicts)
        .filter(|c| c.class == PhaseClass::Sort)
        .map(|c| c.degree)
        .collect();
    assert!(!sort_degrees.is_empty(), "mid-width writebacks do conflict");
    assert!(
        sort_degrees.iter().all(|&d| d == 2),
        "every Sort-class conflict round has degree exactly 2: {sort_degrees:?}"
    );
}
