//! Prover ↔ profiler cross-check: phases the symbolic analyzer certifies
//! conflict-free must show **zero** conflict rounds in the dynamic tracer
//! on the Theorem-8 worst-case inputs (the adversarial regime the
//! certificates quantify over), and phases the prover *refuses* to
//! certify (the Thrust serial merge) must show real conflicts there —
//! the refusal is informative, not conservative.

use cfmerge::core::analysis::{check_registry, Expectation};
use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{simulate_sort_traced, SortAlgorithm, SortConfig};
use cfmerge::gpu_sim::PhaseClass;

fn worst_case_trace(algo: SortAlgorithm, e: usize, u: usize) -> cfmerge::gpu_sim::trace::SortTrace {
    let config = SortConfig::with_params(SortParams::new(e, u));
    let n = 4 * e * u;
    let input = InputSpec::WorstCase { w: 32, e, u }.generate(n);
    let traced = simulate_sort_traced(&input, algo, &config);
    let mut expect = input;
    expect.sort_unstable();
    assert_eq!(traced.run.output, expect, "trace run must still sort");
    traced.trace
}

/// Conflict rounds recorded under `class` across every block of every
/// kernel launch.
fn conflict_rounds_in(trace: &cfmerge::gpu_sim::trace::SortTrace, class: PhaseClass) -> usize {
    trace
        .kernels
        .iter()
        .flat_map(|k| &k.blocks)
        .flat_map(|b| &b.conflicts)
        .filter(|c| c.class == class)
        .count()
}

#[test]
fn certified_cf_phases_have_zero_conflict_rounds_on_worst_case() {
    for (e, u) in [(15usize, 64usize), (17, 64)] {
        // Layer 1: the prover certifies the CF pipeline's data-movement
        // phases symbolically (no enumeration over inputs).
        let reports = check_registry(SortAlgorithm::CfMerge, 32, e, u);
        for phase in ["dual-gather", "load-tile", "permuting-load", "store-tile"] {
            for r in reports.iter().filter(|r| r.spec.phase == phase) {
                assert!(
                    r.verdict.is_conflict_free(),
                    "E={e}: expected a certificate for {phase}: {}",
                    r.summary()
                );
            }
        }
        // Layer 2: the dynamic tracer agrees on the adversarial input the
        // certificates quantify over.
        let trace = worst_case_trace(SortAlgorithm::CfMerge, e, u);
        for class in [PhaseClass::Gather, PhaseClass::LoadTile, PhaseClass::StoreTile] {
            assert_eq!(
                conflict_rounds_in(&trace, class),
                0,
                "E={e} u={u}: certified {} phase must record no conflict round",
                class.label()
            );
        }
        // The CF pipeline has no serial-merge phase at all.
        assert_eq!(conflict_rounds_in(&trace, PhaseClass::Merge), 0);
    }
}

#[test]
fn uncertified_serial_merge_really_conflicts_on_worst_case() {
    let (e, u) = (15usize, 64usize);
    // The prover refuses the serial merge (comparison-driven addresses) …
    let reports = check_registry(SortAlgorithm::ThrustMergesort, 32, e, u);
    let refusals: Vec<_> = reports.iter().filter(|r| r.spec.phase == "serial-merge").collect();
    assert_eq!(refusals.len(), 2, "blocksort + merge-pass serial merges");
    for r in &refusals {
        assert_eq!(r.spec.expected, Expectation::NotCertifiable, "{}", r.summary());
        assert!(r.pass(), "{}", r.summary());
    }
    // … and the refusal is not conservatism: the worst-case input makes
    // the phase conflict heavily in the dynamic tracer.
    let trace = worst_case_trace(SortAlgorithm::ThrustMergesort, e, u);
    let merge_conflicts = conflict_rounds_in(&trace, PhaseClass::Merge);
    assert!(
        merge_conflicts > 100,
        "Thrust serial merge must conflict on the Theorem-8 input \
         (saw {merge_conflicts} conflict rounds)"
    );
}

#[test]
fn mid_width_writeback_verdict_matches_tracer() {
    // The prover's only non-free verdict in the coprime CF blocksort is
    // the inter-round writeback at mid run widths (exactly 2
    // transactions). The tracer must observe Sort-class conflict rounds
    // of degree exactly 2 — no more — confirming the exact evaluation.
    let (e, u) = (15usize, 64usize);
    let reports = check_registry(SortAlgorithm::CfMerge, 32, e, u);
    assert!(reports.iter().any(|r| r.spec.phase.starts_with("merge-writeback")
        && r.spec.expected == Expectation::CertifiedDegree(2)
        && r.pass()));
    let trace = worst_case_trace(SortAlgorithm::CfMerge, e, u);
    let sort_degrees: Vec<u32> = trace
        .kernels
        .iter()
        .flat_map(|k| &k.blocks)
        .flat_map(|b| &b.conflicts)
        .filter(|c| c.class == PhaseClass::Sort)
        .map(|c| c.degree)
        .collect();
    assert!(!sort_degrees.is_empty(), "mid-width writebacks do conflict");
    assert!(
        sort_degrees.iter().all(|&d| d == 2),
        "every Sort-class conflict round has degree exactly 2: {sort_degrees:?}"
    );
}
