//! Certificate soundness as a property: for random points of the
//! supported `(E, u, bank-word)` lattice, a `ConflictFree` verdict from
//! the shape-parametric prover must mean every concretized round costs
//! exactly one transaction under that shape's [`BankModel`], and a
//! `Conflicting { transactions: k }` verdict must bound every round by
//! `k`. This holds the symbolic layer (`prove_on` over the address-
//! schedule IR) to the ground-truth cost model the simulator charges —
//! if a fused-exhaustive rule ever under-enumerates its concretizations,
//! this suite finds the witness round.

use cfmerge::core::analysis::kernel_registry_on;
use cfmerge::core::sort::SortAlgorithm;
use cfmerge::gpu_sim::check::{prove_on, BankShape, Verdict};
use proptest::prelude::*;

/// Random supported bank shape: always 32 banks (the warp width the
/// pipelines are written for) with a 32- or 64-bit bank word.
fn shape_strategy() -> impl Strategy<Value = BankShape> {
    (1u32..=2).prop_map(|word| BankShape { banks: 32, word_u32s: word })
}

/// Random `(E, u)` inside the paper's constraint set: `E ≤ w`, `u` a
/// power-of-two multiple of `w`, tile small enough to test fast.
fn params_strategy() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=32, 0u32..=2).prop_map(|(e, shift)| (e, 32usize << shift))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CF verdict ⇒ simulated round cost equals the conflict-free
    /// baseline (1 transaction) on *every* round the pattern can
    /// realize; Conflicting{k} ⇒ no realizable round exceeds k.
    #[test]
    fn prop_verdicts_bound_every_concretized_round(
        shape in shape_strategy(),
        (e, u) in params_strategy(),
        algo_pick in 0u32..=1,
    ) {
        let algo =
            if algo_pick == 0 { SortAlgorithm::ThrustMergesort } else { SortAlgorithm::CfMerge };
        let warps = u / shape.banks;
        let model = shape.bank_model();
        for spec in kernel_registry_on(algo, shape, e, u) {
            let verdict = prove_on(&spec.pattern, shape, warps);
            let bound = match &verdict {
                Verdict::ConflictFree(_) => 1,
                Verdict::Conflicting { transactions, .. } => *transactions,
                Verdict::NotCertifiable { .. } => continue,
            };
            // The exhaustive concretization set is the prover's own
            // evidence; every sampled round is contained in it, so
            // checking it checks both.
            let rounds = spec.pattern.exhaustive_rounds(shape.banks, warps);
            prop_assert!(!rounds.is_empty(), "decided verdicts rest on evidence");
            for round in &rounds {
                let cost = model.round_cost(round).transactions;
                prop_assert!(
                    cost <= bound,
                    "{}/{} on {}: verdict claims ≤{bound} but round {round:?} costs {cost}",
                    spec.kernel, spec.phase, shape.label()
                );
            }
        }
    }

    /// Unsupported shapes never yield a decided verdict — the lattice
    /// boundary fails closed for *any* pattern in the registry.
    #[test]
    fn prop_unsupported_shapes_fail_closed(
        (e, u) in params_strategy(),
        word in 3u32..=8,
    ) {
        let bad = BankShape { banks: 32, word_u32s: word };
        prop_assert!(!bad.supported());
        let warps = u / bad.banks;
        for spec in kernel_registry_on(SortAlgorithm::CfMerge, BankShape::word32(32), e, u) {
            let verdict = prove_on(&spec.pattern, bad, warps);
            prop_assert!(
                matches!(verdict, Verdict::NotCertifiable { .. }),
                "{}/{}: shape outside the lattice must refuse, got {:?}",
                spec.kernel, spec.phase, verdict
            );
        }
    }
}
