//! # cfmerge-algos — companion GPU algorithms on the simulator
//!
//! The paper situates CF-Merge among a family of shared-memory-heavy GPU
//! algorithms whose bank-conflict behaviour has been studied before
//! (scans [18], tridiagonal solvers, permutations, …) and positions
//! mergesort as the fastest *comparison-based* GPU sort. This crate
//! provides the context those claims live in, implemented on the same
//! simulator with the same exact conflict accounting:
//!
//! * [`scan`] — block-level prefix sums: Hillis–Steele, and Blelloch's
//!   work-efficient tree scan with and without the classic
//!   conflict-avoiding padding (Dotsenko et al.'s problem, GPU Gems 3's
//!   fix). The unpadded tree scan is the textbook bank-conflict
//!   disaster; the padded one is conflict-free — both measured, not
//!   asserted.
//! * [`bitonic`] — a full bitonic mergesort pipeline (the classic
//!   data-oblivious comparison sort): conflict-free by construction in
//!   shared memory but `Θ(n log² n)` work, so mergesort overtakes it —
//!   the crossover the benches show.
//! * [`radix`] — an LSD radix sort (4 bits/pass) built on the scans:
//!   the non-comparison sort that outruns any mergesort on 32-bit keys,
//!   which is *why* the paper's claim is scoped to comparison-based
//!   sorting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic;
pub mod radix;
pub mod scan;

/// Per-block parallelism seam: with the default `rayon` feature the
/// companion sorts fan blocks out via `rayon::prelude`; without it the
/// same call sites resolve to these sequential equivalents, so the crate
/// builds (and produces identical results) with no dependencies at all.
pub(crate) mod parallel {
    #[cfg(feature = "rayon")]
    pub(crate) use rayon::prelude::*;

    #[cfg(not(feature = "rayon"))]
    pub(crate) trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> Self::Iter;
    }

    #[cfg(not(feature = "rayon"))]
    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    #[cfg(not(feature = "rayon"))]
    pub(crate) trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    #[cfg(not(feature = "rayon"))]
    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}
