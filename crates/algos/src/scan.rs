//! Block-level prefix sums in shared memory — the classic bank-conflict
//! case study (Dotsenko et al., cited as [18] by the paper).
//!
//! Three variants over one tile of `u` elements (one per thread):
//!
//! * [`hillis_steele`] — `log u` rounds of `x[i] += x[i - 2^k]`: accesses
//!   are unit-offset per lane, so it is naturally conflict-free, but it
//!   does `Θ(u log u)` work.
//! * [`blelloch`] — the work-efficient up-sweep/down-sweep tree: only
//!   `Θ(u)` adds, but the tree strides are powers of two — the textbook
//!   worst case for `w = 32` banks (up to 16-way conflicts near the
//!   root).
//! * [`blelloch_padded`] — the classic fix: skew every index by
//!   `idx / w` padding words so tree strides land in distinct banks.
//!
//! The simulator measures all three; tests pin the expected conflict
//! structure (zero / heavy / zero).

use cfmerge_gpu_sim::banks::BankModel;
use cfmerge_gpu_sim::block::BlockSim;
use cfmerge_gpu_sim::profiler::{KernelProfile, PhaseClass};

/// Which scan implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanKind {
    /// Naive `Θ(u log u)` scan, conflict-free.
    HillisSteele,
    /// Work-efficient tree scan, unpadded (conflict-heavy).
    Blelloch,
    /// Work-efficient tree scan with bank-skew padding (conflict-free).
    BlellochPadded,
}

impl ScanKind {
    /// Label for report tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ScanKind::HillisSteele => "hillis-steele",
            ScanKind::Blelloch => "blelloch",
            ScanKind::BlellochPadded => "blelloch+pad",
        }
    }
}

/// Padding skew: one extra word per `w` (the GPU Gems 3
/// `CONFLICT_FREE_OFFSET`).
fn pad(idx: usize, w: usize) -> usize {
    idx + idx / w
}

/// Exclusive prefix sum of one `u`-element tile (wrapping arithmetic).
/// Returns `(result, profile)`.
///
/// # Panics
/// Panics unless `u` is a power-of-two multiple of the warp width.
#[must_use]
pub fn block_exclusive_scan(
    banks: BankModel,
    input: &[u32],
    kind: ScanKind,
) -> (Vec<u32>, KernelProfile) {
    let w = banks.num_banks as usize;
    let u = input.len();
    assert!(
        u.is_power_of_two() && u.is_multiple_of(w),
        "tile of {u} must be a power-of-two multiple of w={w}"
    );
    let padded_len = match kind {
        ScanKind::BlellochPadded => pad(u - 1, w) + 1,
        _ => u,
    };
    let mut block = BlockSim::<u32>::new(banks, u, padded_len);
    let at = |idx: usize| match kind {
        ScanKind::BlellochPadded => pad(idx, w),
        _ => idx,
    };

    // Load (one element per thread, unit stride modulo padding skew).
    block.phase(PhaseClass::LoadTile, |tid, lane| {
        let v = lane.ld_global(input, tid);
        lane.st(at(tid), v);
    });

    match kind {
        ScanKind::HillisSteele => {
            // Inclusive scan by doubling, then shift to exclusive.
            let mut offset = 1usize;
            while offset < u {
                // Read phase: every thread reads its left neighbour.
                let mut partial = vec![0u32; u];
                block.phase(PhaseClass::Other, |tid, lane| {
                    if tid >= offset {
                        partial[tid] = lane.ld(tid - offset);
                    }
                });
                // Write phase (barrier-separated, as on hardware).
                block.phase(PhaseClass::Other, |tid, lane| {
                    if tid >= offset {
                        let cur = lane.ld(tid);
                        lane.st(tid, cur.wrapping_add(partial[tid]));
                        lane.alu(1);
                    }
                });
                offset *= 2;
            }
            // Inclusive → exclusive shift.
            let mut vals = vec![0u32; u];
            block.phase(PhaseClass::Other, |tid, lane| {
                vals[tid] = if tid == 0 { 0 } else { lane.ld(tid - 1) };
            });
            block.phase(PhaseClass::StoreTile, |tid, lane| {
                lane.st(tid, vals[tid]);
            });
        }
        ScanKind::Blelloch | ScanKind::BlellochPadded => {
            // Up-sweep: one thread per active pair.
            let mut stride = 1usize;
            while stride < u {
                let active = u / (2 * stride);
                block.phase(PhaseClass::Other, |tid, lane| {
                    if tid < active {
                        let i = at(stride * (2 * tid + 1) - 1);
                        let j = at(stride * (2 * tid + 2) - 1);
                        let a = lane.ld(i);
                        let b = lane.ld(j);
                        lane.st(j, a.wrapping_add(b));
                        lane.alu(1);
                    }
                });
                stride *= 2;
            }
            // Clear the root.
            block.phase(PhaseClass::Other, |tid, lane| {
                if tid == 0 {
                    lane.st(at(u - 1), 0);
                }
            });
            // Down-sweep.
            let mut stride = u / 2;
            while stride >= 1 {
                let active = u / (2 * stride);
                block.phase(PhaseClass::Other, |tid, lane| {
                    if tid < active {
                        let i = at(stride * (2 * tid + 1) - 1);
                        let j = at(stride * (2 * tid + 2) - 1);
                        let t = lane.ld(i);
                        let x = lane.ld(j);
                        lane.st(i, x);
                        lane.st(j, x.wrapping_add(t));
                        lane.alu(1);
                    }
                });
                stride /= 2;
            }
        }
    }

    // Read the results back.
    let mut out = vec![0u32; u];
    block.phase(PhaseClass::StoreTile, |tid, lane| {
        out[tid] = lane.ld(at(tid));
    });
    (out, block.profile)
}

/// Reference exclusive scan (wrapping).
#[must_use]
pub fn exclusive_scan_reference(input: &[u32]) -> Vec<u32> {
    let mut acc = 0u32;
    input
        .iter()
        .map(|&x| {
            let out = acc;
            acc = acc.wrapping_add(x);
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn run(kind: ScanKind, u: usize, seed: u64) -> (Vec<u32>, Vec<u32>, KernelProfile) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let input: Vec<u32> = (0..u).map(|_| rng.gen_range(0..1000)).collect();
        let (out, profile) = block_exclusive_scan(BankModel::nvidia(), &input, kind);
        let expect = exclusive_scan_reference(&input);
        (out, expect, profile)
    }

    #[test]
    fn all_variants_compute_the_scan() {
        for kind in [ScanKind::HillisSteele, ScanKind::Blelloch, ScanKind::BlellochPadded] {
            for u in [32usize, 128, 512, 1024] {
                let (out, expect, _) = run(kind, u, 42);
                assert_eq!(out, expect, "{} u={u}", kind.label());
            }
        }
    }

    #[test]
    fn wrapping_sums_are_fine() {
        let input = vec![u32::MAX; 64];
        let (out, p) = block_exclusive_scan(BankModel::nvidia(), &input, ScanKind::Blelloch);
        assert_eq!(out, exclusive_scan_reference(&input));
        assert!(p.total().shared_requests() > 0);
    }

    #[test]
    fn conflict_structure_matches_the_textbook() {
        let u = 512usize;
        let (_, _, hs) = run(ScanKind::HillisSteele, u, 7);
        let (_, _, bl) = run(ScanKind::Blelloch, u, 7);
        let (_, _, pd) = run(ScanKind::BlellochPadded, u, 7);
        // Hillis-Steele: unit-offset lanes → conflict-free.
        assert_eq!(hs.total_bank_conflicts(), 0, "hillis-steele must be conflict-free");
        // Unpadded tree scan: heavy conflicts from power-of-two strides.
        assert!(
            bl.total_bank_conflicts() > 100,
            "unpadded Blelloch should conflict heavily, got {}",
            bl.total_bank_conflicts()
        );
        // Padded: zero.
        assert_eq!(pd.total_bank_conflicts(), 0, "padding must remove all conflicts");
        // And work efficiency: Blelloch issues fewer adds than
        // Hillis-Steele.
        assert!(bl.total().alu_ops < hs.total().alu_ops);
        // Same number of tree accesses padded vs not.
        assert_eq!(bl.total().shared_requests(), pd.total().shared_requests());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn ragged_tile_rejected() {
        let _ = block_exclusive_scan(BankModel::nvidia(), &[1u32; 100], ScanKind::Blelloch);
    }
}
