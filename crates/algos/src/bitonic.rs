//! A full bitonic mergesort pipeline on the simulator — the classic
//! data-oblivious comparison sort, as a second baseline beside the
//! merge-path mergesorts.
//!
//! Batcher's bitonic network sorts `n = 2^k` keys in `Θ(log² n)` stages
//! of `n/2` compare-exchanges. On a GPU, substages whose partner stride
//! fits inside a block's chunk run in shared memory (many substages per
//! tile load); wider strides touch global memory directly. Interesting
//! conflict fact the simulator measures: the *shared* substages of a
//! bitonic sort are **not** conflict-free — at stride `j < w` the lane
//! addresses advance by 2 within a warp (`gcd = 2`-way conflicts), one
//! of the reasons tuned GPU bitonic sorts still lose to merge-path
//! mergesort beyond small `n` despite their beautiful regularity (the
//! asymptotic `log n` extra factor being the other).

use crate::parallel::*;
use cfmerge_core::sort::key::SortKey;
use cfmerge_gpu_sim::banks::BankModel;
use cfmerge_gpu_sim::block::BlockSim;
use cfmerge_gpu_sim::device::Device;
use cfmerge_gpu_sim::occupancy::BlockResources;
use cfmerge_gpu_sim::profiler::{KernelProfile, PhaseClass};
use cfmerge_gpu_sim::timing::{LaunchConfig, TimingModel};

/// Result of a simulated bitonic sort.
#[derive(Debug, Clone)]
pub struct BitonicRun<K = u32> {
    /// Sorted output (input length).
    pub output: Vec<K>,
    /// Aggregate profile.
    pub profile: KernelProfile,
    /// Modeled runtime in seconds.
    pub simulated_seconds: f64,
    /// Number of kernel launches (global substages + shared-stage
    /// kernels).
    pub launches: u64,
    /// Input size.
    pub n: usize,
}

impl<K> BitonicRun<K> {
    /// Elements per microsecond.
    ///
    /// # Panics
    /// Panics if the modeled runtime is non-positive, which no simulated
    /// run can produce (launch overhead is always charged).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        cfmerge_core::metrics::elements_per_us(self.n, self.simulated_seconds)
            .expect("a simulated run always has positive modeled runtime")
    }
}

/// Direction of the bitonic compare-exchange at global index `i` in the
/// stage of width `k`: ascending iff bit `k` of `i` is clear.
fn ascending(i: usize, k: usize) -> bool {
    i & k == 0
}

/// Sort on the simulated GPU with a bitonic network. `u` threads per
/// block, each block owning a chunk of `2u` keys for the shared-memory
/// substages.
///
/// # Panics
/// Panics unless `u` is a power-of-two multiple of the device warp width.
#[must_use]
pub fn bitonic_sort<K: SortKey>(
    input: &[K],
    u: usize,
    device: &Device,
    timing: &TimingModel,
    count_accesses: bool,
) -> BitonicRun<K> {
    let w = device.warp_width as usize;
    assert!(
        u.is_power_of_two() && u.is_multiple_of(w),
        "u={u} must be a power-of-two multiple of w={w}"
    );
    let banks = device.bank_model();
    let n = input.len();
    if n == 0 {
        return BitonicRun {
            output: Vec::new(),
            profile: KernelProfile::new(),
            simulated_seconds: 0.0,
            launches: 0,
            n: 0,
        };
    }
    let chunk = 2 * u;
    let n_pad = n.next_power_of_two().max(chunk);
    let mut data = input.to_vec();
    data.resize(n_pad, K::MAX_SENTINEL);

    let launch = LaunchConfig {
        blocks: (n_pad / chunk) as u64,
        resources: BlockResources {
            threads: u as u32,
            shared_bytes: (chunk * 4) as u32,
            regs_per_thread: 24,
        },
    };
    let mut total_profile = KernelProfile::new();
    let mut seconds = 0.0;
    let mut launches = 0u64;

    let mut k = 2usize;
    while k <= n_pad {
        let mut j = k / 2;
        // Global substages (stride ≥ chunk): one kernel each.
        while j >= chunk {
            let profile = global_substage(banks, u, &mut data, j, k, count_accesses);
            let t = timing
                .kernel_time(device, &profile.total(), &launch)
                .expect("bitonic launch fits the device");
            seconds += t.seconds;
            total_profile.merge(&profile);
            launches += 1;
            j /= 2;
        }
        // Remaining substages of this stage run in shared, one kernel.
        if j >= 1 {
            let profile = shared_substages(banks, u, &mut data, j, k, count_accesses);
            let t = timing
                .kernel_time(device, &profile.total(), &launch)
                .expect("bitonic launch fits the device");
            seconds += t.seconds;
            total_profile.merge(&profile);
            launches += 1;
        }
        k *= 2;
    }

    data.truncate(n);
    BitonicRun { output: data, profile: total_profile, simulated_seconds: seconds, launches, n }
}

/// One global-memory substage: every thread performs one
/// compare-exchange at stride `j ≥ chunk`.
fn global_substage<K: SortKey>(
    banks: BankModel,
    u: usize,
    data: &mut [K],
    j: usize,
    k: usize,
    count: bool,
) -> KernelProfile {
    let n = data.len();
    let pairs = n / 2;
    // Partition the pairs across blocks; blocks are independent because
    // each element belongs to exactly one pair at stride j.
    let blocks = pairs.div_ceil(u);
    let snapshot: &[K] = data;
    let mut profile = KernelProfile::new();
    // Collect the swaps block by block (the input is shared immutably
    // inside the block simulation; swaps applied after, like a scatter
    // kernel writing its own outputs).
    let results: Vec<(KernelProfile, Vec<(usize, K)>)> = (0..blocks)
        .into_par_iter()
        .map(|b| {
            let mut block = BlockSim::<K>::new(banks, u, 1);
            block.set_counting(count);
            let mut writes: Vec<(usize, K)> = Vec::with_capacity(2 * u);
            block.phase(PhaseClass::Other, |tid, lane| {
                let p = b * u + tid;
                if p >= pairs {
                    return;
                }
                // Expand pair index to the lower element of the pair.
                let i = ((p & !(j - 1)) << 1) | (p & (j - 1));
                let partner = i | j;
                let a = lane.ld_global(snapshot, i);
                let c = lane.ld_global(snapshot, partner);
                lane.alu(4);
                let (lo, hi) = if a <= c { (a, c) } else { (c, a) };
                let (x, y) = if ascending(i, k) { (lo, hi) } else { (hi, lo) };
                lane.mark_global_st(i);
                lane.mark_global_st(partner);
                writes.push((i, x));
                writes.push((partner, y));
            });
            (block.profile, writes)
        })
        .collect();
    let mut all_writes = Vec::with_capacity(n);
    for (p, wlist) in results {
        profile.merge(&p);
        all_writes.extend(wlist);
    }
    for (idx, v) in all_writes {
        data[idx] = v;
    }
    profile
}

/// All substages with stride `≤ j_start < chunk` of stage `k`, executed
/// per block in shared memory.
fn shared_substages<K: SortKey>(
    banks: BankModel,
    u: usize,
    data: &mut [K],
    j_start: usize,
    k: usize,
    count: bool,
) -> KernelProfile {
    let chunk = 2 * u;
    let profiles: Vec<KernelProfile> = data
        .par_chunks_mut(chunk)
        .enumerate()
        .map(|(blk, tile)| {
            let base = blk * chunk;
            let mut block = BlockSim::<K>::new(banks, u, chunk);
            block.set_counting(count);
            block.phase(PhaseClass::LoadTile, |tid, lane| {
                for r in 0..2 {
                    let s = r * u + tid;
                    let v = lane.ld_global(tile, s);
                    lane.st(s, v);
                }
            });
            let mut j = j_start;
            while j >= 1 {
                block.phase(PhaseClass::Other, |tid, lane| {
                    let i = ((tid & !(j - 1)) << 1) | (tid & (j - 1));
                    let partner = i | j;
                    let a = lane.ld(i);
                    let c = lane.ld(partner);
                    lane.alu(4);
                    let (lo, hi) = if a <= c { (a, c) } else { (c, a) };
                    let (x, y) = if ascending(base + i, k) { (lo, hi) } else { (hi, lo) };
                    lane.st(i, x);
                    lane.st(partner, y);
                });
                j /= 2;
            }
            block.phase(PhaseClass::StoreTile, |tid, lane| {
                for r in 0..2 {
                    let s = r * u + tid;
                    let v = lane.ld(s);
                    lane.st_global(tile, s, v);
                }
            });
            block.profile
        })
        .collect();
    let mut profile = KernelProfile::new();
    for p in &profiles {
        profile.merge(p);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmerge_gpu_sim::timing::TimingModel;
    use rand::{Rng, SeedableRng};

    fn sort(n: usize, seed: u64) -> BitonicRun<u32> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let input: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        let run =
            bitonic_sort(&input, 128, &Device::rtx2080ti(), &TimingModel::rtx2080ti_like(), true);
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(run.output, expect, "n={n}");
        run
    }

    #[test]
    fn sorts_many_sizes() {
        for n in [0usize, 1, 2, 255, 256, 1000, 4096, 10_000] {
            let _ = sort(n, n as u64);
        }
    }

    #[test]
    fn shared_substages_do_conflict_modestly() {
        // The small-stride substages collide 2-way; verify conflicts are
        // present but bounded (≤ 2× requests would mean 2-way everywhere).
        let run = sort(16384, 9);
        let t = run.profile.total();
        assert!(t.bank_conflicts() > 0, "bitonic shared substages should conflict");
        assert!(
            t.shared_ld_transactions <= 2 * t.shared_ld_requests,
            "conflicts should be at most 2-way on average"
        );
    }

    #[test]
    fn work_grows_superlinearly() {
        // Θ(n log² n): ALU per element should grow with n.
        let small = sort(1 << 12, 1);
        let big = sort(1 << 15, 1);
        let per_small = small.profile.total().alu_ops as f64 / (1 << 12) as f64;
        let per_big = big.profile.total().alu_ops as f64 / (1 << 15) as f64;
        assert!(per_big > per_small * 1.3, "{per_small} vs {per_big}");
    }

    #[test]
    fn descending_regions_handled() {
        // Deterministic adversarial shape: organ pipe.
        let mut input: Vec<u32> = (0..2048u32).collect();
        let mirror: Vec<u32> = (0..2048u32).rev().collect();
        input.extend(mirror);
        let run =
            bitonic_sort(&input, 64, &Device::rtx2080ti(), &TimingModel::rtx2080ti_like(), false);
        assert!(run.output.is_sorted());
    }
}
