//! LSD radix sort on the simulator — the non-comparison baseline.
//!
//! The paper calls merge-path mergesort "the fastest comparison-based
//! sorting implementation on GPUs"; the qualifier exists because radix
//! sort wins on 32-bit keys. This implementation follows the classic
//! GPU structure (Merrill & Grimshaw lineage, simplified): per pass of
//! `RADIX_BITS` bits — block histograms in shared memory, a global
//! digit scan, then a stable scatter. The simulator's accounting makes
//! its two textbook costs visible:
//!
//! * the histogram reduction's strided shared reads (bank conflicts);
//! * the scatter's poorly coalesced global writes (sector blow-up) —
//!   the fundamental tax radix pays per pass, measured exactly by the
//!   32-byte-sector model.

use crate::parallel::*;
use cfmerge_gpu_sim::banks::BankModel;
use cfmerge_gpu_sim::block::BlockSim;
use cfmerge_gpu_sim::device::Device;
use cfmerge_gpu_sim::occupancy::BlockResources;
use cfmerge_gpu_sim::profiler::{KernelProfile, PhaseClass};
use cfmerge_gpu_sim::timing::{LaunchConfig, TimingModel};

/// Bits sorted per pass.
pub const RADIX_BITS: u32 = 4;
/// Digit alphabet size.
pub const RADIX: usize = 1 << RADIX_BITS;
/// Keys handled per thread in the histogram/scatter kernels.
pub const ELEMS_PER_THREAD: usize = 4;

/// Result of a simulated radix sort.
#[derive(Debug, Clone)]
pub struct RadixRun {
    /// Sorted output.
    pub output: Vec<u32>,
    /// Aggregate profile over all passes.
    pub profile: KernelProfile,
    /// Modeled runtime in seconds.
    pub simulated_seconds: f64,
    /// Kernel launches (2 per pass + the digit scan).
    pub launches: u64,
    /// Input size.
    pub n: usize,
}

impl RadixRun {
    /// Elements per microsecond.
    ///
    /// # Panics
    /// Panics if the modeled runtime is non-positive, which no simulated
    /// run can produce (launch overhead is always charged).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        cfmerge_core::metrics::elements_per_us(self.n, self.simulated_seconds)
            .expect("a simulated run always has positive modeled runtime")
    }
}

fn digit(key: u32, pass: u32) -> usize {
    ((key >> (pass * RADIX_BITS)) & (RADIX as u32 - 1)) as usize
}

/// Scatter strategy for the write phase of each pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterKind {
    /// Write each key straight to its global slot (poorly coalesced —
    /// the sector blow-up the landscape bench shows).
    Direct,
    /// Merrill-style: bin keys into digit order in *shared* memory
    /// first, then write digit-contiguous runs to global (coalesced up
    /// to one broken sector per digit run per block).
    Binned,
}

/// Sort 32-bit keys with `32 / RADIX_BITS` LSD passes. `u` threads per
/// block, `ELEMS_PER_THREAD` keys per thread.
///
/// # Panics
/// Panics unless `u` is a power-of-two multiple of the warp width.
#[must_use]
pub fn radix_sort(
    input: &[u32],
    u: usize,
    device: &Device,
    timing: &TimingModel,
    count_accesses: bool,
) -> RadixRun {
    radix_sort_with(input, u, device, timing, count_accesses, ScatterKind::Direct)
}

/// [`radix_sort`] with an explicit [`ScatterKind`].
///
/// # Panics
/// Same conditions as [`radix_sort`].
#[must_use]
pub fn radix_sort_with(
    input: &[u32],
    u: usize,
    device: &Device,
    timing: &TimingModel,
    count_accesses: bool,
    scatter: ScatterKind,
) -> RadixRun {
    let w = device.warp_width as usize;
    assert!(
        u.is_power_of_two() && u.is_multiple_of(w),
        "u={u} must be a power-of-two multiple of w={w}"
    );
    let banks = device.bank_model();
    let n = input.len();
    if n == 0 {
        return RadixRun {
            output: Vec::new(),
            profile: KernelProfile::new(),
            simulated_seconds: 0.0,
            launches: 0,
            n: 0,
        };
    }
    let tile = u * ELEMS_PER_THREAD;
    let blocks = n.div_ceil(tile);
    let launch = LaunchConfig {
        blocks: blocks as u64,
        resources: BlockResources {
            threads: u as u32,
            shared_bytes: ((tile + RADIX * u) * 4) as u32,
            regs_per_thread: 32,
        },
    };

    let mut src = input.to_vec();
    let mut dst = vec![0u32; n];
    let mut total = KernelProfile::new();
    let mut seconds = 0.0;
    let mut launches = 0u64;
    let passes = 32 / RADIX_BITS;

    for pass in 0..passes {
        // ---- kernel 1: block histograms ----
        let results: Vec<(KernelProfile, [u32; RADIX])> = (0..blocks)
            .into_par_iter()
            .map(|b| histogram_block(banks, u, &src, b, pass, count_accesses))
            .collect();
        let mut hist_profile = KernelProfile::new();
        let mut block_hists: Vec<[u32; RADIX]> = Vec::with_capacity(blocks);
        for (p, h) in results {
            hist_profile.merge(&p);
            block_hists.push(h);
        }
        let t = timing
            .kernel_time(device, &hist_profile.total(), &launch)
            .expect("radix launch fits the device");
        seconds += t.seconds;
        total.merge(&hist_profile);
        launches += 1;

        // ---- the digit scan (tiny kernel; digit-major over blocks so
        // the scatter is globally stable) ----
        let mut offsets = vec![[0u32; RADIX]; blocks];
        {
            let mut acc = 0u32;
            let mut scan_profile = KernelProfile::new();
            let c = scan_profile.phase_mut(PhaseClass::Other);
            c.alu_ops += (blocks * RADIX) as u64;
            c.global_ld_sectors += (blocks * RADIX / 8).max(1) as u64;
            c.global_st_sectors += (blocks * RADIX / 8).max(1) as u64;
            for d in 0..RADIX {
                for b in 0..blocks {
                    offsets[b][d] = acc;
                    acc += block_hists[b][d];
                }
            }
            let t = timing
                .kernel_time(device, &scan_profile.total(), &launch)
                .expect("radix launch fits the device");
            seconds += t.seconds;
            total.merge(&scan_profile);
            launches += 1;
        }

        // ---- kernel 2: stable scatter ----
        let results: Vec<(KernelProfile, Vec<(usize, u32)>)> = (0..blocks)
            .into_par_iter()
            .map(|b| match scatter {
                ScatterKind::Direct => {
                    scatter_block(banks, u, &src, b, pass, &offsets[b], count_accesses)
                }
                ScatterKind::Binned => {
                    scatter_block_binned(banks, u, &src, b, pass, &offsets[b], count_accesses)
                }
            })
            .collect();
        let mut scatter_profile = KernelProfile::new();
        for (p, writes) in results {
            scatter_profile.merge(&p);
            for (idx, v) in writes {
                dst[idx] = v;
            }
        }
        let t = timing
            .kernel_time(device, &scatter_profile.total(), &launch)
            .expect("radix launch fits the device");
        seconds += t.seconds;
        total.merge(&scatter_profile);
        launches += 1;

        std::mem::swap(&mut src, &mut dst);
    }

    RadixRun { output: src, profile: total, simulated_seconds: seconds, launches, n }
}

/// One block's histogram: coalesced tile load into shared, per-thread
/// register tallies, per-digit column write, strided reduction.
fn histogram_block(
    banks: BankModel,
    u: usize,
    src: &[u32],
    b: usize,
    pass: u32,
    count: bool,
) -> (KernelProfile, [u32; RADIX]) {
    let tile = u * ELEMS_PER_THREAD;
    let base = b * tile;
    let end = src.len().min(base + tile);
    let mut block = BlockSim::<u32>::new(banks, u, tile + RADIX * u);
    block.set_counting(count);

    // Coalesced load.
    block.phase(PhaseClass::LoadTile, |tid, lane| {
        for r in 0..ELEMS_PER_THREAD {
            let g = base + r * u + tid;
            if g < end {
                let v = lane.ld_global(src, g);
                lane.st(r * u + tid, v);
            }
        }
    });
    // Per-thread tallies → per-thread digit columns in shared
    // (layout [d·u + t]: unit-stride per digit row — conflict-free).
    block.phase(PhaseClass::Other, |tid, lane| {
        let mut counts = [0u32; RADIX];
        for r in 0..ELEMS_PER_THREAD {
            let s = r * u + tid;
            if base + r * u + tid < end {
                let v = lane.ld(s);
                counts[digit(v, pass)] += 1;
                lane.alu(3);
            }
        }
        for (d, &c) in counts.iter().enumerate() {
            lane.st(tile + d * u + tid, c);
        }
    });
    // Reduction: RADIX active threads each sum a row of u counts —
    // row-major reads at stride u are same-bank (the measured conflict
    // cost of this layout).
    let mut hist = [0u32; RADIX];
    block.phase(PhaseClass::Other, |tid, lane| {
        if tid < RADIX {
            let mut sum = 0u32;
            for t in 0..u {
                sum += lane.ld(tile + tid * u + t);
                lane.alu(1);
            }
            hist[tid] = sum;
        }
    });
    (block.profile, hist)
}

/// One block's stable scatter: recompute digits, take this block's
/// per-digit base offsets, write each key to its global slot (scattered
/// stores — the sector accounting captures the poor coalescing).
fn scatter_block(
    banks: BankModel,
    u: usize,
    src: &[u32],
    b: usize,
    pass: u32,
    offsets: &[u32; RADIX],
    count: bool,
) -> (KernelProfile, Vec<(usize, u32)>) {
    let tile = u * ELEMS_PER_THREAD;
    let base = b * tile;
    let end = src.len().min(base + tile);
    let mut block = BlockSim::<u32>::new(banks, u, tile);
    block.set_counting(count);

    block.phase(PhaseClass::LoadTile, |tid, lane| {
        for r in 0..ELEMS_PER_THREAD {
            let g = base + r * u + tid;
            if g < end {
                let v = lane.ld_global(src, g);
                lane.st(r * u + tid, v);
            }
        }
    });

    // Local ranks must be stable in *shared-memory order* (LSD passes
    // compose only under stability). Threads own blocked element ranges
    // [tid·ELEMS, (tid+1)·ELEMS), so the simulator's in-order lane
    // execution makes the running counters a stable block-wide rank —
    // real kernels compute the same ranks with warp scans (charged as
    // ALU). The blocked shared reads are strided by ELEMS_PER_THREAD
    // (4-way conflicts at w = 32 — counted; one of radix's minor costs).
    let mut running = *offsets;
    let mut writes: Vec<(usize, u32)> = Vec::with_capacity(end - base);
    block.phase(PhaseClass::StoreTile, |tid, lane| {
        for r in 0..ELEMS_PER_THREAD {
            let s = tid * ELEMS_PER_THREAD + r;
            let g = base + s;
            if g < end {
                let v = lane.ld(s);
                let d = digit(v, pass);
                let dest = running[d] as usize;
                running[d] += 1;
                lane.alu(6);
                lane.mark_global_st(dest);
                writes.push((dest, v));
            }
        }
    });
    (block.profile, writes)
}

/// Merrill-style scatter: bin the tile into digit order inside shared
/// memory (a data-dependent shared scatter — conflicts counted, cheap),
/// then write digit-contiguous runs to global memory coalesced.
fn scatter_block_binned(
    banks: BankModel,
    u: usize,
    src: &[u32],
    b: usize,
    pass: u32,
    offsets: &[u32; RADIX],
    count: bool,
) -> (KernelProfile, Vec<(usize, u32)>) {
    let tile = u * ELEMS_PER_THREAD;
    let base = b * tile;
    let end = src.len().min(base + tile);
    let valid = end - base;
    // Two shared regions: the raw tile and the binned tile.
    let mut block = BlockSim::<u32>::new(banks, u, 2 * tile);
    block.set_counting(count);

    block.phase(PhaseClass::LoadTile, |tid, lane| {
        for r in 0..ELEMS_PER_THREAD {
            let g = base + r * u + tid;
            if g < end {
                let v = lane.ld_global(src, g);
                lane.st(r * u + tid, v);
            }
        }
    });

    // Block-local digit starts (exclusive scan of the block's histogram;
    // real kernels recompute it with warp scans — charged as ALU inside
    // the binning phase below).
    let mut local_start = [0u32; RADIX];
    {
        let mut counts = [0u32; RADIX];
        for &v in &src[base..end] {
            counts[digit(v, pass)] += 1;
        }
        let mut acc = 0u32;
        for d in 0..RADIX {
            local_start[d] = acc;
            acc += counts[d];
        }
    }

    // Bin into shared digit order: stable rank via in-order lane
    // execution over blocked element ranges (same discipline as the
    // direct scatter), writes into the second shared region — a
    // data-dependent scatter whose conflicts the engine counts.
    let mut running = local_start;
    block.phase(PhaseClass::Other, |tid, lane| {
        for r in 0..ELEMS_PER_THREAD {
            let s = tid * ELEMS_PER_THREAD + r;
            if base + s < end {
                let v = lane.ld(s);
                let d = digit(v, pass);
                let rank = running[d] as usize;
                running[d] += 1;
                lane.alu(8); // digit extract + warp-scan rank
                lane.st(tile + rank, v);
            }
        }
    });

    // Coalesced drain: shared is now digit-ordered, so slot `s` holds
    // the `(s − local_start[d])`-th key of its digit and goes to
    // `offsets[d] + (s − local_start[d])` — consecutive slots map to
    // consecutive global destinations within each digit run.
    let mut writes: Vec<(usize, u32)> = Vec::with_capacity(valid);
    block.phase(PhaseClass::StoreTile, |tid, lane| {
        for r in 0..ELEMS_PER_THREAD {
            let s = r * u + tid;
            if s < valid {
                let v = lane.ld(tile + s);
                let d = digit(v, pass);
                let dest = offsets[d] as usize + (s - local_start[d] as usize);
                lane.alu(4);
                lane.mark_global_st(dest);
                writes.push((dest, v));
            }
        }
    });
    (block.profile, writes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmerge_gpu_sim::timing::TimingModel;
    use rand::{Rng, SeedableRng};

    fn sort(n: usize, seed: u64) -> RadixRun {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let input: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        let run =
            radix_sort(&input, 128, &Device::rtx2080ti(), &TimingModel::rtx2080ti_like(), true);
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(run.output, expect, "n={n}");
        run
    }

    #[test]
    fn sorts_many_sizes() {
        for n in [0usize, 1, 7, 512, 1000, 4096, 20_000] {
            let _ = sort(n, n as u64 + 1);
        }
    }

    #[test]
    fn stability_orders_equal_keys_by_position() {
        // Radix must be stable pass to pass; sort (key | index-in-low-
        // bits-masked-out) pairs conceptually by checking sortedness of
        // a few-distinct distribution with embedded sequence numbers in
        // untouched low bits... simpler: keys with only high bits set,
        // low bits = original position.
        let n = 5000usize;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let input: Vec<u32> =
            (0..n).map(|i| (rng.gen_range(0..4u32) << 16) | (i as u32 & 0xFFFF)).collect();
        let run =
            radix_sort(&input, 128, &Device::rtx2080ti(), &TimingModel::rtx2080ti_like(), false);
        // Full numeric sortedness implies the low bits (positions) are
        // ascending within each high-bit class — but radix sorts those
        // bits too; instead verify against a stable std sort by the full
        // key, which equals the radix result iff radix is a correct sort.
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(run.output, expect);
    }

    #[test]
    fn binned_scatter_sorts_and_coalesces() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(314);
        let n = 32_768usize;
        let input: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        let dev = Device::rtx2080ti();
        let tm = TimingModel::rtx2080ti_like();
        let direct = radix_sort_with(&input, 128, &dev, &tm, true, ScatterKind::Direct);
        let binned = radix_sort_with(&input, 128, &dev, &tm, true, ScatterKind::Binned);
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(direct.output, expect);
        assert_eq!(binned.output, expect);
        // The whole point: binning slashes the store sectors…
        assert!(
            binned.profile.total().global_st_sectors * 2 < direct.profile.total().global_st_sectors,
            "binned {} vs direct {}",
            binned.profile.total().global_st_sectors,
            direct.profile.total().global_st_sectors
        );
        // …and is faster end to end in the model.
        assert!(binned.simulated_seconds < direct.simulated_seconds);
    }

    #[test]
    fn binned_scatter_ragged_sizes() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(315);
        for n in [1usize, 100, 511, 513, 5000] {
            let input: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
            let run = radix_sort_with(
                &input,
                128,
                &Device::rtx2080ti(),
                &TimingModel::rtx2080ti_like(),
                false,
                ScatterKind::Binned,
            );
            let mut expect = input;
            expect.sort_unstable();
            assert_eq!(run.output, expect, "n={n}");
        }
    }

    #[test]
    fn fixed_pass_count_and_conflicts_present() {
        let run = sort(32_768, 5);
        assert_eq!(run.launches, u64::from(32 / RADIX_BITS) * 3);
        // The strided histogram reduction must show conflicts.
        assert!(run.profile.total_bank_conflicts() > 0);
        // Scatter coalescing is poor: global store sectors well above
        // the coalesced minimum (n/8 per pass).
        let passes = u64::from(32 / RADIX_BITS);
        let min_sectors = passes * (32_768 / 8);
        assert!(run.profile.total().global_st_sectors > 2 * min_sectors);
    }
}
