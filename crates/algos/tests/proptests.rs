//! Property tests for the companion algorithms.

use cfmerge_algos::bitonic::bitonic_sort;
use cfmerge_algos::radix::radix_sort;
use cfmerge_algos::scan::{block_exclusive_scan, exclusive_scan_reference, ScanKind};
use cfmerge_gpu_sim::banks::BankModel;
use cfmerge_gpu_sim::device::Device;
use cfmerge_gpu_sim::timing::TimingModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scan variant equals the reference on arbitrary data,
    /// including wrap-around sums.
    #[test]
    fn prop_scans_agree(
        input in (5usize..=10)
            .prop_flat_map(|k| proptest::collection::vec(any::<u32>(), 1usize << k))
    ) {
        let expect = exclusive_scan_reference(&input);
        for kind in [ScanKind::HillisSteele, ScanKind::Blelloch, ScanKind::BlellochPadded] {
            let (out, _) = block_exclusive_scan(BankModel::nvidia(), &input, kind);
            prop_assert_eq!(&out, &expect);
        }
    }

    /// Padded Blelloch never conflicts; unpadded never beats it.
    #[test]
    fn prop_padding_dominates(k in 5usize..=10) {
        let input: Vec<u32> = (0..(1usize << k) as u32).collect();
        let (_, unpadded) = block_exclusive_scan(BankModel::nvidia(), &input, ScanKind::Blelloch);
        let (_, padded) =
            block_exclusive_scan(BankModel::nvidia(), &input, ScanKind::BlellochPadded);
        prop_assert_eq!(padded.total_bank_conflicts(), 0);
        prop_assert!(unpadded.total_bank_conflicts() >= padded.total_bank_conflicts());
    }

    /// Bitonic and radix sort arbitrary inputs (sizes not powers of two).
    #[test]
    fn prop_alternative_sorts_agree(input in proptest::collection::vec(any::<u32>(), 0..3000)) {
        let mut expect = input.clone();
        expect.sort_unstable();
        let dev = Device::rtx2080ti();
        let tm = TimingModel::rtx2080ti_like();
        let b = bitonic_sort(&input, 64, &dev, &tm, false);
        prop_assert_eq!(&b.output, &expect);
        let r = radix_sort(&input, 64, &dev, &tm, false);
        prop_assert_eq!(&r.output, &expect);
    }
}
