//! End-to-end pipeline benches: host-side simulation speed (simulated
//! elements per wall-clock second) for both pipelines, with and without
//! access accounting, plus the per-block kernels.

use cfmerge_core::inputs::InputSpec;
use cfmerge_core::params::SortParams;
use cfmerge_core::sort::{simulate_sort, SortAlgorithm, SortConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_simulate_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipelines/simulate_sort");
    g.sample_size(10);
    let params = SortParams::e15_u512();
    let n = 8 * params.tile();
    let input = InputSpec::UniformRandom { seed: 1 }.generate(n);
    g.throughput(Throughput::Elements(n as u64));
    for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
        for counting in [true, false] {
            let mut cfg = SortConfig::with_params(params);
            cfg.count_accesses = counting;
            g.bench_function(format!("{}_counting_{counting}", algo.label()), |b| {
                b.iter(|| black_box(simulate_sort(&input, algo, &cfg).simulated_seconds))
            });
        }
    }
    g.finish();
}

fn bench_blocksort_kernel(c: &mut Criterion) {
    use cfmerge_core::sort::blocksort::{blocksort_block, MergeStrategy};
    use cfmerge_gpu_sim::banks::BankModel;
    let mut g = c.benchmark_group("pipelines/blocksort_block");
    let (u, e) = (512usize, 15usize);
    let tile = u * e;
    let src = InputSpec::UniformRandom { seed: 2 }.generate(tile);
    let mut dst = vec![0u32; tile];
    g.throughput(Throughput::Elements(tile as u64));
    for (strategy, label) in
        [(MergeStrategy::DirectSerial, "direct"), (MergeStrategy::Gather, "gather")]
    {
        g.bench_function(label, |b| {
            b.iter(|| {
                let p =
                    blocksort_block(BankModel::new(32), u, e, strategy, &src, &mut dst, 0, true);
                black_box(p.total().shared_transactions())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: one shared core runs the whole suite.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_simulate_sort, bench_blocksort_kernel
}
criterion_main!(benches);
