//! Register-merge ablation (DESIGN.md §4.4): odd-even transposition (the
//! paper's choice) vs Batcher's odd-even mergesort vs the bitonic merger
//! vs a branchy scalar sort, at the paper's register-array sizes.

use cfmerge_mergepath::networks::{batcher_sort, bitonic_merge, oets_sort};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng};

fn inputs(e: usize, count: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    (0..count).map(|_| (0..e).map(|_| rng.gen()).collect()).collect()
}

/// A rotated bitonic array (ascending A then descending B, rotated) — the
/// exact shape the gather leaves in registers.
fn rotated_bitonic(e: usize, seed: u64) -> Vec<u32> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let split = rng.gen_range(0..=e);
    let mut a: Vec<u32> = (0..split).map(|_| rng.gen()).collect();
    let mut b: Vec<u32> = (0..e - split).map(|_| rng.gen()).collect();
    a.sort_unstable();
    b.sort_unstable();
    b.reverse();
    a.extend(b);
    let rot = rng.gen_range(0..e.max(1));
    a.rotate_left(rot);
    a
}

fn bench_register_merge(c: &mut Criterion) {
    for e in [15usize, 17, 16, 32] {
        let mut g = c.benchmark_group(format!("networks/e{e}"));
        g.throughput(Throughput::Elements(e as u64));
        let data = inputs(e, 256, e as u64);
        g.bench_function("oets", |bch| {
            let mut i = 0;
            bch.iter(|| {
                let mut v = data[i % data.len()].clone();
                i += 1;
                oets_sort(&mut v);
                black_box(v[0])
            })
        });
        g.bench_function("batcher", |bch| {
            let mut i = 0;
            bch.iter(|| {
                let mut v = data[i % data.len()].clone();
                i += 1;
                batcher_sort(&mut v);
                black_box(v[0])
            })
        });
        if e.is_power_of_two() {
            g.bench_function("bitonic_merge_rotated", |bch| {
                let mut i = 0u64;
                bch.iter(|| {
                    let mut v = rotated_bitonic(e, i);
                    i += 1;
                    bitonic_merge(&mut v);
                    black_box(v[0])
                })
            });
        }
        g.bench_function("std_sort_unstable", |bch| {
            let mut i = 0;
            bch.iter(|| {
                let mut v = data[i % data.len()].clone();
                i += 1;
                v.sort_unstable();
                black_box(v[0])
            })
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    // Short measurement windows: one shared core runs the whole suite.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_register_merge
}
criterion_main!(benches);
