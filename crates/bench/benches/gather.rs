//! Criterion benches for the dual subsequence gather: schedule
//! computation, full per-block simulated gathers, and the
//! counting-overhead ablation.

use cfmerge_core::gather::{gather_block, CfLayout, GatherSchedule, ThreadSplit};
use cfmerge_gpu_sim::banks::BankModel;
use cfmerge_gpu_sim::block::BlockSim;
use cfmerge_gpu_sim::profiler::PhaseClass;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng};

fn splits_for(u: usize, e: usize, seed: u64) -> (Vec<ThreadSplit>, usize) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut splits = Vec::with_capacity(u);
    let mut a = 0;
    for _ in 0..u {
        let len = rng.gen_range(0..=e);
        splits.push(ThreadSplit { a_begin: a, a_len: len });
        a += len;
    }
    (splits, a)
}

fn bench_schedule(c: &mut Criterion) {
    let mut g = c.benchmark_group("gather/schedule");
    for &(w, e, u) in &[(32usize, 15usize, 512usize), (32, 17, 256), (32, 16, 256)] {
        let (splits, a_total) = splits_for(u, e, 1);
        let layout = CfLayout::new(w, e, u * e, a_total);
        g.throughput(Throughput::Elements((u * e) as u64));
        g.bench_function(format!("w{w}_e{e}_u{u}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for (tid, &split) in splits.iter().enumerate() {
                    let sched = GatherSchedule::new(layout, tid, split);
                    for j in 0..e {
                        acc = acc.wrapping_add(sched.round(j).slot());
                    }
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_block_gather(c: &mut Criterion) {
    let mut g = c.benchmark_group("gather/block_sim");
    for counting in [true, false] {
        let (w, e, u) = (32usize, 15usize, 512usize);
        let (splits, a_total) = splits_for(u, e, 2);
        let layout = CfLayout::new(w, e, u * e, a_total);
        g.throughput(Throughput::Elements((u * e) as u64));
        g.bench_function(format!("e15_u512_counting_{counting}"), |b| {
            b.iter(|| {
                let mut block = BlockSim::<u32>::new(BankModel::new(w as u32), u, u * e);
                block.set_counting(counting);
                block.phase(PhaseClass::LoadTile, |tid, lane| {
                    for r in 0..e {
                        lane.st(r * u + tid, (r * u + tid) as u32);
                    }
                });
                let items = gather_block(&mut block, &layout, &splits);
                black_box(items.len())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: one shared core runs the whole suite.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_schedule, bench_block_gather
}
criterion_main!(benches);
