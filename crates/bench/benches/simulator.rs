//! Simulator-engine micro-benches: the conflict-cost inner loop, phase
//! dispatch overhead, and global coalescing accounting.

use cfmerge_gpu_sim::banks::BankModel;
use cfmerge_gpu_sim::block::BlockSim;
use cfmerge_gpu_sim::global::sectors_touched;
use cfmerge_gpu_sim::profiler::PhaseClass;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng};

fn bench_round_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/round_cost");
    let banks = BankModel::nvidia();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
    let patterns: Vec<(&str, Vec<u32>)> = vec![
        ("unit_stride", (0..32).collect()),
        ("broadcast", vec![7; 32]),
        ("random", (0..32).map(|_| rng.gen_range(0..4096)).collect()),
        ("same_bank", (0..32).map(|i| i * 32).collect()),
    ];
    for (label, addrs) in patterns {
        g.throughput(Throughput::Elements(32));
        g.bench_function(label, |b| b.iter(|| black_box(banks.round_cost(&addrs).transactions)));
    }
    g.finish();
}

fn bench_phase_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/phase");
    let rounds = 16usize;
    g.throughput(Throughput::Elements((512 * rounds) as u64));
    g.bench_function("512_threads_16_rounds", |b| {
        b.iter(|| {
            let mut block = BlockSim::<u32>::new(BankModel::nvidia(), 512, 512 * rounds);
            block.phase(PhaseClass::Other, |tid, lane| {
                for r in 0..rounds {
                    lane.st(r * 512 + tid, tid as u32);
                }
            });
            black_box(block.profile.total().shared_st_transactions)
        })
    });
    g.finish();
}

fn bench_sectors(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/sectors");
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
    let coalesced: Vec<u64> = (0..32).collect();
    let scattered: Vec<u64> = (0..32).map(|_| rng.gen_range(0..1 << 20)).collect();
    g.bench_function("coalesced", |b| b.iter(|| black_box(sectors_touched(&coalesced))));
    g.bench_function("scattered", |b| b.iter(|| black_box(sectors_touched(&scattered))));
    g.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: one shared core runs the whole suite.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_round_cost, bench_phase_dispatch, bench_sectors
}
criterion_main!(benches);
