//! Benches for the worst-case input machinery: tuple construction, side
//! assignment, the recursive full-input builder, and the lock-step
//! conflict measurement.

use cfmerge_core::worst_case::{
    lockstep_baseline_conflicts, sequence_t, tuples::WcParams, WorstCaseBuilder,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_tuples(c: &mut Criterion) {
    let mut g = c.benchmark_group("worst_case/tuples");
    for &(w, e) in &[(32usize, 15usize), (32, 17), (32, 16)] {
        g.bench_function(format!("w{w}_e{e}"), |b| {
            let p = WcParams::new(w, e);
            b.iter(|| black_box(sequence_t(&p).len()))
        });
    }
    g.finish();
}

fn bench_builder(c: &mut Criterion) {
    let mut g = c.benchmark_group("worst_case/build");
    g.sample_size(10);
    let builder = WorstCaseBuilder::new(32, 15, 512);
    for tiles in [8usize, 64] {
        let n = tiles * 512 * 15;
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("tiles{tiles}"), |b| b.iter(|| black_box(builder.build(n).len())));
    }
    g.finish();
}

fn bench_lockstep_measurement(c: &mut Criterion) {
    let mut g = c.benchmark_group("worst_case/lockstep_measure");
    for &(w, e) in &[(32usize, 15usize), (32, 17)] {
        g.bench_function(format!("w{w}_e{e}_4warps"), |b| {
            b.iter(|| black_box(lockstep_baseline_conflicts(w, e, 4)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: one shared core runs the whole suite.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tuples, bench_builder, bench_lockstep_measurement
}
criterion_main!(benches);
