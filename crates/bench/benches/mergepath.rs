//! Criterion benches for the merge-path substrate: diagonal searches,
//! partitioning, serial merges, and the CPU mergesorts.

use cfmerge_mergepath::cpu::{merge_sort_par, merge_sort_seq};
use cfmerge_mergepath::diagonal::merge_path;
use cfmerge_mergepath::partition::partition_merge;
use cfmerge_mergepath::serial::serial_merge_into;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng};

fn sorted(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut v: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
    v.sort_unstable();
    v
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("mergepath/search");
    for n in [1usize << 10, 1 << 16, 1 << 20] {
        let a = sorted(n, 1);
        let b = sorted(n, 2);
        g.bench_function(format!("diag_n{n}"), |bch| {
            let mut diag = 1usize;
            bch.iter(|| {
                diag = (diag * 7 + 13) % (2 * n);
                black_box(merge_path(&a, &b, diag))
            })
        });
    }
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("mergepath/partition");
    let n = 1 << 18;
    let a = sorted(n, 3);
    let b = sorted(n, 4);
    for chunk in [480usize, 7680] {
        g.throughput(Throughput::Elements(2 * n as u64));
        g.bench_function(format!("chunk{chunk}"), |bch| {
            bch.iter(|| black_box(partition_merge(&a, &b, chunk).len()))
        });
    }
    g.finish();
}

fn bench_serial_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("mergepath/serial_merge");
    for n in [480usize, 1 << 14] {
        let a = sorted(n / 2, 5);
        let b = sorted(n - n / 2, 6);
        let mut out = vec![0u32; n];
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("n{n}"), |bch| {
            bch.iter(|| {
                serial_merge_into(&a, &b, &mut out);
                black_box(out[n / 2])
            })
        });
    }
    g.finish();
}

fn bench_cpu_sorts(c: &mut Criterion) {
    let mut g = c.benchmark_group("mergepath/cpu_sort");
    g.sample_size(10);
    let n = 1 << 18;
    let base: Vec<u32> = {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        (0..n).map(|_| rng.gen()).collect()
    };
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("seq", |bch| {
        bch.iter(|| {
            let mut v = base.clone();
            merge_sort_seq(&mut v);
            black_box(v[0])
        })
    });
    g.bench_function("par_mergepath", |bch| {
        bch.iter(|| {
            let mut v = base.clone();
            merge_sort_par(&mut v, 4096);
            black_box(v[0])
        })
    });
    g.bench_function("std_unstable", |bch| {
        bch.iter(|| {
            let mut v = base.clone();
            v.sort_unstable();
            black_box(v[0])
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: one shared core runs the whole suite.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_search, bench_partition, bench_serial_merge, bench_cpu_sorts
}
criterion_main!(benches);
