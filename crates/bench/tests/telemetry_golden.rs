//! Golden-file and schema-migration tests for the unified telemetry
//! artifact.
//!
//! * The golden test pins the full `metrics_report` artifact byte for
//!   byte (`tests/golden/metrics_report.json` at the workspace root):
//!   every counter, every histogram bucket, every latency percentile is
//!   a pure function of the modeled execution, so any drift is either a
//!   deliberate model change (bless with `UPDATE_GOLDEN=1`) or a
//!   determinism regression (fix it).
//! * The migration test feeds a hand-written schema-v1 artifact — the
//!   format every file in `results/` used before the telemetry field
//!   existed — through today's parser and checks it loads, reports no
//!   telemetry, and re-serializes at the current schema version.

use cfmerge_bench::artifact::{RunArtifact, SCHEMA_VERSION};
use cfmerge_bench::sweep::{Series, SweepPoint};
use cfmerge_bench::telemetry_report;
use cfmerge_gpu_sim::device::Device;
use cfmerge_json::{FromJson, Json, ToJson};
use std::path::Path;

#[test]
fn metrics_report_matches_the_golden_file() {
    let report = telemetry_report::build();
    let got = report.artifact.to_json().to_string_pretty();
    let golden_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/metrics_report.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, format!("{got}\n")).expect("bless golden file");
    }
    let want = std::fs::read_to_string(golden_path).unwrap_or_else(|e| {
        panic!("missing golden file {golden_path}: {e} (run with UPDATE_GOLDEN=1 to create it)")
    });
    assert_eq!(
        got.trim(),
        want.trim(),
        "the telemetry artifact drifted from the golden file; if the change is\n\
         intentional, regenerate tests/golden/metrics_report.json with UPDATE_GOLDEN=1"
    );

    // The golden artifact parses back into an identical in-memory value.
    let reparsed = RunArtifact::from_json(&Json::parse(&want).expect("golden file is JSON"))
        .expect("golden artifact parses");
    assert_eq!(reparsed.to_json().to_string_pretty().trim_end(), got.trim_end());
    let snap = reparsed.telemetry.expect("golden artifact embeds telemetry");
    assert!(snap.histogram("service_job_latency_seconds").is_some());
}

/// A schema-v1 artifact as every binary wrote it before the telemetry
/// field existed: today's layout, minus the optional `telemetry` key,
/// stamped version 1 (version 2 only *added* that key).
fn v1_fixture() -> String {
    let mut art = RunArtifact::new("fig5", Device::rtx2080ti());
    art.schema_version = 1;
    art.series.push(Series {
        label: "thrust/worst-case(E=15)/E=15,u=512".into(),
        points: vec![SweepPoint {
            i: 9,
            n: 7680,
            seconds: 1.25e-5,
            throughput: 614.4,
            conflicts_per_round: 31.0,
            merge_conflicts: 12_345,
        }],
    });
    art.add_summary("speedup", Json::from(1.5));
    let text = art.to_json().to_string_pretty();
    assert!(!text.contains("telemetry"), "fixture must predate the telemetry key");
    text
}

#[test]
fn schema_v1_artifacts_still_parse_after_the_telemetry_bump() {
    let fixture = v1_fixture();
    let v1 = Json::parse(&fixture).expect("fixture is valid JSON");
    let art = RunArtifact::from_json(&v1).expect("v1 artifact must keep parsing");
    assert_eq!(art.tool, "fig5");
    assert_eq!(art.schema_version, 1, "the original version survives the load");
    assert!(art.telemetry.is_none(), "v1 predates telemetry");
    assert_eq!(art.series.len(), 1);
    assert_eq!(art.series[0].points[0].merge_conflicts, 12_345);

    // Round-trip is lossless: a v1 file rewritten without new telemetry
    // is still byte-for-byte a v1 file (no silent version churn).
    assert_eq!(art.to_json().to_string_pretty(), fixture);

    // Freshly written artifacts carry the current version.
    assert_eq!(RunArtifact::new("x", Device::rtx2080ti()).schema_version, SCHEMA_VERSION);
}

#[test]
fn every_pinned_results_artifact_parses() {
    // The pinned artifacts in results/ are the perf gate's baselines;
    // whatever schema vintage they are, today's loader must read them.
    let dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("results/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "json")
            && !path.to_string_lossy().contains("perfetto")
        {
            if path.file_name().is_some_and(|n| n == "tuning.json") {
                // The tuning table is pinned raw (docs/CERTIFICATION.md
                // describes its schema); hold it to its own loader and
                // its own checksum.
                let text = std::fs::read_to_string(&path).expect("readable");
                let json = cfmerge_json::Json::parse(&text)
                    .unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
                let table = cfmerge_core::tuning::TuningTable::from_json(&json)
                    .unwrap_or_else(|e| panic!("{} must load: {e}", path.display()));
                table
                    .verify()
                    .unwrap_or_else(|e| panic!("{} checksum must verify: {e}", path.display()));
                checked += 1;
                continue;
            }
            if path.file_name().is_some_and(|n| n == "certificates.json") {
                // The certificate table is the one pinned JSON with its
                // own schema (docs/CERTIFICATION.md); hold it to its own
                // loader instead.
                let text = std::fs::read_to_string(&path).expect("readable");
                let json = cfmerge_json::Json::parse(&text)
                    .unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
                cfmerge_core::cert::CertificateTable::from_json(&json)
                    .unwrap_or_else(|e| panic!("{} must load: {e}", path.display()));
                checked += 1;
                continue;
            }
            RunArtifact::load(&path)
                .unwrap_or_else(|e| panic!("pinned artifact {} must parse: {e}", path.display()));
            checked += 1;
        }
    }
    assert!(checked >= 5, "expected the pinned artifact set, found {checked}");
}
