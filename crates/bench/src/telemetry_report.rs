//! The deterministic telemetry showcase behind the `metrics_report`
//! binary and its golden test: one Figure-5 configuration run under full
//! instrumentation, producing a schema-v2 artifact with an embedded
//! [`MetricsSnapshot`], a Prometheus text exposition, and folded-stacks
//! flamegraph input — all pure functions of the modeled execution, so
//! every byte is pinned by the golden file.

use crate::artifact::{RunArtifact, RunRecord};
use cfmerge_core::inputs::InputSpec;
use cfmerge_core::params::SortParams;
use cfmerge_core::recovery::RobustConfig;
use cfmerge_core::resilience::{
    AdmissionConfig, BreakerConfig, ResilienceConfig, RetryBudgetConfig, ShedPolicy, SortService,
};
use cfmerge_core::sort::{simulate_sort_traced, SortAlgorithm, SortConfig};
use cfmerge_core::telemetry::{MetricsRegistry, MetricsSnapshot};
use cfmerge_gpu_sim::fault::{FaultKind, FaultPlan, FaultSite, Persistence};
use cfmerge_json::Json;

/// Everything `metrics_report` writes, built in one deterministic pass.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// The schema-v2 artifact with the embedded metrics snapshot.
    pub artifact: RunArtifact,
    /// Prometheus text exposition of the same snapshot.
    pub prometheus: String,
    /// Folded stacks (`label;kernel;phase ns`) for both traced pipelines,
    /// ready for `flamegraph.pl` / inferno / speedscope.
    pub folded: String,
}

/// Metric prefix for one traced pipeline (`sim_thrust`, `sim_cf_merge`).
fn sim_prefix(algo: SortAlgorithm) -> String {
    format!("sim_{}", algo.label().replace('-', "_"))
}

/// Build the report: trace both pipelines on the first Figure-5 sweep
/// point (`E = 15, u = 512`, worst-case input), then run a small
/// fault-seasoned batch through a telemetry-enabled [`SortService`] for
/// the latency/queue/breaker metrics.
#[must_use]
pub fn build() -> TelemetryReport {
    let cfg = SortConfig::paper_e15_u512();
    let n = (1usize << 9) * cfg.params.e;
    let input = InputSpec::worst_case(cfg.params).generate(n);

    let mut art = RunArtifact::new("metrics_report", cfg.device.clone());
    let mut registry = MetricsRegistry::new();
    let mut folded = String::new();

    for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
        let traced = simulate_sort_traced(&input, algo, &cfg);
        assert!(traced.run.output.is_sorted(), "pipeline produced unsorted output");
        registry.record_sort_run(&sim_prefix(algo), &traced.run);
        folded.push_str(&traced.trace.folded_stacks());
        art.runs.push(RunRecord::from_run(traced.trace.label.clone(), algo, &traced.run));
        art.add_summary(
            algo.label(),
            Json::obj([
                ("conflict_rounds", Json::from(traced.trace.conflict_rounds())),
                ("dropped_conflicts", Json::from(traced.trace.dropped_conflicts())),
                ("merge_conflicts", Json::from(traced.run.profile.merge_bank_conflicts())),
            ]),
        );
    }

    let service_snapshot = run_service_batch();
    let sim_snapshot = registry.snapshot();
    let snapshot = sim_snapshot.merged(&service_snapshot);

    if let Some(lat) = snapshot.histogram("service_job_latency_seconds") {
        art.add_summary(
            "service_latency",
            Json::obj([
                ("count", Json::from(lat.count)),
                ("p50_s", Json::from(lat.p50 as f64 / 1e9)),
                ("p99_s", Json::from(lat.p99 as f64 / 1e9)),
                ("p999_s", Json::from(lat.p999 as f64 / 1e9)),
            ]),
        );
    }
    art.telemetry = Some(snapshot.clone());

    TelemetryReport { artifact: art, prometheus: snapshot.to_prometheus(), folded }
}

/// A small deterministic batch through the resilient service with every
/// mechanism on: clean jobs of three sizes, one transient fault (retry),
/// one sticky fault (fallback + breaker trip), and one over-capacity
/// submission (shed) — enough to populate the latency histogram, the
/// queue-depth distribution, and the breaker/budget counters.
fn run_service_batch() -> MetricsSnapshot {
    let rcfg = RobustConfig::new(SortConfig::with_params(SortParams::new(5, 32)));
    let mut svc = SortService::with_resilience(
        rcfg,
        ResilienceConfig {
            admission: AdmissionConfig::bounded(6, ShedPolicy::RejectNewest),
            retry_budget: RetryBudgetConfig::bounded(4.0),
            breaker: BreakerConfig { enabled: true, failure_threshold: 1, cooldown_s: 1e-6 },
        },
    );
    svc.enable_telemetry();

    let site = |kind, persistence| FaultSite { kernel: 0, block: 0, phase: 1, kind, persistence };
    for (i, blocks) in [1usize, 2, 4].iter().enumerate() {
        let input = InputSpec::UniformRandom { seed: 100 + i as u64 }.generate(blocks * 160);
        svc.submit(&format!("clean-{i}"), input, SortAlgorithm::CfMerge);
    }
    let faulty = InputSpec::UniformRandom { seed: 200 }.generate(2 * 160);
    svc.submit_with_faults(
        "transient",
        faulty.clone(),
        SortAlgorithm::CfMerge,
        FaultPlan::from_sites(vec![site(
            FaultKind::StuckBank { bank: 0, bit: 0 },
            Persistence::Transient,
        )]),
        None,
    );
    svc.submit_with_faults(
        "sticky",
        faulty.clone(),
        SortAlgorithm::CfMerge,
        FaultPlan::from_sites(vec![site(
            FaultKind::StuckBank { bank: 1, bit: 3 },
            Persistence::Sticky,
        )]),
        None,
    );
    svc.submit("post-trip", faulty.clone(), SortAlgorithm::CfMerge);
    // The queue is bounded at 6: a seventh submission is shed.
    svc.submit("overflow", faulty, SortAlgorithm::CfMerge);

    let outcomes = svc.drain();
    assert_eq!(outcomes.len(), 7);
    svc.telemetry_snapshot().expect("telemetry enabled")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmerge_json::ToJson;

    #[test]
    fn report_is_deterministic_and_instrumented() {
        let a = build();
        let b = build();
        assert_eq!(
            a.artifact.to_json().to_string_pretty(),
            b.artifact.to_json().to_string_pretty(),
            "metrics_report artifact must be bit-stable"
        );
        assert_eq!(a.prometheus, b.prometheus);
        assert_eq!(a.folded, b.folded);

        let snap = a.artifact.telemetry.as_ref().expect("telemetry embedded");
        // Both pipelines recorded; CF-Merge's merge phases conflict-free.
        assert!(snap.get("sim_thrust_runs_total").is_some());
        assert!(snap.get("sim_cf_merge_runs_total").is_some());
        // The service batch populated the latency histogram.
        let lat = snap.histogram("service_job_latency_seconds").expect("latency recorded");
        assert_eq!(lat.count, 6, "six executed jobs verify");
        assert!(lat.p50 > 0);
        // Exposition and flamegraph carry the same run.
        assert!(a.prometheus.contains("cfmerge_service_job_latency_seconds_count 6"));
        assert!(a.folded.contains(";merge "), "folded stacks name the merge phase");
    }
}
