//! Machine-readable run artifacts.
//!
//! Every bench binary emits, next to its text report, one JSON
//! [`RunArtifact`] capturing what was run (device, parameters), what was
//! measured (sweep [`Series`], per-run [`RunRecord`]s with full per-kernel
//! profiles and timing breakdowns), and the derived headline numbers
//! (`summaries`). Artifacts are self-describing (`schema_version`) and
//! round-trip through [`cfmerge_json`], so later tooling — notably the
//! `bench_diff` binary — can turn two artifacts from different revisions
//! into a speedup table without re-running the sweep.
//!
//! Artifacts land in `$CFMERGE_RESULTS_DIR` (default `results/`) as
//! `<tool>.json`.

use crate::sweep::Series;
use cfmerge_core::metrics::speedup_summary;
use cfmerge_core::recovery::{RecoveryCounters, RobustSortRun};
use cfmerge_core::resilience::ServiceCounters;
use cfmerge_core::sort::{KernelReport, SortAlgorithm, SortRun};
use cfmerge_core::telemetry::MetricsSnapshot;
use cfmerge_gpu_sim::device::Device;
use cfmerge_json::{FromJson, Json, JsonError, ToJson};
use std::path::{Path, PathBuf};

/// Version of the artifact layout; bump on breaking schema changes.
///
/// History:
/// - **1** — initial layout: `schema_version`/`tool`/`device`/`series`/
///   `runs`/`summaries`.
/// - **2** — optional top-level `telemetry` [`MetricsSnapshot`]. Version-1
///   files still parse (the field defaults to `None`); see the schema
///   migration test in `crates/bench/tests/`.
pub const SCHEMA_VERSION: u64 = 2;

/// One fully-profiled pipeline run (as opposed to a sweep point, which
/// keeps only the headline scalars).
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Display label, e.g. `cf-merge/random/E=15,u=512`.
    pub label: String,
    /// Algorithm label (`thrust` / `cf-merge`).
    pub algorithm: String,
    /// Input size.
    pub n: usize,
    /// Total modeled runtime in seconds.
    pub simulated_seconds: f64,
    /// Elements per microsecond.
    pub throughput: f64,
    /// Total bank conflicts in the merge/gather phases.
    pub merge_conflicts: u64,
    /// Per-launch detail: per-phase counters and the timing-model term
    /// breakdown for every kernel of the pipeline.
    pub kernels: Vec<KernelReport>,
    /// Fault-injection/recovery counters, present only for runs produced
    /// by the robust driver (`None` for plain pipeline runs, and for
    /// artifacts written before the field existed).
    pub recovery: Option<RecoveryCounters>,
}

impl RunRecord {
    /// Capture a finished [`SortRun`].
    #[must_use]
    pub fn from_run<K>(label: impl Into<String>, algo: SortAlgorithm, run: &SortRun<K>) -> Self {
        Self {
            label: label.into(),
            algorithm: algo.label().to_string(),
            n: run.n,
            simulated_seconds: run.simulated_seconds,
            throughput: run.throughput(),
            merge_conflicts: run.profile.merge_bank_conflicts(),
            kernels: run.kernels.clone(),
            recovery: None,
        }
    }

    /// Capture a run of the robust driver, folding its recovery counters
    /// into the record. The `algorithm` field reports the pipeline that
    /// actually produced the output (post-fallback).
    #[must_use]
    pub fn from_robust_run<K>(label: impl Into<String>, run: &RobustSortRun<K>) -> Self {
        let mut rec = Self::from_run(label, run.algorithm, &run.run);
        rec.recovery = Some(run.report.counters);
        rec
    }

    /// Like [`RunRecord::from_robust_run`] but without the per-kernel
    /// detail — the compact per-job summary campaign artifacts use
    /// (a 128-job chaos sweep with full kernel breakdowns is tens of
    /// thousands of lines for numbers nobody diffs). Headline scalars,
    /// the modeled seconds, and the recovery counters are all kept, so
    /// `bench_diff` tables are unchanged.
    #[must_use]
    pub fn compact_from_robust_run<K>(label: impl Into<String>, run: &RobustSortRun<K>) -> Self {
        let mut rec = Self::from_robust_run(label, run);
        rec.kernels.clear();
        rec
    }
}

impl ToJson for RunRecord {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("label", Json::from(self.label.as_str())),
            ("algorithm", Json::from(self.algorithm.as_str())),
            ("n", Json::from(self.n)),
            ("simulated_seconds", Json::from(self.simulated_seconds)),
            ("throughput", Json::from(self.throughput)),
            ("merge_conflicts", Json::from(self.merge_conflicts)),
            ("kernels", self.kernels.to_json()),
        ];
        if let Some(rc) = &self.recovery {
            pairs.push(("recovery", rc.to_json()));
        }
        Json::obj(pairs)
    }
}

impl FromJson for RunRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            label: v.field("label")?,
            algorithm: v.field("algorithm")?,
            n: v.field("n")?,
            simulated_seconds: v.field("simulated_seconds")?,
            throughput: v.field("throughput")?,
            merge_conflicts: v.field("merge_conflicts")?,
            kernels: v.field("kernels")?,
            recovery: v.field_opt("recovery")?,
        })
    }
}

/// The machine-readable result of one bench binary.
#[derive(Debug, Clone)]
pub struct RunArtifact {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u64,
    /// Producing binary (`fig5`, `speedup_summary`, …); also the file stem.
    pub tool: String,
    /// The simulated device the numbers were produced on.
    pub device: Device,
    /// Throughput sweeps (empty for non-sweep tools).
    pub series: Vec<Series>,
    /// Individually profiled runs (empty for sweep-only tools).
    pub runs: Vec<RunRecord>,
    /// Tool-specific headline numbers as a free-form JSON object
    /// (speedup summaries, conflict totals, table rows).
    pub summaries: Json,
    /// Frozen metrics from the run's telemetry registry (`None` for
    /// tools that don't record telemetry, and for version-1 artifacts).
    pub telemetry: Option<MetricsSnapshot>,
}

impl RunArtifact {
    /// Start an empty artifact for `tool` on `device`.
    #[must_use]
    pub fn new(tool: impl Into<String>, device: Device) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            tool: tool.into(),
            device,
            series: Vec::new(),
            runs: Vec::new(),
            summaries: Json::Obj(Vec::new()),
            telemetry: None,
        }
    }

    /// Append a summary entry under `key`.
    pub fn add_summary(&mut self, key: &str, value: impl Into<Json>) {
        if let Json::Obj(pairs) = &mut self.summaries {
            pairs.push((key.to_string(), value.into()));
        }
    }

    /// Where artifacts go: `$CFMERGE_RESULTS_DIR`, default `results/`.
    #[must_use]
    pub fn results_dir() -> PathBuf {
        std::env::var_os("CFMERGE_RESULTS_DIR")
            .map_or_else(|| PathBuf::from("results"), PathBuf::from)
    }

    /// Write `<dir>/<tool>.json` (pretty-printed), creating `dir` if needed.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.tool));
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        std::fs::write(&path, text)?;
        Ok(path)
    }

    /// Write to the default [`Self::results_dir`].
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        self.write_to(&Self::results_dir())
    }

    /// Load an artifact from a JSON file.
    ///
    /// # Errors
    /// Fails on unreadable files or malformed/mis-shaped JSON.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }
}

impl ToJson for RunArtifact {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema_version", Json::from(self.schema_version)),
            ("tool", Json::from(self.tool.as_str())),
            ("device", self.device.to_json()),
            ("series", self.series.to_json()),
            ("runs", self.runs.to_json()),
            ("summaries", self.summaries.clone()),
        ];
        if let Some(t) = &self.telemetry {
            pairs.push(("telemetry", t.to_json()));
        }
        Json::obj(pairs)
    }
}

impl FromJson for RunArtifact {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            schema_version: v.field("schema_version")?,
            tool: v.field("tool")?,
            device: v.field("device")?,
            series: v.field("series")?,
            runs: v.field("runs")?,
            summaries: v.get("summaries").cloned().unwrap_or_else(|| Json::Obj(Vec::new())),
            telemetry: v.field_opt("telemetry")?,
        })
    }
}

/// Write the artifact to the default results directory, reporting the
/// outcome on stderr. Bench binaries call this once at exit; an
/// unwritable directory degrades to a warning rather than failing the
/// text report.
pub fn emit(artifact: &RunArtifact) {
    match artifact.write() {
        Ok(path) => eprintln!("artifact: {}", path.display()),
        Err(e) => eprintln!("warning: could not write artifact for {}: {e}", artifact.tool),
    }
}

/// Series label with its leading `algo/` segment removed — the key used
/// to pair, say, `thrust/worst-case(E=15)/…` with `cf-merge/worst-case(E=15)/…`.
fn label_sans_algo(label: &str) -> &str {
    label.split_once('/').map_or(label, |(_, rest)| rest)
}

/// Compare two artifacts series-by-series into a speedup table
/// (`baseline.seconds / improved.seconds` at matching `n`).
///
/// Series are paired by exact label first (same tool re-run across
/// revisions), then by label-without-algorithm (thrust vs CF-Merge inside
/// one artifact). Artifacts from non-sweep tools carry [`RunRecord`]s
/// instead of series; those are paired by label the same way (repeated
/// labels — repeat-seed runs — pair positionally). Unpairable entries are
/// listed as skipped.
#[must_use]
pub fn diff_table(baseline: &RunArtifact, improved: &RunArtifact) -> String {
    let mut out = String::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    for base in &baseline.series {
        let matched = improved.series.iter().find(|s| s.label == base.label).or_else(|| {
            improved
                .series
                .iter()
                .find(|s| label_sans_algo(&s.label) == label_sans_algo(&base.label))
        });
        let Some(imp) = matched else {
            skipped.push(format!("no match for `{}`", base.label));
            continue;
        };
        let mut base_s = Vec::new();
        let mut imp_s = Vec::new();
        for bp in &base.points {
            if let Some(ip) = imp.points.iter().find(|p| p.n == bp.n) {
                base_s.push(bp.seconds);
                imp_s.push(ip.seconds);
            }
        }
        if base_s.is_empty() {
            skipped.push(format!("no match for `{}`", base.label));
            continue;
        }
        let s = match speedup_summary(&base_s, &imp_s) {
            Ok(s) => s,
            Err(e) => {
                skipped.push(format!("`{}`: {e}", base.label));
                continue;
            }
        };
        rows.push(vec![
            base.label.clone(),
            imp.label.clone(),
            base_s.len().to_string(),
            format!("{:.3}", s.average),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.max),
        ]);
    }
    let mut run_labels: Vec<&str> = Vec::new();
    for r in &baseline.runs {
        if !run_labels.contains(&r.label.as_str()) {
            run_labels.push(&r.label);
        }
    }
    for label in run_labels {
        let base_s: Vec<f64> = baseline
            .runs
            .iter()
            .filter(|r| r.label == label)
            .map(|r| r.simulated_seconds)
            .collect();
        let mut imp_runs: Vec<&RunRecord> =
            improved.runs.iter().filter(|r| r.label == label).collect();
        if imp_runs.is_empty() {
            imp_runs = improved
                .runs
                .iter()
                .filter(|r| label_sans_algo(&r.label) == label_sans_algo(label))
                .collect();
        }
        if imp_runs.is_empty() {
            skipped.push(format!("no match for `{label}`"));
            continue;
        }
        let n = base_s.len().min(imp_runs.len());
        let imp_s: Vec<f64> = imp_runs[..n].iter().map(|r| r.simulated_seconds).collect();
        let s = match speedup_summary(&base_s[..n], &imp_s) {
            Ok(s) => s,
            Err(e) => {
                skipped.push(format!("`{label}`: {e}"));
                continue;
            }
        };
        rows.push(vec![
            label.to_string(),
            imp_runs[0].label.clone(),
            n.to_string(),
            format!("{:.3}", s.average),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.max),
        ]);
    }
    if rows.is_empty() && skipped.is_empty() {
        out.push_str("(nothing to compare: neither artifact carries series or runs)\n");
        return out;
    }
    out.push_str(&cfmerge_core::metrics::format_table(
        &["baseline", "improved", "points", "speedup avg", "mean", "max"],
        &rows,
    ));
    for msg in skipped {
        out.push_str(&format!("\n(skipped: {msg})"));
    }
    out
}

/// Every `dropped_conflicts` figure the artifact carries: summary entries
/// whose object has a `dropped_conflicts` key (written by the tracing
/// tools), as `(summary key, dropped)` rows. `None` when the artifact
/// records no tracing at all — a zero row is meaningful (the conflict cap
/// held), absence means nothing was traced.
#[must_use]
pub fn dropped_conflicts_table(artifact: &RunArtifact) -> Option<String> {
    let Json::Obj(pairs) = &artifact.summaries else { return None };
    let rows: Vec<Vec<String>> = pairs
        .iter()
        .filter_map(|(key, v)| {
            let dropped = v.get("dropped_conflicts")?.as_u64()?;
            Some(vec![key.clone(), dropped.to_string()])
        })
        .collect();
    if rows.is_empty() {
        return None;
    }
    Some(cfmerge_core::metrics::format_table(&["traced run", "dropped conflicts"], &rows))
}

/// Certification coverage: per-profile verdict counts from a
/// `summaries.certificates` block (written by `kernel_cert`), plus the
/// verdict/strategy tallies. `None` when the artifact carries no
/// certificates summary. A rise in a profile's `refused` column relative
/// to a pinned artifact is a *coverage loss* — the gate calls it out.
#[must_use]
pub fn certificates_table(artifact: &RunArtifact) -> Option<String> {
    let certs = artifact.summaries.get("certificates")?;
    let profiles = certs.get("profiles")?.as_arr()?;
    let cell = |row: &Json, key: &str| {
        row.get(key).and_then(Json::as_u64).map_or_else(|| "?".into(), |v| v.to_string())
    };
    let rows: Vec<Vec<String>> = profiles
        .iter()
        .map(|row| {
            vec![
                row.get("profile").and_then(Json::as_str).unwrap_or("?").to_string(),
                cell(row, "banks"),
                row.get("bank_word_u32s")
                    .and_then(Json::as_u64)
                    .map_or_else(|| "?".into(), |w| format!("{}-bit", 32 * w)),
                cell(row, "records"),
                cell(row, "conflict_free"),
                cell(row, "conflicting"),
                cell(row, "not_certifiable"),
            ]
        })
        .collect();
    let mut out = cfmerge_core::metrics::format_table(
        &["profile", "banks", "bank row", "certs", "free", "conflicting", "refused"],
        &rows,
    );
    for (key, label) in [("verdicts", "verdict"), ("strategies", "strategy")] {
        if let Some(counts) = certs.get(key).and_then(Json::as_arr) {
            let parts: Vec<String> = counts
                .iter()
                .filter_map(|c| {
                    let name = c.get(label)?.as_str()?;
                    let n = c.get("count")?.as_u64()?;
                    Some(format!("{name}={n}"))
                })
                .collect();
            if !parts.is_empty() {
                out.push_str(&format!("\nby {label}: {}", parts.join(", ")));
            }
        }
    }
    if let Some(lints) = certs.get("lint_findings").and_then(Json::as_u64) {
        out.push_str(&format!("\nlint findings: {lints}"));
    }
    Some(out)
}

/// One-artifact summary: every series with its mean throughput and total
/// merge-phase conflicts.
#[must_use]
pub fn summary_table(artifact: &RunArtifact) -> String {
    let rows: Vec<Vec<String>> = artifact
        .series
        .iter()
        .map(|s| {
            let mean_tp = if s.points.is_empty() {
                0.0
            } else {
                s.points.iter().map(|p| p.throughput).sum::<f64>() / s.points.len() as f64
            };
            let conflicts: u64 = s.points.iter().map(|p| p.merge_conflicts).sum();
            vec![
                s.label.clone(),
                s.points.len().to_string(),
                format!("{mean_tp:.1}"),
                conflicts.to_string(),
            ]
        })
        .collect();
    cfmerge_core::metrics::format_table(
        &["series", "points", "mean elems/µs", "merge conflicts"],
        &rows,
    )
}

/// Fault/recovery totals across an artifact's runs: one row per run that
/// carries [`RecoveryCounters`], plus a totals row. `None` when no run
/// does (plain pipeline artifacts, or pre-recovery schema files).
#[must_use]
pub fn recovery_table(artifact: &RunArtifact) -> Option<String> {
    let with: Vec<(&RunRecord, &RecoveryCounters)> =
        artifact.runs.iter().filter_map(|r| r.recovery.as_ref().map(|c| (r, c))).collect();
    if with.is_empty() {
        return None;
    }
    let mut total = RecoveryCounters::default();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (r, c) in &with {
        total.merge(c);
        rows.push(vec![
            r.label.clone(),
            c.faults_injected.to_string(),
            c.faults_detected.to_string(),
            c.retries.to_string(),
            c.fallbacks.to_string(),
            c.unrecovered.to_string(),
            c.hedges_launched.to_string(),
            c.hedges_won.to_string(),
        ]);
    }
    if with.len() > 1 {
        rows.push(vec![
            "TOTAL".into(),
            total.faults_injected.to_string(),
            total.faults_detected.to_string(),
            total.retries.to_string(),
            total.fallbacks.to_string(),
            total.unrecovered.to_string(),
            total.hedges_launched.to_string(),
            total.hedges_won.to_string(),
        ]);
    }
    Some(cfmerge_core::metrics::format_table(
        &["run", "injected", "detected", "retries", "fallbacks", "unrecovered", "hedged", "h-won"],
        &rows,
    ))
}

/// Service-level resilience tallies, rendered from the artifact's
/// `service` summary (written by service-mode campaigns). `None` when
/// the artifact predates the resilience schema or was produced by a
/// non-service tool.
#[must_use]
pub fn service_table(artifact: &RunArtifact) -> Option<String> {
    let sc = artifact.summaries.get("service").and_then(|v| ServiceCounters::from_json(v).ok())?;
    let rows = vec![
        vec!["submitted".into(), sc.submitted.to_string()],
        vec!["admitted".into(), sc.admitted.to_string()],
        vec!["executed".into(), sc.executed.to_string()],
        vec!["verified ok".into(), sc.verified_ok.to_string()],
        vec!["failed (typed)".into(), sc.failed.to_string()],
        vec!["cancelled".into(), sc.cancelled.to_string()],
        vec!["shed: overload".into(), sc.shed_overload.to_string()],
        vec!["shed: largest".into(), sc.shed_largest.to_string()],
        vec!["shed: deadline".into(), sc.shed_deadline.to_string()],
        vec!["invalid deadlines".into(), sc.invalid_deadline.to_string()],
        vec!["budget denials".into(), sc.budget_denied.to_string()],
        vec!["breaker opens".into(), sc.breaker_opens.to_string()],
        vec!["breaker half-opens".into(), sc.breaker_half_opens.to_string()],
        vec!["breaker closes".into(), sc.breaker_closes.to_string()],
        vec!["quarantined".into(), sc.quarantined.to_string()],
        vec!["probes".into(), sc.probes.to_string()],
        vec!["resumed".into(), sc.resumed.to_string()],
        vec!["checkpoints taken".into(), sc.checkpoints_taken.to_string()],
        vec!["device crashes".into(), sc.device_crashes.to_string()],
        vec!["device restarts".into(), sc.device_restarts.to_string()],
        vec!["device lost".into(), sc.device_lost.to_string()],
        vec!["migrations".into(), sc.migrations.to_string()],
        vec!["migrations failed".into(), sc.migrations_failed.to_string()],
        vec!["steals".into(), sc.steals.to_string()],
    ];
    // Tuner-era rows appear only once a tuning ladder has actually
    // routed something — pre-tuner artifacts render exactly as before.
    let mut rows = rows;
    for (label, v) in [
        ("tuned jobs", sc.tuned_jobs),
        ("ladder steps", sc.ladder_steps),
        ("uncertified rejected", sc.uncertified_rejected),
        ("canary jobs", sc.canary_jobs),
        ("canary rollbacks", sc.canary_rollbacks),
        ("canary promotions", sc.canary_promotions),
    ] {
        if v > 0 {
            rows.push(vec![label.into(), v.to_string()]);
        }
    }
    Some(cfmerge_core::metrics::format_table(&["service metric", "value"], &rows))
}

/// Auto-tuner coverage: per-ladder rung/tier counts from a
/// `summaries.tuning` block (written by `tune`), plus the table checksum
/// and the validation-scenario tally. `None` when the artifact carries
/// no tuning summary. A drop in a ladder's `rungs` or `certified` column
/// relative to a pinned artifact is a *coverage loss* — the gate calls
/// it out.
#[must_use]
pub fn tuning_table(artifact: &RunArtifact) -> Option<String> {
    let tuning = artifact.summaries.get("tuning")?;
    let ladders = tuning.get("ladders")?.as_arr()?;
    let cell = |row: &Json, key: &str| {
        row.get(key).and_then(Json::as_u64).map_or_else(|| "?".into(), |v| v.to_string())
    };
    let rows: Vec<Vec<String>> = ladders
        .iter()
        .map(|row| {
            vec![
                row.get("ladder").and_then(Json::as_str).unwrap_or("?").to_string(),
                cell(row, "rungs"),
                cell(row, "certified"),
                cell(row, "degraded"),
                cell(row, "excluded"),
            ]
        })
        .collect();
    let mut out = cfmerge_core::metrics::format_table(
        &["ladder", "rungs", "certified", "degraded", "excluded"],
        &rows,
    );
    if let Some(checksum) = tuning.get("checksum").and_then(Json::as_str) {
        out.push_str(&format!("\nladder checksum: {checksum}"));
    }
    if let (Some(scen), Some(fail)) = (
        tuning.get("validation_scenarios").and_then(Json::as_u64),
        tuning.get("validation_failures").and_then(Json::as_u64),
    ) {
        out.push_str(&format!("\nvalidation scenarios: {scen} ({fail} failed)"));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepPoint;

    fn point(i: u32, n: usize, seconds: f64) -> SweepPoint {
        SweepPoint {
            i,
            n,
            seconds,
            throughput: n as f64 / (seconds * 1e6),
            conflicts_per_round: 0.0,
            merge_conflicts: 0,
        }
    }

    fn sample() -> RunArtifact {
        let mut art = RunArtifact::new("unit_test", Device::rtx2080ti());
        art.series.push(Series {
            label: "thrust/random/E=15,u=512".into(),
            points: vec![point(9, 512 * 15, 2.0e-4), point(10, 1024 * 15, 4.0e-4)],
        });
        art.series.push(Series {
            label: "cf-merge/random/E=15,u=512".into(),
            points: vec![point(9, 512 * 15, 1.0e-4), point(10, 1024 * 15, 2.0e-4)],
        });
        art.add_summary("note", Json::from("fixture"));
        art
    }

    #[test]
    fn artifact_roundtrips_through_json() {
        let art = sample();
        let text = art.to_json().to_string_pretty();
        let back = RunArtifact::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.tool, "unit_test");
        assert_eq!(back.series, art.series);
        assert_eq!(back.summaries.req("note").unwrap().as_str(), Some("fixture"));
    }

    #[test]
    fn write_and_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cfmerge-artifact-{}", std::process::id()));
        let art = sample();
        let path = art.write_to(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "unit_test.json");
        let back = RunArtifact::load(&path).unwrap();
        assert_eq!(back.series, art.series);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_pairs_series_across_algorithms() {
        let art = sample();
        let table = diff_table(&art, &art);
        // Exact-label pairing: thrust vs thrust is speedup 1.0.
        assert!(table.contains("1.000"), "{table}");
        // Cross-algorithm pairing once the thrust series is the baseline
        // and only cf-merge exists on the other side.
        let mut cf_only = art.clone();
        cf_only.series.retain(|s| s.label.starts_with("cf-merge"));
        let table = diff_table(&art, &cf_only);
        assert!(table.contains("2.000"), "thrust→cf speedup missing: {table}");
    }

    #[test]
    fn diff_pairs_runs_when_there_are_no_series() {
        let mut base = RunArtifact::new("runs_only", Device::rtx2080ti());
        for seconds in [2.0e-4, 4.0e-4] {
            base.runs.push(RunRecord {
                label: "thrust/random/E=15,u=512".into(),
                algorithm: "thrust".into(),
                n: 512 * 15,
                simulated_seconds: seconds,
                throughput: 512.0 * 15.0 / (seconds * 1e6),
                merge_conflicts: 7,
                kernels: Vec::new(),
                recovery: None,
            });
        }
        let mut imp = base.clone();
        for r in &mut imp.runs {
            r.label = "cf-merge/random/E=15,u=512".into();
            r.simulated_seconds /= 2.0;
        }
        // Exact label on the self-diff, sans-algorithm across artifacts.
        assert!(diff_table(&base, &base).contains("1.000"));
        let table = diff_table(&base, &imp);
        assert!(table.contains("2.000"), "run-record pairing missing: {table}");
        // And two artifacts with nothing in them say so instead of
        // printing an empty table.
        let empty = RunArtifact::new("empty", Device::rtx2080ti());
        assert!(diff_table(&empty, &empty).contains("nothing to compare"));
    }

    #[test]
    fn summary_table_lists_each_series() {
        let t = summary_table(&sample());
        assert!(t.contains("thrust/random/E=15,u=512"));
        assert!(t.contains("cf-merge/random/E=15,u=512"));
    }

    #[test]
    fn run_record_captures_pipeline_run() {
        let cfg = cfmerge_core::sort::SortConfig::with_params(
            cfmerge_core::params::SortParams::new(5, 32),
        );
        let input = cfmerge_core::inputs::InputSpec::UniformRandom { seed: 7 }.generate(32 * 5 * 4);
        let run = cfmerge_core::sort::simulate_sort(&input, SortAlgorithm::CfMerge, &cfg);
        let rec = RunRecord::from_run("cf-merge/random/E=5,u=32", SortAlgorithm::CfMerge, &run);
        assert_eq!(rec.n, run.n);
        assert!(!rec.kernels.is_empty());
        let back = RunRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back.label, rec.label);
        assert_eq!(back.kernels.len(), rec.kernels.len());
        assert_eq!(back.merge_conflicts, 0);
    }
}
