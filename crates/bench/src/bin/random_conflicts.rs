//! The Karsin et al. observation: on random inputs, Thrust's serial
//! merge incurs a small constant number of bank conflicts per step
//! (between 2 and 3). We measure the exact distribution with the
//! simulator's per-round degree histogram, for both parameter sets, plus
//! CF-Merge as the zero-conflict control.

use cfmerge_bench::artifact::{emit, RunArtifact, RunRecord};
use cfmerge_core::inputs::InputSpec;
use cfmerge_core::metrics::format_table;
use cfmerge_core::params::SortParams;
use cfmerge_core::sort::{simulate_sort, SortAlgorithm, SortConfig};
use cfmerge_gpu_sim::device::Device;
use cfmerge_json::Json;

fn main() {
    let mut art = RunArtifact::new("random_conflicts", Device::rtx2080ti());
    let mut rows = Vec::new();
    for params in [SortParams::e15_u512(), SortParams::e17_u256()] {
        let cfg = SortConfig::with_params(params);
        let n = 32 * params.tile();
        for (algo, label) in
            [(SortAlgorithm::ThrustMergesort, "thrust"), (SortAlgorithm::CfMerge, "cf-merge")]
        {
            let mut per_seed = Vec::new();
            for seed in 0..3u64 {
                let input = InputSpec::UniformRandom { seed }.generate(n);
                let run = simulate_sort(&input, algo, &cfg);
                art.runs.push(RunRecord::from_run(
                    format!("{label}/random(seed={seed})/E={},u={}", params.e, params.u),
                    algo,
                    &run,
                ));
                per_seed.push(run);
            }
            let mean: f64 = per_seed.iter().map(|r| r.conflicts_per_merge_round()).sum::<f64>()
                / per_seed.len() as f64;
            let hist = &per_seed[0].profile.merge_degree_hist;
            art.add_summary(
                &format!("{label}_e{}_u{}", params.e, params.u),
                Json::obj([
                    ("conflicts_per_step", Json::from(mean)),
                    ("conflict_free_fraction", Json::from(hist.conflict_free_fraction())),
                    ("max_degree", hist.max_degree().map_or(Json::Null, Json::from)),
                ]),
            );
            rows.push(vec![
                format!("E={},u={}", params.e, params.u),
                label.to_string(),
                format!("{mean:.2}"),
                format!("{:.1}%", 100.0 * hist.conflict_free_fraction()),
                hist.max_degree().map_or("-".into(), |d| d.to_string()),
            ]);
        }
    }
    println!("=== Bank conflicts per merge step on uniform random inputs ===");
    println!("(Karsin et al. report 2–3 for Thrust; CF-Merge must be 0)\n");
    println!(
        "{}",
        format_table(
            &["params", "algorithm", "conflicts/step", "conflict-free rounds", "max degree"],
            &rows
        )
    );
    emit(&art);
}
