//! Design ablations (DESIGN.md §4): what each ingredient of the gather
//! buys, measured as bank conflicts per warp per `E`-round pass.
//!
//! * **naive** — no permutation at all: thread `i` scans `Aᵢ` then `Bᵢ`
//!   sequentially in the natural layout (what a PRAM port would do).
//! * **stagger** — the staggered round schedule but *without* reversing
//!   `B` (Figure 7): counts the extra rounds lost to 2-element stalls.
//! * **π only** — reversal without the circular shift `ρ`: exact CF for
//!   coprime `E`, residual conflicts otherwise.
//! * **π + ρ** — the full construction: zero everywhere.
//!
//! Plus the register-merge network ablation: compare-exchange counts for
//! odd-even transposition (the paper's choice), Batcher, and the bitonic
//! merger.

use cfmerge_bench::artifact::{emit, RunArtifact};
use cfmerge_core::gather::{CfLayout, GatherSchedule, ThreadSplit};
use cfmerge_core::metrics::format_table;
use cfmerge_gpu_sim::banks::BankModel;
use cfmerge_gpu_sim::device::Device;
use cfmerge_json::Json;
use cfmerge_mergepath::networks::{bitonic_merge_ops, oets_ops};
use rand::{Rng, SeedableRng};

fn random_splits(rng: &mut rand::rngs::SmallRng, t: usize, e: usize) -> (Vec<ThreadSplit>, usize) {
    let mut splits = Vec::with_capacity(t);
    let mut a = 0usize;
    for _ in 0..t {
        let len = rng.gen_range(0..=e);
        splits.push(ThreadSplit { a_begin: a, a_len: len });
        a += len;
    }
    (splits, a)
}

/// Conflicts per warp of a given per-round address function over E rounds.
fn measure<F: Fn(usize, usize) -> usize>(w: usize, e: usize, warps: usize, addr: F) -> f64 {
    let banks = BankModel::new(w as u32);
    let mut conflicts = 0u64;
    for v in 0..warps {
        for j in 0..e {
            let addrs: Vec<u32> = (0..w).map(|lane| addr(v * w + lane, j) as u32).collect();
            conflicts += u64::from(banks.round_cost(&addrs).conflicts);
        }
    }
    conflicts as f64 / warps as f64
}

fn main() {
    let mut art = RunArtifact::new("ablation", Device::rtx2080ti());
    let mut gather_rows = Vec::new();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0xAB1A);
    let mut rows = Vec::new();
    let warps = 4usize;
    for &(w, e) in &[(32usize, 15usize), (32, 17), (32, 16), (32, 24), (9, 6), (8, 6), (12, 5)] {
        let u = w * warps;
        let (splits, a_total) = random_splits(&mut rng, u, e);
        let full = CfLayout::new(w, e, u * e, a_total);
        let rev_only = CfLayout::reversal_only(w, e, u * e, a_total);

        // naive: sequential scan of own pair, natural layout.
        let naive = measure(w, e, warps, |tid, j| {
            let sp = splits[tid];
            let b_begin = tid * e - sp.a_begin;
            if j < sp.a_len {
                sp.a_begin + j
            } else {
                a_total + b_begin + (j - sp.a_len)
            }
        });
        // π only.
        let pi_only = measure(w, e, warps, |tid, j| {
            GatherSchedule::new(rev_only, tid, splits[tid]).round(j).slot()
        });
        // π + ρ (the real thing).
        let pi_rho = measure(w, e, warps, |tid, j| {
            GatherSchedule::new(full, tid, splits[tid]).round(j).slot()
        });

        gather_rows.push(Json::obj([
            ("w", Json::from(w)),
            ("e", Json::from(e)),
            ("naive", Json::from(naive)),
            ("pi_only", Json::from(pi_only)),
            ("pi_rho", Json::from(pi_rho)),
        ]));
        rows.push(vec![
            w.to_string(),
            e.to_string(),
            cfmerge_numtheory::gcd(w as u64, e as u64).to_string(),
            format!("{naive:.1}"),
            format!("{pi_only:.1}"),
            format!("{pi_rho:.1}"),
        ]);
    }
    art.add_summary("gather_ablation", Json::Arr(gather_rows));
    println!("=== Gather ablation: bank conflicts per warp per E-round pass ===\n");
    println!("{}", format_table(&["w", "E", "d", "naive", "π only", "π + ρ"], &rows));

    // Register-merge network ablation.
    let mut rows = Vec::new();
    let mut network_rows = Vec::new();
    for e in [15usize, 16, 17, 31, 32] {
        let serial = (e - 1) as u64; // comparisons of a two-finger merge
        let oets = oets_ops(e);
        let bitonic =
            if e.is_power_of_two() { bitonic_merge_ops(e).to_string() } else { "-".into() };
        network_rows.push(Json::obj([
            ("e", Json::from(e)),
            ("serial", Json::from(serial)),
            ("oets", Json::from(oets)),
            (
                "bitonic",
                if e.is_power_of_two() { Json::from(bitonic_merge_ops(e)) } else { Json::Null },
            ),
        ]));
        rows.push(vec![e.to_string(), serial.to_string(), oets.to_string(), bitonic]);
    }
    art.add_summary("network_ablation", Json::Arr(network_rows));
    println!("\n=== Register-merge ablation: compare(-exchange) counts per thread ===\n");
    println!(
        "{}",
        format_table(
            &["E", "serial merge (branchy)", "OETS (paper)", "bitonic (pow2 only)"],
            &rows
        )
    );
    println!(
        "OETS costs O(E²) compare-exchanges but needs only static register indexing —\n\
         dynamic indexing would spill to local memory, which is why the serial count\n\
         is not achievable in registers (Section 5 of the paper)."
    );
    emit(&art);
}
