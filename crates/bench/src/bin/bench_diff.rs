//! Compare two run artifacts (see `artifact::RunArtifact`) into a
//! speedup table, or summarize one.
//!
//! Usage:
//!
//! ```text
//! bench_diff BASELINE.json IMPROVED.json   # speedup table (base/improved)
//! bench_diff ARTIFACT.json                 # one-artifact summary
//! ```
//!
//! Series are paired by exact label first (the same tool re-run across
//! two revisions), then by label-without-algorithm (thrust vs CF-Merge
//! inside one artifact); points are matched by `n`.

use cfmerge_bench::artifact::{
    diff_table, recovery_table, service_table, summary_table, RunArtifact,
};
use std::path::Path;
use std::process::ExitCode;

fn load(path: &str) -> Result<RunArtifact, ExitCode> {
    RunArtifact::load(Path::new(path)).map_err(|e| {
        eprintln!("error: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [one] => {
            let art = match load(one) {
                Ok(a) => a,
                Err(code) => return code,
            };
            println!(
                "=== {} (schema v{}, device {}) ===\n",
                art.tool, art.schema_version, art.device.name
            );
            println!("{}", summary_table(&art));
            if let Some(t) = recovery_table(&art) {
                println!("\n=== fault injection / recovery ===\n");
                println!("{t}");
            }
            if let Some(t) = service_table(&art) {
                println!("\n=== service resilience ===\n");
                println!("{t}");
            }
            ExitCode::SUCCESS
        }
        [base, improved] => {
            let (base, improved) = match (load(base), load(improved)) {
                (Ok(b), Ok(i)) => (b, i),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            println!("=== speedup: {} (baseline) vs {} (improved) ===\n", base.tool, improved.tool);
            println!("{}", diff_table(&base, &improved));
            for (name, art) in [("baseline", &base), ("improved", &improved)] {
                if let Some(t) = recovery_table(art) {
                    println!("\n=== fault injection / recovery ({name}: {}) ===\n", art.tool);
                    println!("{t}");
                }
                if let Some(t) = service_table(art) {
                    println!("\n=== service resilience ({name}: {}) ===\n", art.tool);
                    println!("{t}");
                }
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: bench_diff BASELINE.json [IMPROVED.json]");
            ExitCode::FAILURE
        }
    }
}
