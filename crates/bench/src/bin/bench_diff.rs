//! Compare two run artifacts (see `artifact::RunArtifact`) into a
//! speedup table, summarize one, or gate one against a pinned baseline.
//!
//! Usage:
//!
//! ```text
//! bench_diff BASELINE.json IMPROVED.json   # speedup table (base/improved)
//! bench_diff ARTIFACT.json                 # one-artifact summary
//! bench_diff --gate BASELINE.json CURRENT.json [--tol KIND=REL]...
//! ```
//!
//! Series are paired by exact label first (the same tool re-run across
//! two revisions), then by label-without-algorithm (thrust vs CF-Merge
//! inside one artifact); points are matched by `n`.
//!
//! `--gate` runs the perf-regression gate: every modeled number in the
//! pinned baseline must match the freshly regenerated artifact exactly
//! (the simulator is deterministic), except metrics granted a relative
//! tolerance via `--tol` (e.g. `--tol seconds=0.02`). Exits nonzero on
//! any drift or coverage loss.

use cfmerge_bench::artifact::{
    certificates_table, diff_table, dropped_conflicts_table, recovery_table, service_table,
    summary_table, tuning_table, RunArtifact,
};
use cfmerge_bench::gate::{gate_artifacts, GateConfig};
use std::path::Path;
use std::process::ExitCode;

fn load(path: &str) -> Result<RunArtifact, ExitCode> {
    RunArtifact::load(Path::new(path)).map_err(|e| {
        eprintln!("error: {e}");
        ExitCode::FAILURE
    })
}

fn print_aux_tables(name: &str, art: &RunArtifact) {
    if let Some(t) = recovery_table(art) {
        println!("\n=== fault injection / recovery ({name}: {}) ===\n", art.tool);
        println!("{t}");
    }
    if let Some(t) = service_table(art) {
        println!("\n=== service resilience ({name}: {}) ===\n", art.tool);
        println!("{t}");
    }
    if let Some(t) = dropped_conflicts_table(art) {
        println!("\n=== conflict-trace retention ({name}: {}) ===\n", art.tool);
        println!("{t}");
    }
    if let Some(t) = certificates_table(art) {
        println!("\n=== kernel certification coverage ({name}: {}) ===\n", art.tool);
        println!("{t}");
    }
    if let Some(t) = tuning_table(art) {
        println!("\n=== auto-tuner ladder coverage ({name}: {}) ===\n", art.tool);
        println!("{t}");
    }
}

fn run_gate(args: &[String]) -> ExitCode {
    let mut cfg = GateConfig::exact();
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tol" {
            let Some(spec) = it.next() else {
                eprintln!("error: --tol needs a KIND=REL argument");
                return ExitCode::FAILURE;
            };
            if let Err(e) = cfg.parse_tolerance_arg(spec) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        } else {
            paths.push(arg);
        }
    }
    let [base, current] = paths.as_slice() else {
        eprintln!("usage: bench_diff --gate BASELINE.json CURRENT.json [--tol KIND=REL]...");
        return ExitCode::FAILURE;
    };
    let (base, current) = match (load(base), load(current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    println!("=== perf gate: {} (pinned) vs {} (current) ===\n", base.tool, current.tool);
    let report = gate_artifacts(&base, &current, &cfg);
    print!("{}", report.render());
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--gate") {
        return run_gate(&args[1..]);
    }
    match args.as_slice() {
        [one] => {
            let art = match load(one) {
                Ok(a) => a,
                Err(code) => return code,
            };
            println!(
                "=== {} (schema v{}, device {}) ===\n",
                art.tool, art.schema_version, art.device.name
            );
            println!("{}", summary_table(&art));
            if let Some(t) = recovery_table(&art) {
                println!("\n=== fault injection / recovery ===\n");
                println!("{t}");
            }
            if let Some(t) = service_table(&art) {
                println!("\n=== service resilience ===\n");
                println!("{t}");
            }
            if let Some(t) = dropped_conflicts_table(&art) {
                println!("\n=== conflict-trace retention ===\n");
                println!("{t}");
            }
            if let Some(t) = certificates_table(&art) {
                println!("\n=== kernel certification coverage ===\n");
                println!("{t}");
            }
            if let Some(t) = tuning_table(&art) {
                println!("\n=== auto-tuner ladder coverage ===\n");
                println!("{t}");
            }
            if let Some(snap) = &art.telemetry {
                println!("\n(telemetry: {} metrics embedded)", snap.metrics.len());
            }
            ExitCode::SUCCESS
        }
        [base, improved] => {
            let (base, improved) = match (load(base), load(improved)) {
                (Ok(b), Ok(i)) => (b, i),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            println!("=== speedup: {} (baseline) vs {} (improved) ===\n", base.tool, improved.tool);
            println!("{}", diff_table(&base, &improved));
            for (name, art) in [("baseline", &base), ("improved", &improved)] {
                print_aux_tables(name, art);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: bench_diff BASELINE.json [IMPROVED.json]\n       bench_diff --gate BASELINE.json CURRENT.json [--tol KIND=REL]..."
            );
            ExitCode::FAILURE
        }
    }
}
