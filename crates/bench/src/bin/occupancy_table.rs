//! The occupancy discussion of Section 5: `E = 15, u = 512` achieves
//! 100% theoretical occupancy on the RTX 2080 Ti while Thrust's default
//! `E = 17, u = 256` reaches 75% (shared-memory-limited). Printed for a
//! grid of candidate parameters.

use cfmerge_core::metrics::format_table;
use cfmerge_core::params::SortParams;
use cfmerge_gpu_sim::device::Device;
use cfmerge_gpu_sim::occupancy::{mergesort_regs_estimate, occupancy, BlockResources};

fn main() {
    let dev = Device::rtx2080ti();
    let mut rows = Vec::new();
    for &u in &[128usize, 256, 512, 1024] {
        for &e in &[11usize, 13, 15, 17, 19, 21] {
            let params = SortParams::new(e, u);
            let res = BlockResources {
                threads: u as u32,
                shared_bytes: params.shared_bytes(),
                regs_per_thread: mergesort_regs_estimate(e as u32),
            };
            let occ = occupancy(&dev, &res);
            rows.push(vec![
                e.to_string(),
                u.to_string(),
                format!("{} B", params.shared_bytes()),
                occ.blocks_per_sm.to_string(),
                occ.warps_per_sm.to_string(),
                format!("{:.0}%", occ.fraction * 100.0),
                format!("{:?}", occ.limiter),
            ]);
        }
    }
    println!("=== Theoretical occupancy on {} ===\n", dev.name);
    println!(
        "{}",
        format_table(
            &["E", "u", "smem/block", "blocks/SM", "warps/SM", "occupancy", "limiter"],
            &rows
        )
    );
}
