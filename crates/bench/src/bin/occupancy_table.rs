//! The occupancy discussion of Section 5: `E = 15, u = 512` achieves
//! 100% theoretical occupancy on the RTX 2080 Ti while Thrust's default
//! `E = 17, u = 256` reaches 75% (shared-memory-limited). Printed for a
//! grid of candidate parameters.

use cfmerge_bench::artifact::{emit, RunArtifact};
use cfmerge_core::metrics::format_table;
use cfmerge_core::params::SortParams;
use cfmerge_gpu_sim::device::Device;
use cfmerge_gpu_sim::occupancy::{mergesort_regs_estimate, try_occupancy, BlockResources};
use cfmerge_json::{Json, ToJson};

fn main() {
    let dev = Device::rtx2080ti();
    let mut art = RunArtifact::new("occupancy_table", dev.clone());
    let mut grid = Vec::new();
    let mut rows = Vec::new();
    for &u in &[128usize, 256, 512, 1024] {
        for &e in &[11usize, 13, 15, 17, 19, 21] {
            let params = SortParams::new(e, u);
            let res = BlockResources {
                threads: u as u32,
                shared_bytes: params.shared_bytes(),
                regs_per_thread: mergesort_regs_estimate(e as u32),
            };
            // Large (u, E) products legitimately exceed the SM's shared
            // memory; report those rows as non-launchable rather than
            // skipping them, so the table shows *why* the corner is empty.
            let occ = try_occupancy(&dev, &res);
            grid.push(Json::obj([
                ("e", Json::from(e)),
                ("u", Json::from(u)),
                ("resources", res.to_json()),
                (
                    "occupancy",
                    match &occ {
                        Ok(o) => o.to_json(),
                        Err(_) => Json::Null,
                    },
                ),
                (
                    "unlaunchable_reason",
                    match &occ {
                        Ok(_) => Json::Null,
                        Err(why) => Json::from(*why),
                    },
                ),
            ]));
            rows.push(match occ {
                Ok(occ) => vec![
                    e.to_string(),
                    u.to_string(),
                    format!("{} B", params.shared_bytes()),
                    occ.blocks_per_sm.to_string(),
                    occ.warps_per_sm.to_string(),
                    format!("{:.0}%", occ.fraction * 100.0),
                    format!("{:?}", occ.limiter),
                ],
                Err(why) => vec![
                    e.to_string(),
                    u.to_string(),
                    format!("{} B", params.shared_bytes()),
                    "-".into(),
                    "-".into(),
                    "0%".into(),
                    format!("won't launch: {why}"),
                ],
            });
        }
    }
    println!("=== Theoretical occupancy on {} ===\n", dev.name);
    println!(
        "{}",
        format_table(
            &["E", "u", "smem/block", "blocks/SM", "warps/SM", "occupancy", "limiter"],
            &rows
        )
    );
    art.add_summary("grid", Json::Arr(grid));
    emit(&art);
}
