//! Figure 5: throughput (elements/µs) of Thrust vs CF-Merge on the
//! constructed worst-case inputs, for both software parameter sets,
//! sweeping `n = 2^i·E`.
//!
//! `--full` extends the sweep (slower). The paper reports, on this data:
//! CF speedups of avg/mean/max ≈ 1.37/1.45/1.47 at `E=15,u=512` and
//! 1.17/1.23/1.25 at `E=17,u=256`.

use cfmerge_bench::artifact::{emit, RunArtifact};
use cfmerge_bench::report::speedup_summary;
use cfmerge_bench::sweep::{
    default_exponents, full_exponents, full_flag, run_series, series_table,
};
use cfmerge_core::inputs::InputSpec;
use cfmerge_core::params::SortParams;
use cfmerge_core::sort::SortAlgorithm;
use cfmerge_gpu_sim::device::Device;
use cfmerge_json::ToJson;

fn main() {
    let full = full_flag();
    let mut art = RunArtifact::new("fig5", Device::rtx2080ti());
    for params in [SortParams::e15_u512(), SortParams::e17_u256()] {
        let exps = if full { full_exponents(params.u) } else { default_exponents(params.u) };
        let input = InputSpec::worst_case(params);
        eprintln!("running E={}, u={} (i = {:?}) …", params.e, params.u, exps);
        let thrust = run_series(params, SortAlgorithm::ThrustMergesort, input, exps.clone());
        let cf = run_series(params, SortAlgorithm::CfMerge, input, exps);

        println!(
            "\n=== Figure 5 panel: E = {}, u = {} (worst-case inputs) ===",
            params.e, params.u
        );
        println!("{}", series_table(&[thrust.clone(), cf.clone()]));
        let base: Vec<f64> = thrust.points.iter().map(|p| p.seconds).collect();
        let impr: Vec<f64> = cf.points.iter().map(|p| p.seconds).collect();
        let s = speedup_summary(&base, &impr)
            .expect("fig5 sweeps are paired, non-empty, and have positive runtimes");
        println!(
            "CF speedup over Thrust: average {:.2}, mean {:.2}, max {:.2} (paper: {})",
            s.average,
            s.mean,
            s.max,
            if params.e == 15 { "1.37 / 1.45 / 1.47" } else { "1.17 / 1.23 / 1.25" }
        );
        art.add_summary(&format!("speedup_e{}_u{}", params.e, params.u), s.to_json());
        art.series.push(thrust);
        art.series.push(cf);
    }
    emit(&art);
}
