//! The offline certified auto-tuner: search the (E, u, device-profile)
//! landscape through certificate verdicts, occupancy, and the timing
//! model; rank the survivors into per-device degradation ladders; replay
//! the pinned rollout scenarios (breaker-trip ladder step-down, canary
//! rollback) against the fresh table; and (with `--check PINNED.json`)
//! fail on any drift.
//!
//! Emits two artifacts into the results dir (`$CFMERGE_RESULTS_DIR`,
//! default `results/`):
//!
//! * `tuning.json` — the versioned, checksummed [`TuningTable`]: one
//!   degradation ladder per (device profile, pipeline), certified rungs
//!   first, plus the excluded configs with reasons and the validation
//!   scenarios' deterministic event logs.
//! * `tune.json` — a [`RunArtifact`] whose `summaries.tuning` block
//!   carries the ladder coverage counts the perf gate
//!   (`bench_diff --gate`) compares, flagging certified-rung losses.
//!
//! Exit status is nonzero on any failed validation scenario or any
//! drift against a pinned table.

use cfmerge_bench::artifact::{emit, RunArtifact};
use cfmerge_core::cert::build_certificate_table;
use cfmerge_core::inputs::InputSpec;
use cfmerge_core::params::SortParams;
use cfmerge_core::recovery::RobustConfig;
use cfmerge_core::resilience::{BreakerConfig, JobOutcome, ResilienceConfig, SortService};
use cfmerge_core::sort::{SortAlgorithm, SortConfig, SortError};
use cfmerge_core::tuning::{
    build_tuning_table, CanaryPolicy, RungTier, TuningPolicy, TuningTable, ValidationScenario,
};
use cfmerge_gpu_sim::device::Device;
use cfmerge_gpu_sim::fault::{FaultKind, FaultPlan, FaultSite, Persistence};
use cfmerge_json::{FromJson, Json, ToJson};
use std::path::Path;

/// The sticky poison every validation scenario injects: defeats all
/// retries at the faulted block, so the run is rescued only by the
/// Thrust fallback — a config-health failure with a verified output.
fn sticky_poison() -> FaultPlan {
    FaultPlan::from_sites(vec![FaultSite {
        kernel: 0,
        block: 0,
        phase: 1,
        kind: FaultKind::StuckBank { bank: 1, bit: 3 },
        persistence: Persistence::Sticky,
    }])
}

/// One deterministic event-log line per job outcome.
fn describe(o: &JobOutcome) -> String {
    let tuned = o.tuned.map_or_else(|| "-".to_string(), |p| format!("E={},u={}", p.e, p.u));
    let result = match &o.result {
        Ok(_) => "verified".to_string(),
        Err(e) => format!("error: {e}"),
    };
    format!(
        "{}: tuned={tuned} quarantined={} degraded={} canary={} -> {result}",
        o.label, o.quarantined, o.degraded, o.canary
    )
}

/// Pinned scenario 1: a tripped breaker steps DOWN the ladder (on the
/// 64-bit-bank profile, whose rungs are all degraded tier, so the
/// explicit `degraded` marker is exercised too), and an exhausted
/// ladder fails closed instead of running an uncertified config.
fn scenario_step_down(table: &TuningTable) -> ValidationScenario {
    let mut events = Vec::new();
    let mut pass = true;
    let mut check = |ok: bool, what: &str, events: &mut Vec<String>| {
        if !ok {
            pass = false;
            events.push(format!("ASSERT FAIL: {what}"));
        }
    };

    let cfg = RobustConfig::new(SortConfig {
        device: Device::kepler_64bit_like(),
        ..SortConfig::paper_e17_u256()
    });
    let mut svc = SortService::with_resilience(
        cfg,
        ResilienceConfig {
            // Cooldown far above any modeled job time: an opened breaker
            // stays open for the rest of the batch.
            breaker: BreakerConfig { enabled: true, failure_threshold: 1, cooldown_s: 1.0 },
            ..ResilienceConfig::default()
        },
    );
    svc.enable_tuning(table.clone(), TuningPolicy::default()).expect("freshly built table");

    let input = InputSpec::UniformRandom { seed: 90 }.generate(4500);
    svc.submit_with_faults("trip-r0", input.clone(), SortAlgorithm::CfMerge, sticky_poison(), None);
    svc.submit("stepped", input.clone(), SortAlgorithm::CfMerge);
    svc.submit_with_faults("trip-r1", input.clone(), SortAlgorithm::CfMerge, sticky_poison(), None);
    svc.submit("exhausted", input, SortAlgorithm::CfMerge);
    let outcomes = svc.drain();
    for o in &outcomes {
        events.push(describe(o));
    }

    let rung0 = Some(SortParams::e17_u256());
    let rung1 = Some(SortParams::e15_u512());
    check(
        outcomes[0].tuned == rung0 && outcomes[0].result.is_ok(),
        "job 1 runs rung 0",
        &mut events,
    );
    check(
        outcomes[1].quarantined && outcomes[1].tuned == rung1 && outcomes[1].degraded,
        "job 2 steps down to rung 1 with the degraded marker",
        &mut events,
    );
    check(
        outcomes[2].quarantined && outcomes[2].tuned == rung1,
        "job 3 steps down and trips rung 1's breaker",
        &mut events,
    );
    check(
        matches!(&outcomes[3].result, Err(SortError::Uncertified { .. })),
        "job 4 fails closed once the ladder is exhausted",
        &mut events,
    );
    // The contract the ladder exists for: nothing ever ran off-ladder.
    let ladder =
        table.ladder_for(&Device::kepler_64bit_like().name, "cf-merge").expect("kepler cf ladder");
    check(
        outcomes.iter().filter_map(|o| o.tuned).all(|p| ladder.rung_for(p).is_some()),
        "every executed config is on the ladder",
        &mut events,
    );
    let sc = svc.counters();
    check(
        (sc.tuned_jobs, sc.ladder_steps, sc.uncertified_rejected, sc.breaker_opens) == (3, 2, 1, 2),
        "counters: 3 tuned jobs, 2 ladder steps, 1 fail-closed rejection, 2 breaker opens",
        &mut events,
    );
    events.push(format!(
        "counters: tuned_jobs={} ladder_steps={} uncertified_rejected={} quarantined={} \
         breaker_opens={}",
        sc.tuned_jobs, sc.ladder_steps, sc.uncertified_rejected, sc.quarantined, sc.breaker_opens
    ));
    ValidationScenario { name: "breaker-trip ladder step-down".to_string(), pass, events }
}

/// Pinned scenario 2: a deterministic canary probes the candidate rung
/// on its cadence; the poisoned probe is rescued by the fallback, so
/// the candidate is rolled back and every later job stays on the
/// previously active rung. The whole batch is replayed twice and the
/// event logs must be bit-identical.
fn scenario_canary_rollback(table: &TuningTable) -> ValidationScenario {
    let run = || {
        let mut svc = SortService::new(RobustConfig::new(SortConfig::paper_e17_u256()));
        svc.enable_tuning(
            table.clone(),
            TuningPolicy {
                canary: Some(CanaryPolicy {
                    candidate: SortParams::e15_u512(),
                    every: 3,
                    promote_after: 2,
                }),
            },
        )
        .expect("freshly built table");
        let input = InputSpec::UniformRandom { seed: 91 }.generate(4500);
        for i in 1..=6 {
            let plan = if i == 3 { sticky_poison() } else { FaultPlan::none() };
            svc.submit_with_faults(
                &format!("job-{i}"),
                input.clone(),
                SortAlgorithm::CfMerge,
                plan,
                None,
            );
        }
        let outcomes = svc.drain();
        let events: Vec<String> = outcomes.iter().map(describe).collect();
        let sc = svc.counters();
        (events, outcomes, (sc.canary_jobs, sc.canary_rollbacks, sc.canary_promotions))
    };

    let (mut events, outcomes, counters) = run();
    let (events_replay, _, counters_replay) = run();
    let mut pass = true;
    let mut check = |ok: bool, what: &str, events: &mut Vec<String>| {
        if !ok {
            pass = false;
            events.push(format!("ASSERT FAIL: {what}"));
        }
    };
    check(
        outcomes[2].canary && outcomes[2].tuned == Some(SortParams::e15_u512()),
        "job 3 is the canary probe of the candidate rung",
        &mut events,
    );
    check(
        outcomes
            .iter()
            .enumerate()
            .all(|(i, o)| i == 2 || (!o.canary && o.tuned == Some(SortParams::e17_u256()))),
        "the rollback restores the prior rung for every other job",
        &mut events,
    );
    check(counters == (1, 1, 0), "counters: 1 canary, 1 rollback, 0 promotions", &mut events);
    check(
        events == events_replay && counters == counters_replay,
        "seeded replay is bit-identical",
        &mut events,
    );
    events.push("replay: bit-identical".to_string());
    ValidationScenario { name: "canary rollback".to_string(), pass, events }
}

fn load_table(path: &Path) -> Result<TuningTable, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    TuningTable::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pinned_path = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--check" => Some(path.clone()),
        _ => {
            eprintln!("usage: tune [--check PINNED_TUNING.json]");
            std::process::exit(2);
        }
    };

    let mut failures = 0usize;
    println!("=== tune: certified auto-tuner search ===");
    let cert = build_certificate_table();
    let mut table = build_tuning_table(&cert);
    for ladder in &table.ladders {
        println!(
            "  {:<18} {:<8} {} rung(s), {} excluded",
            ladder.profile,
            ladder.algo,
            ladder.rungs.len(),
            ladder.excluded.len()
        );
        for r in &ladder.rungs {
            println!(
                "    rung {}: E={:<2} u={:<3} [{}] degree {} occ {:.2} modeled {:.3e}s",
                r.rank,
                r.e,
                r.u,
                r.tier.label(),
                r.worst_degree,
                r.occupancy,
                r.modeled_cost_s
            );
        }
    }

    // ---- pinned rollout scenarios against the fresh table ----
    println!("\n=== tune: rollout validation scenarios ===");
    let scenarios = vec![scenario_step_down(&table), scenario_canary_rollback(&table)];
    for s in &scenarios {
        println!("  [{}] {}", if s.pass { "PASS" } else { "FAIL" }, s.name);
        for e in &s.events {
            println!("    {e}");
        }
        if !s.pass {
            failures += 1;
        }
    }
    table.validation = scenarios;

    // ---- drift check against a pinned table ----
    if let Some(path) = &pinned_path {
        println!("\n=== tune: drift check vs {path} ===");
        match load_table(Path::new(path)) {
            Ok(pinned) => {
                if pinned == table {
                    println!(
                        "  no drift: {} ladders bit-stable (checksum {})",
                        table.ladders.len(),
                        table.checksum
                    );
                } else {
                    failures += 1;
                    if pinned.checksum != table.checksum {
                        println!(
                            "  DRIFT: ladder checksum {} -> {}",
                            pinned.checksum, table.checksum
                        );
                    }
                    for l in &table.ladders {
                        match pinned.ladder_for(&l.device, &l.algo) {
                            Some(p) if p == l => {}
                            Some(_) => println!("  DRIFT: ladder {}/{} changed", l.profile, l.algo),
                            None => println!("  DRIFT: ladder {}/{} is new", l.profile, l.algo),
                        }
                    }
                    if pinned.validation != table.validation {
                        println!("  DRIFT: validation scenario logs changed");
                    }
                    println!("  regenerate and review the pinned results/tuning.json");
                }
            }
            Err(e) => {
                failures += 1;
                println!("  cannot load pinned table: {e}");
            }
        }
    }

    // ---- emit artifacts ----
    let dir = RunArtifact::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("tune: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let table_path = dir.join("tuning.json");
    let mut text = table.to_json().to_string_pretty();
    text.push('\n');
    if let Err(e) = std::fs::write(&table_path, text) {
        eprintln!("tune: cannot write {}: {e}", table_path.display());
        std::process::exit(1);
    }
    eprintln!("artifact: {}", table_path.display());

    let total =
        |tier: RungTier| -> usize { table.ladders.iter().map(|l| l.tier_count(tier)).sum() };
    let ladder_rows = Json::arr(table.ladders.iter().map(|l| {
        Json::obj([
            ("ladder", Json::from(format!("{}/{}", l.profile, l.algo))),
            ("rungs", Json::from(l.rungs.len())),
            ("certified", Json::from(l.tier_count(RungTier::Certified))),
            ("degraded", Json::from(l.tier_count(RungTier::Degraded))),
            ("excluded", Json::from(l.excluded.len())),
        ])
    }));
    let mut art = RunArtifact::new("tune", Device::rtx2080ti());
    art.add_summary(
        "tuning",
        Json::obj([
            ("schema", Json::from(table.schema)),
            ("cert_schema", Json::from(table.cert_schema)),
            ("checksum", Json::from(table.checksum.as_str())),
            ("ladder_count", Json::from(table.ladders.len())),
            ("rungs", Json::from(table.ladders.iter().map(|l| l.rungs.len()).sum::<usize>())),
            ("certified", Json::from(total(RungTier::Certified))),
            ("degraded", Json::from(total(RungTier::Degraded))),
            ("excluded", Json::from(table.ladders.iter().map(|l| l.excluded.len()).sum::<usize>())),
            ("validation_scenarios", Json::from(table.validation.len())),
            (
                "validation_failures",
                Json::from(table.validation.iter().filter(|s| !s.pass).count()),
            ),
            ("ladders", ladder_rows),
        ]),
    );
    art.add_summary("failures", Json::from(failures as u64));
    emit(&art);

    if failures > 0 {
        eprintln!("tune: {failures} failure(s)");
        std::process::exit(1);
    }
    println!(
        "\ntune: {} ladders ({} certified + {} degraded rungs, {} excluded configs); \
         all rollout scenarios pass.",
        table.ladders.len(),
        total(RungTier::Certified),
        total(RungTier::Degraded),
        table.ladders.iter().map(|l| l.excluded.len()).sum::<usize>()
    );
}
