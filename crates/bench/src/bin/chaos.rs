//! Chaos sweep: pinned-seed fault-injection campaign over both pipelines
//! with verified recovery, exercised through the batch `SortService`.
//!
//! For each of 64 pinned seeds × 2 pipelines, a deterministic
//! [`FaultPlan`] (3 sites, ~15% sticky) is injected into a small sort and
//! the robust driver must come back with an output that the exact oracle
//! (`verify_sorted_permutation`) confirms is the sorted permutation of
//! the input. A further 16 plans carry a permanent fault and must come
//! back as a *typed* `UnrecoverableFault` — or a verified success when
//! the fault happened not to corrupt anything — never as silently wrong
//! output.
//!
//! Exit is nonzero on any undetected corruption (wrong output returned as
//! success) or any unrecovered recoverable fault (recoverable sweep job
//! returning an error). CI runs this as the `chaos` job; the artifact
//! lands in `results/chaos.json` with per-job recovery counters.

use cfmerge_bench::artifact::{self, RunArtifact, RunRecord};
use cfmerge_bench::report::format_table;
use cfmerge_core::inputs::InputSpec;
use cfmerge_core::params::SortParams;
use cfmerge_core::recovery::{aggregate_counters, pipeline_shape, RobustConfig, SortService};
use cfmerge_core::sort::{SortAlgorithm, SortConfig, SortError};
use cfmerge_core::verify::verify_sorted_permutation;
use cfmerge_gpu_sim::fault::{FaultPlan, FaultSpec};
use cfmerge_json::Json;
use std::process::ExitCode;

/// Pinned sweep seed base — change it and the whole campaign changes, so
/// don't.
const BASE_SEED: u64 = 0xC4A0_5EED;
/// Recoverable plans per pipeline (2 pipelines ⇒ 128 jobs ≥ the
/// 100-plan floor).
const RECOVERABLE_PLANS: u64 = 64;
/// Additional plans per pipeline carrying a permanent fault.
const PERMANENT_PLANS: u64 = 8;

fn main() -> ExitCode {
    let params = SortParams::new(5, 32);
    let cfg = RobustConfig::new(SortConfig::with_params(params));
    // 4 full tiles plus a ragged tail: exercises sentinel padding under
    // injection too.
    let n = 4 * params.tile() + 17;
    let shape = pipeline_shape(n, &params);

    let recoverable_spec = FaultSpec {
        sites: 3,
        max_phase: 6,
        sticky_permille: 150,
        permanent_permille: 0,
        spikes: true,
    };
    let permanent_spec = FaultSpec { permanent_permille: 1000, ..recoverable_spec };

    let mut svc = SortService::new(cfg);
    let mut jobs = Vec::new();
    for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
        for i in 0..RECOVERABLE_PLANS + PERMANENT_PLANS {
            let permanent = i >= RECOVERABLE_PLANS;
            let seed = BASE_SEED ^ (i << 8) ^ u64::from(algo == SortAlgorithm::CfMerge);
            let spec = if permanent { &permanent_spec } else { &recoverable_spec };
            let plan = FaultPlan::generate(seed, &shape, spec);
            let input = InputSpec::UniformRandom { seed }.generate(n);
            let label = format!(
                "{}/chaos/seed={seed:#x}{}",
                algo.label(),
                if permanent { "/permanent" } else { "" }
            );
            let id = svc.submit_with_faults(&label, input.clone(), algo, plan.clone(), None);
            jobs.push((id, label, input, plan, permanent));
        }
    }
    println!(
        "chaos sweep: {} jobs ({} recoverable + {} permanent-fault plans per pipeline), n={n}",
        jobs.len(),
        RECOVERABLE_PLANS,
        PERMANENT_PLANS
    );

    let outcomes = svc.run_all();
    let mut artifact = RunArtifact::new("chaos", svc_device());
    let mut violations: Vec<String> = Vec::new();
    let mut unrecoverable_typed = 0u64;
    for ((_, label, input, plan, permanent), outcome) in jobs.iter().zip(&outcomes) {
        assert_eq!(*label, outcome.label, "service must preserve submission order");
        match &outcome.result {
            Ok(run) => {
                // The one invariant chaos exists to check: a success is
                // always the exact sorted permutation of the input.
                if let Err(failure) = verify_sorted_permutation(input, &run.run.output) {
                    violations.push(format!("{label}: UNDETECTED CORRUPTION: {failure}"));
                }
                artifact.runs.push(RunRecord::from_robust_run(label, run));
            }
            Err(SortError::UnrecoverableFault { .. }) if *permanent => {
                // Permanent faults are allowed exactly one escape hatch:
                // a typed error.
                unrecoverable_typed += 1;
            }
            Err(e) => {
                debug_assert!(!plan.has_permanent() || *permanent);
                violations.push(format!("{label}: unrecovered recoverable fault: {e}"));
            }
        }
    }

    let totals = aggregate_counters(&outcomes);
    let rows = vec![
        vec!["jobs".into(), outcomes.len().to_string()],
        vec!["faults injected".into(), totals.faults_injected.to_string()],
        vec!["faults detected".into(), totals.faults_detected.to_string()],
        vec!["blocks retried".into(), totals.blocks_retried.to_string()],
        vec!["retries".into(), totals.retries.to_string()],
        vec!["fallbacks".into(), totals.fallbacks.to_string()],
        vec!["typed unrecoverable (permanent plans)".into(), unrecoverable_typed.to_string()],
        vec!["violations".into(), violations.len().to_string()],
    ];
    println!("\n{}", format_table(&["metric", "value"], &rows));

    artifact.add_summary("jobs", Json::from(outcomes.len()));
    artifact.add_summary("faults_injected", Json::from(totals.faults_injected));
    artifact.add_summary("faults_detected", Json::from(totals.faults_detected));
    artifact.add_summary("retries", Json::from(totals.retries));
    artifact.add_summary("fallbacks", Json::from(totals.fallbacks));
    artifact.add_summary("unrecoverable_typed", Json::from(unrecoverable_typed));
    artifact.add_summary("violations", Json::from(violations.len()));
    artifact::emit(&artifact);

    if violations.is_empty() {
        println!(
            "\nOK: all {} injected faults were detected, recovered, or typed; every \
             success verified as the exact sorted permutation.",
            totals.faults_injected
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        ExitCode::FAILURE
    }
}

/// The sweep's device (the artifact wants it; the service owns the
/// config, so reconstruct the default).
fn svc_device() -> cfmerge_gpu_sim::device::Device {
    cfmerge_gpu_sim::device::Device::rtx2080ti()
}
