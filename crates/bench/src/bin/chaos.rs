//! Chaos campaigns for the robust sort service.
//!
//! Three suites, selectable by argument (`chaos sweep`, `chaos service`,
//! `chaos cluster`; no argument runs all three):
//!
//! * **sweep** — the pinned-seed fault-injection campaign: for each of
//!   64 pinned seeds × 2 pipelines, a deterministic [`FaultPlan`]
//!   (3 sites, ~15% sticky) is injected into a small sort and the robust
//!   driver must come back with an output that the exact oracle
//!   (`verify_sorted_permutation`) confirms is the sorted permutation of
//!   the input. A further 8 plans per pipeline carry a permanent fault
//!   and must come back as a *typed* `UnrecoverableFault` — or a
//!   verified success when the fault happened not to corrupt anything —
//!   never as silently wrong output. Artifact: `results/chaos.json`
//!   (compact per-job records).
//!
//! * **service** — pinned service-level scenarios exercising the
//!   resilience stack end to end: a fault storm that trips a circuit
//!   breaker and drains the retry budget, queue overflow under deadline
//!   pressure with typed load shedding, kill-and-resume from a verified
//!   checkpoint, and a straggler storm answered by hedged duplicates.
//!   Artifact: `results/resilience.json`.
//!
//! * **cluster** — the traffic × fault × policy chaos matrix for the
//!   multi-device cluster service: each pinned scenario replays a seeded
//!   load-generator stream (steady, diurnal, bursty, or a Theorem-8
//!   worst-case flood) against a device fleet under a device fault plan
//!   (none, crash, crash-with-restart, degrade) and an admission /
//!   migration policy. Every verified success must be the exact sorted
//!   permutation; every failure must be a typed error; crashed devices
//!   must hand their work over by checkpoint migration when failover is
//!   on. The final scenario byte-compares a fault-free single-device
//!   cluster against [`SortService`] directly. Artifact:
//!   `results/cluster.json`.
//!
//! `chaos --list` names every suite's scenarios. `--only <name>` runs a
//! single scenario: `chaos sweep --only <pipeline>`, `chaos service
//! --only <scenario>`, `chaos cluster --only <cell>` (bare `chaos
//! --only <cell>` still means the cluster suite). Every filtered run
//! skips its artifact, so a partial run can never clobber a pinned
//! baseline.
//!
//! Exit is nonzero on any violation: undetected corruption, an
//! unrecovered recoverable fault, a shed job that executed anyway, a
//! retry-budget underflow, breaker flapping beyond the pinned count, a
//! resume that re-executed verified passes, a device crash that lost
//! work with migration enabled, or a cluster/service parity break. CI
//! runs `sweep` as the `chaos` job, `service` as the `resilience` job,
//! and `cluster` as the `cluster-chaos` job.

use cfmerge_bench::artifact::{self, RunArtifact, RunRecord};
use cfmerge_bench::report::format_table;
use cfmerge_core::inputs::InputSpec;
use cfmerge_core::params::SortParams;
use cfmerge_core::recovery::{aggregate_counters, pipeline_shape, RobustConfig, SortService};
use cfmerge_core::resilience::{
    AdmissionConfig, BreakerConfig, CheckpointPolicy, ClusterConfig, ClusterReport, ClusterService,
    DeviceFaultEvent, DeviceFaultKind, DeviceFaultPlan, HedgeConfig, LoadGenConfig,
    MigrationConfig, ResilienceConfig, RetryBudgetConfig, ServiceCounters, ShedPolicy,
    TrafficShape,
};
use cfmerge_core::sort::{SortAlgorithm, SortConfig, SortError};
use cfmerge_core::telemetry::MetricsSnapshot;
use cfmerge_core::verify::verify_sorted_permutation;
use cfmerge_gpu_sim::fault::{FaultKind, FaultPlan, FaultSite, FaultSpec, Persistence};
use cfmerge_json::{Json, ToJson};
use std::process::ExitCode;

/// Pinned sweep seed base — change it and the whole campaign changes, so
/// don't.
const BASE_SEED: u64 = 0xC4A0_5EED;
/// Recoverable plans per pipeline (2 pipelines ⇒ 128 jobs ≥ the
/// 100-plan floor).
const RECOVERABLE_PLANS: u64 = 64;
/// Additional plans per pipeline carrying a permanent fault.
const PERMANENT_PLANS: u64 = 8;

const USAGE: &str = "usage: chaos [sweep|service|cluster] [--list] [--only <scenario>]";

fn main() -> ExitCode {
    let mut mode: Option<String> = None;
    let mut list = false;
    let mut only: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => list = true,
            "--only" => match it.next() {
                Some(name) => only = Some(name.clone()),
                None => {
                    eprintln!("--only needs a scenario name\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other if mode.is_none() && !other.starts_with('-') => mode = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if list {
        print_scenario_list();
        return ExitCode::SUCCESS;
    }
    let (run_sweep_suite, run_service_suite, run_cluster_suite) = match mode.as_deref() {
        // `--only` names a cluster scenario, so it narrows a no-mode
        // invocation to the cluster suite.
        None if only.is_some() => (false, false, true),
        None => (true, true, true),
        Some("sweep") => (true, false, false),
        Some("service") => (false, true, false),
        Some("cluster") => (false, false, true),
        Some(other) => {
            eprintln!("unknown suite `{other}`\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if only.is_some() && run_sweep_suite && run_service_suite {
        // Unreachable today (a bare `--only` narrows to cluster above),
        // but keep the all-suites + filter combination an explicit error
        // rather than a guess about which suite the name belongs to.
        eprintln!("--only needs a suite (sweep, service, or cluster)\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    if run_sweep_suite {
        ok &= run_sweep(only.as_deref());
    }
    if run_service_suite {
        ok &= run_service(only.as_deref());
    }
    if run_cluster_suite {
        ok &= run_cluster(only.as_deref());
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_scenario_list() {
    println!("suites: sweep, service, cluster");
    println!("sweep pipelines (run one with `chaos sweep --only <name>`):");
    for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
        println!(
            "  {:<28} {} recoverable + {} permanent-fault plans",
            algo.label(),
            RECOVERABLE_PLANS,
            PERMANENT_PLANS
        );
    }
    println!("service scenarios (run one with `chaos service --only <name>`):");
    for (name, _) in service_scenarios() {
        println!("  {name}");
    }
    println!("cluster scenarios (run one with `chaos --only <name>`):");
    for s in cluster_matrix() {
        println!(
            "  {:<28} {} devices, {} jobs, fault={}, policy={}",
            s.name,
            s.devices,
            s.jobs,
            s.fault.label(),
            s.policy_label()
        );
    }
    println!("  {:<28} byte-compares an N=1 fault-free cluster against SortService", PARITY_NAME);
}

// ---------------------------------------------------------------------------
// Sweep suite (the `chaos` CI job)
// ---------------------------------------------------------------------------

fn run_sweep(only: Option<&str>) -> bool {
    let pipelines = [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge];
    if let Some(name) = only {
        if !pipelines.iter().any(|a| a.label() == name) {
            eprintln!("unknown sweep pipeline `{name}`; `chaos --list` names them");
            return false;
        }
    }
    let params = SortParams::new(5, 32);
    let cfg = RobustConfig::new(SortConfig::with_params(params));
    // 4 full tiles plus a ragged tail: exercises sentinel padding under
    // injection too.
    let n = 4 * params.tile() + 17;
    let shape = pipeline_shape(n, &params);

    let recoverable_spec = FaultSpec {
        sites: 3,
        max_phase: 6,
        sticky_permille: 150,
        permanent_permille: 0,
        spikes: true,
    };
    let permanent_spec = FaultSpec { permanent_permille: 1000, ..recoverable_spec };

    let mut svc = SortService::new(cfg);
    svc.enable_telemetry();
    let mut jobs = Vec::new();
    for algo in pipelines {
        if only.is_some_and(|o| o != algo.label()) {
            continue;
        }
        for i in 0..RECOVERABLE_PLANS + PERMANENT_PLANS {
            let permanent = i >= RECOVERABLE_PLANS;
            let seed = BASE_SEED ^ (i << 8) ^ u64::from(algo == SortAlgorithm::CfMerge);
            let spec = if permanent { &permanent_spec } else { &recoverable_spec };
            let plan = FaultPlan::generate(seed, &shape, spec);
            let input = InputSpec::UniformRandom { seed }.generate(n);
            let label = format!(
                "{}/chaos/seed={seed:#x}{}",
                algo.label(),
                if permanent { "/permanent" } else { "" }
            );
            let id = svc.submit_with_faults(&label, input.clone(), algo, plan.clone(), None);
            jobs.push((id, label, input, plan, permanent));
        }
    }
    println!(
        "chaos sweep: {} jobs ({} recoverable + {} permanent-fault plans per pipeline), n={n}",
        jobs.len(),
        RECOVERABLE_PLANS,
        PERMANENT_PLANS
    );

    let outcomes = svc.run_all();
    let mut art = RunArtifact::new("chaos", device());
    let mut violations: Vec<String> = Vec::new();
    let mut unrecoverable_typed = 0u64;
    for ((_, label, input, plan, permanent), outcome) in jobs.iter().zip(&outcomes) {
        assert_eq!(*label, outcome.label, "service must preserve submission order");
        match &outcome.result {
            Ok(run) => {
                // The one invariant chaos exists to check: a success is
                // always the exact sorted permutation of the input.
                if let Err(failure) = verify_sorted_permutation(input, &run.run.output) {
                    violations.push(format!("{label}: UNDETECTED CORRUPTION: {failure}"));
                }
                art.runs.push(RunRecord::compact_from_robust_run(label, run));
            }
            Err(SortError::UnrecoverableFault { .. }) if *permanent => {
                // Permanent faults are allowed exactly one escape hatch:
                // a typed error.
                unrecoverable_typed += 1;
            }
            Err(e) => {
                debug_assert!(!plan.has_permanent() || *permanent);
                violations.push(format!("{label}: unrecovered recoverable fault: {e}"));
            }
        }
    }

    let totals = aggregate_counters(&outcomes);
    let rows = vec![
        vec!["jobs".into(), outcomes.len().to_string()],
        vec!["faults injected".into(), totals.faults_injected.to_string()],
        vec!["faults detected".into(), totals.faults_detected.to_string()],
        vec!["blocks retried".into(), totals.blocks_retried.to_string()],
        vec!["retries".into(), totals.retries.to_string()],
        vec!["fallbacks".into(), totals.fallbacks.to_string()],
        vec!["typed unrecoverable (permanent plans)".into(), unrecoverable_typed.to_string()],
        vec!["violations".into(), violations.len().to_string()],
    ];
    println!("\n{}", format_table(&["metric", "value"], &rows));

    art.add_summary("jobs", Json::from(outcomes.len()));
    art.add_summary("faults_injected", Json::from(totals.faults_injected));
    art.add_summary("faults_detected", Json::from(totals.faults_detected));
    art.add_summary("retries", Json::from(totals.retries));
    art.add_summary("fallbacks", Json::from(totals.fallbacks));
    art.add_summary("unrecoverable_typed", Json::from(unrecoverable_typed));
    art.add_summary("violations", Json::from(violations.len()));
    art.add_summary("service", svc.counters().to_json());
    let snap = svc.telemetry_snapshot().expect("telemetry enabled above").with_prefix("sweep_");
    add_latency_summary(&mut art, "sweep", &snap);
    art.telemetry = Some(snap);
    if only.is_none() {
        artifact::emit(&art);
    } else {
        println!("(--only run: skipping results/chaos.json so the pinned campaign stays intact)");
    }

    if violations.is_empty() {
        println!(
            "\nOK: all {} injected faults were detected, recovered, or typed; every \
             success verified as the exact sorted permutation.",
            totals.faults_injected
        );
        true
    } else {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Service suite (the `resilience` CI job)
// ---------------------------------------------------------------------------

/// Sticky shared-bank corruption at block 0 of the block sort: defeats
/// every same-pipeline retry, forcing the Thrust fallback — the breaker's
/// definition of a config-health failure.
fn sticky_poison() -> FaultPlan {
    FaultPlan::from_sites(vec![FaultSite {
        kernel: 0,
        block: 0,
        phase: 1,
        kind: FaultKind::StuckBank { bank: 1, bit: 3 },
        persistence: Persistence::Sticky,
    }])
}

/// A transient latency spike on one block of the block sort: the block's
/// result is correct but late — hedging's prey.
fn straggler_plan(block: u32, cycles: u64) -> FaultPlan {
    FaultPlan::from_sites(vec![FaultSite {
        kernel: 0,
        block,
        phase: 1,
        kind: FaultKind::LatencySpike { cycles },
        persistence: Persistence::Transient,
    }])
}

fn small_rcfg() -> RobustConfig {
    RobustConfig::new(SortConfig::with_params(SortParams::new(5, 32)))
}

/// One service-suite scenario: stable CLI name plus its runner.
type ServiceScenario =
    (&'static str, fn(&mut Vec<String>, &mut RunArtifact, &mut ServiceCounters) -> MetricsSnapshot);

fn service_scenarios() -> [ServiceScenario; 4] {
    [
        ("fault-storm", scenario_fault_storm),
        ("queue-overflow", scenario_queue_overflow),
        ("kill-and-resume", scenario_kill_and_resume),
        ("straggler-storm", scenario_straggler_storm),
    ]
}

fn run_service(only: Option<&str>) -> bool {
    let scenarios = service_scenarios();
    if let Some(name) = only {
        if !scenarios.iter().any(|(n, _)| *n == name) {
            eprintln!("unknown service scenario `{name}`; `chaos --list` names them");
            return false;
        }
    }
    let mut violations: Vec<String> = Vec::new();
    let mut art = RunArtifact::new("resilience", device());
    let mut service_totals = ServiceCounters::default();

    // Each scenario hands back its telemetry snapshot with a scenario
    // prefix; the merged snapshot rides in the artifact so the perf gate
    // pins every counter, gauge, and latency percentile of the campaign.
    let mut telemetry = MetricsSnapshot::default();
    for (name, scenario) in scenarios {
        if only.is_some_and(|o| o != name) {
            continue;
        }
        telemetry = telemetry.merged(&scenario(&mut violations, &mut art, &mut service_totals));
    }

    art.add_summary("service", service_totals.to_json());
    art.add_summary("violations", Json::from(violations.len()));
    art.telemetry = Some(telemetry);
    if only.is_none() {
        artifact::emit(&art);
    } else {
        println!(
            "(--only run: skipping results/resilience.json so the pinned campaign stays intact)"
        );
    }

    if violations.is_empty() {
        println!(
            "\nOK: every service job was verified-sorted, cleanly shed with a typed error, \
             or resumed without re-executing verified passes."
        );
        true
    } else {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        false
    }
}

/// Fault storm: three consecutive sticky-poisoned jobs trip the breaker
/// (threshold 3) and drain the retry budget; the next clean job is
/// quarantined onto E=17,u=256, and the one after probes the real config
/// and closes the breaker. Budget tokens must never underflow and
/// breaker opens are pinned at exactly one.
fn scenario_fault_storm(
    violations: &mut Vec<String>,
    art: &mut RunArtifact,
    totals: &mut ServiceCounters,
) -> MetricsSnapshot {
    let params = SortParams::new(5, 32);
    let n = 4 * params.tile() + 17;
    let mut svc = SortService::with_resilience(
        small_rcfg(),
        ResilienceConfig {
            // Cooldown = one launch overhead: the job right after the
            // trip is still inside the window (the clock only moves when
            // jobs run), the one after it probes.
            breaker: BreakerConfig { enabled: true, failure_threshold: 3, cooldown_s: 3e-6 },
            retry_budget: RetryBudgetConfig::bounded(6.0),
            ..ResilienceConfig::default()
        },
    );
    svc.enable_telemetry();
    let mut inputs = Vec::new();
    for i in 0..3u64 {
        let seed = BASE_SEED ^ 0x5101 ^ (i << 8);
        let input = InputSpec::UniformRandom { seed }.generate(n);
        svc.submit_with_faults(
            &format!("storm/poisoned-{i}"),
            input.clone(),
            SortAlgorithm::CfMerge,
            sticky_poison(),
            None,
        );
        inputs.push(input);
    }
    for (i, label) in ["storm/quarantined", "storm/probe"].iter().enumerate() {
        let seed = BASE_SEED ^ 0x5201 ^ ((i as u64) << 8);
        let input = InputSpec::UniformRandom { seed }.generate(n);
        svc.submit(label, input.clone(), SortAlgorithm::CfMerge);
        inputs.push(input);
    }
    let outcomes = svc.drain();
    for (input, o) in inputs.iter().zip(&outcomes) {
        match &o.result {
            Ok(run) => {
                if let Err(f) = verify_sorted_permutation(input, &run.run.output) {
                    violations.push(format!("{}: UNDETECTED CORRUPTION: {f}", o.label));
                }
                art.runs.push(RunRecord::compact_from_robust_run(&o.label, run));
            }
            Err(e) => violations.push(format!("{}: storm job must be rescued, got: {e}", o.label)),
        }
    }
    let sc = *svc.counters();
    if sc.breaker_opens != 1 {
        violations.push(format!("storm: breaker flapped: {} opens (pinned: 1)", sc.breaker_opens));
    }
    if sc.quarantined != 1 || sc.probes != 1 || sc.breaker_closes != 1 {
        violations.push(format!(
            "storm: expected 1 quarantine / 1 probe / 1 close, got {}/{}/{}",
            sc.quarantined, sc.probes, sc.breaker_closes
        ));
    }
    match svc.budget_tokens() {
        Some(t) if t < 0.0 => violations.push(format!("storm: retry budget underflow: {t}")),
        Some(_) => {}
        None => violations.push("storm: budget should be bounded".into()),
    }
    if sc.budget_denied == 0 {
        violations.push("storm: the drained budget never denied a grant".into());
    }
    println!(
        "fault-storm: {} jobs, breaker opens={} closes={}, quarantined={}, probes={}, \
         budget tokens left={:?}, denials={}",
        outcomes.len(),
        sc.breaker_opens,
        sc.breaker_closes,
        sc.quarantined,
        sc.probes,
        svc.budget_tokens(),
        sc.budget_denied
    );
    art.add_summary("fault_storm", svc.counters().to_json());
    totals.merge(&sc);
    let snap = svc.telemetry_snapshot().expect("telemetry enabled").with_prefix("storm_");
    add_latency_summary(art, "storm", &snap);
    snap
}

/// Queue overflow under deadline pressure: a bounded queue of 8 under
/// the deadline-aware policy takes 24 mixed submissions. Every job must
/// end verified-sorted, typed-shed (never executed), or typed-rejected.
fn scenario_queue_overflow(
    violations: &mut Vec<String>,
    art: &mut RunArtifact,
    totals: &mut ServiceCounters,
) -> MetricsSnapshot {
    let params = SortParams::new(5, 32);
    let n = 2 * params.tile();
    let mut svc = SortService::with_resilience(
        small_rcfg(),
        ResilienceConfig {
            admission: AdmissionConfig::bounded(8, ShedPolicy::DeadlineAware),
            ..ResilienceConfig::default()
        },
    );
    svc.enable_telemetry();
    let mut inputs = Vec::new();
    for i in 0..24u64 {
        let seed = BASE_SEED ^ 0x0F10 ^ (i << 8);
        let input = InputSpec::UniformRandom { seed }.generate(n);
        // Every third job carries an impossible deadline — the shed
        // policy's designated victims once the queue fills.
        let deadline = if i % 3 == 2 { Some(1e-12) } else { None };
        svc.submit_with_faults(
            &format!("overflow/job-{i}"),
            input.clone(),
            SortAlgorithm::CfMerge,
            FaultPlan::none(),
            deadline,
        );
        inputs.push(input);
    }
    let outcomes = svc.drain();
    let (mut ran, mut shed, mut rejected) = (0u64, 0u64, 0u64);
    for (input, o) in inputs.iter().zip(&outcomes) {
        match &o.result {
            Ok(run) => {
                ran += 1;
                if let Err(f) = verify_sorted_permutation(input, &run.run.output) {
                    violations.push(format!("{}: UNDETECTED CORRUPTION: {f}", o.label));
                }
            }
            Err(SortError::Shed { .. }) => shed += 1,
            Err(SortError::Overloaded { .. }) => rejected += 1,
            Err(e) => violations.push(format!("{}: untyped overflow outcome: {e}", o.label)),
        }
    }
    let sc = *svc.counters();
    // Shed jobs never execute — not even partially.
    if sc.executed != ran {
        violations.push(format!("overflow: executed {} jobs but {} ran", sc.executed, ran));
    }
    if ran + shed + rejected != outcomes.len() as u64 {
        violations.push("overflow: outcomes don't partition into ran/shed/rejected".into());
    }
    if shed == 0 || rejected == 0 {
        violations.push(format!(
            "overflow: deadline pressure should both shed ({shed}) and reject ({rejected})"
        ));
    }
    println!(
        "queue-overflow: {} submissions → {} ran, {} shed (deadline-aware), {} rejected",
        outcomes.len(),
        ran,
        shed,
        rejected
    );
    art.add_summary("queue_overflow", svc.counters().to_json());
    totals.merge(&sc);
    let snap = svc.telemetry_snapshot().expect("telemetry enabled").with_prefix("overflow_");
    add_latency_summary(art, "overflow", &snap);
    snap
}

/// Kill-and-resume: a checkpointing job is killed after its first merge
/// pass; the resume must produce byte-identical output at the identical
/// modeled cost without re-executing the verified passes.
fn scenario_kill_and_resume(
    violations: &mut Vec<String>,
    art: &mut RunArtifact,
    totals: &mut ServiceCounters,
) -> MetricsSnapshot {
    let params = SortParams::new(5, 32);
    let n = 8 * params.tile() + 3;
    let input = InputSpec::UniformRandom { seed: BASE_SEED ^ 0xCE50 }.generate(n);

    let mut reference = SortService::new(small_rcfg());
    reference.submit("resume/uninterrupted", input.clone(), SortAlgorithm::CfMerge);
    let whole = match reference.drain().remove(0).result {
        Ok(run) => run,
        Err(e) => {
            violations.push(format!("resume: clean reference run failed: {e}"));
            return MetricsSnapshot::default();
        }
    };

    let mut svc = SortService::new(small_rcfg());
    svc.enable_telemetry();
    svc.submit_with_policy(
        "resume/killed",
        input.clone(),
        SortAlgorithm::CfMerge,
        FaultPlan::none(),
        None,
        CheckpointPolicy::kill_after(1),
    );
    let killed = svc.drain().remove(0);
    let cp = match killed.result {
        Err(SortError::Interrupted { after_pass: 1, checkpoint }) => *checkpoint,
        other => {
            violations.push(format!("resume: expected Interrupted after pass 1, got {other:?}"));
            return MetricsSnapshot::default();
        }
    };
    svc.submit_resume("resume/resumed", cp, FaultPlan::none(), None);
    let resumed = match svc.drain().remove(0).result {
        Ok(run) => run,
        Err(e) => {
            violations.push(format!("resume: resumed job failed: {e}"));
            return MetricsSnapshot::default();
        }
    };
    if resumed.run.output != whole.run.output {
        violations.push("resume: output differs from the uninterrupted run".into());
    }
    if resumed.run.simulated_seconds != whole.run.simulated_seconds {
        violations.push(format!(
            "resume: modeled seconds diverged: {} vs {}",
            resumed.run.simulated_seconds, whole.run.simulated_seconds
        ));
    }
    // The resumed half must not contain the already-verified launches.
    if resumed.run.kernels.iter().any(|k| k.name == "blocksort" || k.name == "merge-pass-0") {
        violations.push("resume: re-executed a pass the checkpoint had already verified".into());
    }
    let sc = *svc.counters();
    println!(
        "kill-and-resume: byte-identical output, {} modeled s, resumed launches: {}",
        resumed.run.simulated_seconds,
        resumed.run.kernels.len()
    );
    art.runs.push(RunRecord::compact_from_robust_run("resume/resumed", &resumed));
    art.add_summary("kill_and_resume", svc.counters().to_json());
    totals.merge(&sc);
    let snap = svc.telemetry_snapshot().expect("telemetry enabled").with_prefix("resume_");
    add_latency_summary(art, "resume", &snap);
    snap
}

/// Straggler storm: every job has one block of the block sort delayed by
/// a transient half-million-cycle spike. With hedging on, each straggler
/// gets a priced duplicate that wins (the spike does not re-fire), so the
/// hedged service finishes strictly faster than the unhedged one.
fn scenario_straggler_storm(
    violations: &mut Vec<String>,
    art: &mut RunArtifact,
    totals: &mut ServiceCounters,
) -> MetricsSnapshot {
    let params = SortParams::new(5, 32);
    let n = 8 * params.tile();
    let jobs = 6u64;
    let build = |hedge: HedgeConfig| {
        let mut cfg = small_rcfg();
        cfg.hedge = hedge;
        let mut svc = SortService::new(cfg);
        svc.enable_telemetry();
        let mut inputs = Vec::new();
        for i in 0..jobs {
            let seed = BASE_SEED ^ 0x57A6 ^ (i << 8);
            let input = InputSpec::UniformRandom { seed }.generate(n);
            svc.submit_with_faults(
                &format!("straggler/job-{i}"),
                input.clone(),
                SortAlgorithm::CfMerge,
                straggler_plan((i % 8) as u32, 500_000),
                None,
            );
            inputs.push(input);
        }
        (svc, inputs)
    };

    let (mut hedged_svc, inputs) = build(HedgeConfig::on());
    let hedged = hedged_svc.drain();
    let (mut plain_svc, _) = build(HedgeConfig::default());
    let plain = plain_svc.drain();

    for (input, o) in inputs.iter().zip(&hedged) {
        match &o.result {
            Ok(run) => {
                if let Err(f) = verify_sorted_permutation(input, &run.run.output) {
                    violations.push(format!("{}: UNDETECTED CORRUPTION: {f}", o.label));
                }
                art.runs.push(RunRecord::compact_from_robust_run(&o.label, run));
            }
            Err(e) => violations.push(format!("{}: straggler job failed: {e}", o.label)),
        }
    }
    let counters = aggregate_counters(&hedged);
    if counters.hedges_launched != jobs || counters.hedges_won != jobs {
        violations.push(format!(
            "straggler: expected {jobs} hedges launched and won, got {}/{}",
            counters.hedges_launched, counters.hedges_won
        ));
    }
    if hedged_svc.clock_s() >= plain_svc.clock_s() {
        violations.push(format!(
            "straggler: hedging did not pay: {} s hedged vs {} s unhedged",
            hedged_svc.clock_s(),
            plain_svc.clock_s()
        ));
    }
    // Hedging must not change any output, only the modeled latency.
    for (h, p) in hedged.iter().zip(&plain) {
        if let (Ok(hr), Ok(pr)) = (&h.result, &p.result) {
            if hr.run.output != pr.run.output {
                violations.push(format!("{}: hedged output diverged from unhedged", h.label));
            }
        }
    }
    let sc = *hedged_svc.counters();
    println!(
        "straggler-storm: {} jobs, {} hedges launched, {} won, {:.3e} s hedged vs {:.3e} s \
         unhedged",
        jobs,
        counters.hedges_launched,
        counters.hedges_won,
        hedged_svc.clock_s(),
        plain_svc.clock_s()
    );
    art.add_summary("straggler_storm", hedged_svc.counters().to_json());
    totals.merge(&sc);
    let snap =
        hedged_svc.telemetry_snapshot().expect("telemetry enabled").with_prefix("straggler_");
    add_latency_summary(art, "straggler", &snap);
    snap
}

/// Surface one scenario's modeled latency percentiles in the artifact
/// summaries (the gate pins them; humans read them in `bench_diff`).
fn add_latency_summary(art: &mut RunArtifact, scenario: &str, snap: &MetricsSnapshot) {
    let Some(lat) = snap.histogram(&format!("{scenario}_service_job_latency_seconds")) else {
        return;
    };
    art.add_summary(
        &format!("{scenario}_latency"),
        Json::obj([
            ("count", Json::from(lat.count)),
            ("p50_s", Json::from(lat.p50 as f64 / 1e9)),
            ("p99_s", Json::from(lat.p99 as f64 / 1e9)),
            ("p999_s", Json::from(lat.p999 as f64 / 1e9)),
        ]),
    );
}

/// The campaign device (the artifact wants it; the service owns the
/// config, so reconstruct the default).
fn device() -> cfmerge_gpu_sim::device::Device {
    cfmerge_gpu_sim::device::Device::rtx2080ti()
}

// ---------------------------------------------------------------------------
// Cluster suite (the `cluster-chaos` CI job)
// ---------------------------------------------------------------------------

/// The name of the non-matrix parity scenario.
const PARITY_NAME: &str = "n1-parity";

/// Device fault axis of the scenario matrix.
#[derive(Clone, Copy)]
enum FaultMode {
    /// No device faults.
    None,
    /// Permanently crash the device running the longest-latency job of
    /// the fault-free pre-pass, halfway through that job.
    Crash,
    /// Same crash, but the device restarts after a cooldown of one
    /// fault-free makespan.
    CrashRestart,
    /// Device 0 runs the whole campaign under a latency multiplier.
    Degrade { multiplier: f64 },
}

impl FaultMode {
    fn label(&self) -> &'static str {
        match self {
            FaultMode::None => "none",
            FaultMode::Crash => "crash",
            FaultMode::CrashRestart => "crash-restart",
            FaultMode::Degrade { .. } => "degrade",
        }
    }
}

/// One pinned cell of the traffic × fault × policy matrix.
struct ClusterScenario {
    name: &'static str,
    devices: usize,
    shape: TrafficShape,
    jobs: usize,
    tenants: &'static [&'static str],
    fault: FaultMode,
    admission: AdmissionConfig,
    migration_enabled: bool,
    interactive_deadline_s: Option<f64>,
    expect_migrations: bool,
    expect_device_lost: bool,
    expect_shed: bool,
}

impl ClusterScenario {
    fn policy_label(&self) -> String {
        let adm = match self.admission.capacity {
            Some(cap) => format!("bounded({cap},{})", self.admission.policy.label()),
            None => "unbounded".to_string(),
        };
        let mig = if self.migration_enabled { "migrate" } else { "no-migrate" };
        format!("{adm}+{mig}")
    }
}

/// The pinned scenario matrix. Names are stable CLI/report identifiers —
/// the golden artifact and CI gate key off them, so add cells rather
/// than renaming.
fn cluster_matrix() -> Vec<ClusterScenario> {
    let unbounded = AdmissionConfig::default();
    let base = |name, fault, expect_migrations, expect_device_lost| ClusterScenario {
        name,
        devices: 2,
        shape: TrafficShape::Steady { rate_hz: 2e5 },
        jobs: 14,
        tenants: &["tenant-a", "tenant-b"],
        fault,
        admission: unbounded,
        migration_enabled: true,
        interactive_deadline_s: None,
        expect_migrations,
        expect_device_lost,
        expect_shed: false,
    };
    vec![
        base("steady-baseline", FaultMode::None, false, false),
        base("steady-crash-migrate", FaultMode::Crash, true, false),
        ClusterScenario {
            migration_enabled: false,
            expect_migrations: false,
            expect_device_lost: true,
            ..base("steady-crash-lost", FaultMode::Crash, false, true)
        },
        base("steady-restart-migrate", FaultMode::CrashRestart, true, false),
        base("steady-degrade", FaultMode::Degrade { multiplier: 4.0 }, false, false),
        ClusterScenario {
            shape: TrafficShape::Diurnal { base_hz: 1e5, peak_hz: 4e5, period_s: 1e-4 },
            jobs: 20,
            tenants: &["tenant-a", "tenant-b", "tenant-c"],
            ..base("diurnal-fair", FaultMode::None, false, false)
        },
        ClusterScenario {
            shape: TrafficShape::Diurnal { base_hz: 1e5, peak_hz: 4e5, period_s: 1e-4 },
            jobs: 16,
            tenants: &["tenant-a", "tenant-b", "tenant-c"],
            ..base("diurnal-crash-migrate", FaultMode::Crash, true, false)
        },
        ClusterScenario {
            devices: 1,
            shape: TrafficShape::Bursty { base_hz: 1e5, burst_every_s: 5e-5, burst_size: 6 },
            jobs: 18,
            admission: AdmissionConfig::bounded(3, ShedPolicy::RejectLargest),
            expect_shed: true,
            ..base("bursty-shed-largest", FaultMode::None, false, false)
        },
        ClusterScenario {
            shape: TrafficShape::Bursty { base_hz: 1e5, burst_every_s: 5e-5, burst_size: 5 },
            jobs: 16,
            ..base("bursty-restart-migrate", FaultMode::CrashRestart, true, false)
        },
        ClusterScenario {
            devices: 1,
            shape: TrafficShape::Bursty { base_hz: 1e5, burst_every_s: 5e-5, burst_size: 6 },
            jobs: 18,
            admission: AdmissionConfig::bounded(4, ShedPolicy::DeadlineAware),
            interactive_deadline_s: Some(1e-9),
            expect_shed: true,
            ..base("bursty-degrade-deadline", FaultMode::Degrade { multiplier: 8.0 }, false, false)
        },
        ClusterScenario {
            devices: 1,
            shape: TrafficShape::WorstCaseFlood { rate_hz: 4e5 },
            jobs: 16,
            admission: AdmissionConfig::bounded(2, ShedPolicy::RejectNewest),
            expect_shed: true,
            ..base("flood-shed-newest", FaultMode::None, false, false)
        },
        ClusterScenario {
            shape: TrafficShape::WorstCaseFlood { rate_hz: 2e5 },
            jobs: 10,
            ..base("flood-crash-migrate", FaultMode::Crash, true, false)
        },
    ]
}

/// Build the scenario's cluster and the aligned input copies (outcome
/// `i` is submission `i`, so the oracle can re-check every success).
fn build_cluster(
    s: &ClusterScenario,
    idx: usize,
    faults: DeviceFaultPlan,
) -> (ClusterService, Vec<Vec<u32>>) {
    let mut cfg = ClusterConfig::homogeneous(s.devices, small_rcfg());
    cfg.resilience.admission = s.admission;
    cfg.migration =
        if s.migration_enabled { MigrationConfig::default() } else { MigrationConfig::disabled() };
    cfg.faults = faults;
    let mut cluster = ClusterService::new(cfg);
    cluster.enable_telemetry();
    let gen = LoadGenConfig {
        shape: s.shape,
        jobs: s.jobs,
        tenants: s.tenants.iter().map(|t| (*t).to_string()).collect(),
        seed: BASE_SEED ^ ((idx as u64 + 1) << 16),
        interactive_deadline_s: s.interactive_deadline_s,
        ..LoadGenConfig::steady(0, 0, 1e5)
    };
    let reqs = gen.generate();
    let inputs = reqs.iter().map(|r| r.input.clone()).collect();
    for req in reqs {
        cluster.submit_request(req);
    }
    (cluster, inputs)
}

/// Concretize the scenario's fault axis. Crash modes run a fault-free
/// pre-pass and aim the crash at the midpoint of the last-completing
/// job, so the fault is guaranteed to interrupt in-flight work — the
/// whole point of the cell — while staying fully deterministic.
fn derive_faults(s: &ClusterScenario, idx: usize) -> DeviceFaultPlan {
    match s.fault {
        FaultMode::None => DeviceFaultPlan::none(),
        FaultMode::Degrade { multiplier } => DeviceFaultPlan::from_events(vec![DeviceFaultEvent {
            at_s: 0.0,
            device: 0,
            kind: DeviceFaultKind::Degrade { multiplier, duration_s: 10.0 },
        }]),
        FaultMode::Crash | FaultMode::CrashRestart => {
            let (mut pre, _) = build_cluster(s, idx, DeviceFaultPlan::none());
            let report = pre.run();
            let victim = report
                .outcomes
                .iter()
                .filter(|o| o.result.is_ok() && o.device.is_some())
                .max_by(|a, b| a.completed_s.total_cmp(&b.completed_s))
                .expect("fault-free pre-pass must verify at least one job");
            let exec_s = victim.result.as_ref().expect("filtered Ok").run.simulated_seconds;
            let kind = match s.fault {
                FaultMode::CrashRestart => {
                    DeviceFaultKind::CrashWithRestart { cooldown_s: report.clock_s.max(exec_s) }
                }
                _ => DeviceFaultKind::Crash,
            };
            DeviceFaultPlan::from_events(vec![DeviceFaultEvent {
                at_s: victim.completed_s - 0.5 * exec_s,
                device: victim.device.expect("filtered Some"),
                kind,
            }])
        }
    }
}

/// Scenario invariants: every success is the exact sorted permutation,
/// every failure is a typed error from the classes the cell provokes,
/// and the cell's expected counters actually moved.
fn check_cluster_scenario(
    s: &ClusterScenario,
    inputs: &[Vec<u32>],
    report: &ClusterReport,
    violations: &mut Vec<String>,
) {
    let mut verified = 0u64;
    for (input, o) in inputs.iter().zip(&report.outcomes) {
        match &o.result {
            Ok(run) => {
                verified += 1;
                if let Err(f) = verify_sorted_permutation(input, &run.run.output) {
                    violations.push(format!("{}/{}: UNDETECTED CORRUPTION: {f}", s.name, o.label));
                }
            }
            Err(
                SortError::Shed { .. }
                | SortError::Overloaded { .. }
                | SortError::DeadlineExceeded { .. }
                | SortError::InvalidDeadline { .. },
            ) => {}
            Err(e @ (SortError::DeviceLost { .. } | SortError::MigrationFailed { .. })) => {
                if matches!(s.fault, FaultMode::None | FaultMode::Degrade { .. }) {
                    violations.push(format!(
                        "{}/{}: device loss without a device fault: {e}",
                        s.name, o.label
                    ));
                }
            }
            Err(e) => violations.push(format!("{}/{}: untyped outcome: {e}", s.name, o.label)),
        }
    }
    if verified == 0 {
        violations.push(format!("{}: no job verified", s.name));
    }
    let c = &report.counters;
    if s.expect_migrations {
        if c.migrations == 0 {
            violations.push(format!("{}: expected checkpoint migrations, saw none", s.name));
        }
        // With failover on and a surviving compatible device, a crash
        // must never cost a job: interrupted work completes elsewhere.
        if c.device_lost + c.migrations_failed > 0 {
            violations.push(format!(
                "{}: migration enabled but {} jobs lost / {} migrations failed",
                s.name, c.device_lost, c.migrations_failed
            ));
        }
    }
    if s.expect_device_lost && c.device_lost == 0 {
        violations.push(format!("{}: expected DeviceLost outcomes, saw none", s.name));
    }
    if s.expect_shed && c.shed_overload + c.shed_largest + c.shed_deadline == 0 {
        violations.push(format!("{}: expected load shedding, saw none", s.name));
    }
}

/// Parity cell: a fault-free single-device cluster must be bit-identical
/// to [`SortService`] — outcomes, modeled clock, and counters.
fn scenario_n1_parity(violations: &mut Vec<String>) -> ClusterReport {
    let params = SortParams::new(5, 32);
    let mut svc = SortService::new(small_rcfg());
    let mut cluster =
        ClusterService::new(ClusterConfig::single(small_rcfg(), ResilienceConfig::default()));
    for (i, tiles) in [2usize, 4, 3, 8, 2, 5].iter().enumerate() {
        let n = tiles * params.tile() + i;
        let seed = BASE_SEED ^ 0xA117 ^ ((i as u64) << 8);
        let input = InputSpec::UniformRandom { seed }.generate(n);
        let algo = if i % 3 == 2 { SortAlgorithm::ThrustMergesort } else { SortAlgorithm::CfMerge };
        let label = format!("parity/job-{i}");
        svc.submit(&label, input.clone(), algo);
        cluster.submit(&label, input, algo);
    }
    let svc_out = svc.drain();
    let report = cluster.run();
    for (c, s) in report.outcomes.iter().zip(&svc_out) {
        match (&c.result, &s.result) {
            (Ok(cr), Ok(sr)) => {
                if cr.run.output != sr.run.output
                    || cr.run.simulated_seconds != sr.run.simulated_seconds
                {
                    violations
                        .push(format!("{PARITY_NAME}/{}: run diverged from SortService", c.label));
                }
            }
            (Err(ce), Err(se)) if ce.to_string() == se.to_string() => {}
            _ => violations.push(format!("{PARITY_NAME}/{}: outcome class diverged", c.label)),
        }
    }
    if report.clock_s != svc.clock_s() {
        violations.push(format!(
            "{PARITY_NAME}: modeled clock diverged: cluster {} vs service {}",
            report.clock_s,
            svc.clock_s()
        ));
    }
    if report.counters != *svc.counters() {
        violations.push(format!(
            "{PARITY_NAME}: counters diverged:\n  cluster: {:?}\n  service: {:?}",
            report.counters,
            svc.counters()
        ));
    }
    report
}

fn run_cluster(only: Option<&str>) -> bool {
    let matrix = cluster_matrix();
    if let Some(name) = only {
        if name != PARITY_NAME && !matrix.iter().any(|s| s.name == name) {
            eprintln!("unknown cluster scenario `{name}`; `chaos cluster --list` names them");
            return false;
        }
    }
    let mut violations: Vec<String> = Vec::new();
    let mut art = RunArtifact::new("cluster", device());
    let mut totals = ServiceCounters::default();
    let mut telemetry = MetricsSnapshot::default();
    let mut rows = Vec::new();
    let mut ran_any = false;

    for (idx, s) in matrix.iter().enumerate() {
        if only.is_some_and(|o| o != s.name) {
            continue;
        }
        ran_any = true;
        let faults = derive_faults(s, idx);
        let (mut cluster, inputs) = build_cluster(s, idx, faults);
        let report = cluster.run();
        check_cluster_scenario(s, &inputs, &report, &mut violations);
        add_cluster_summaries(&mut art, s.name, &report);
        totals.merge(&report.counters);
        if let Some(snap) = &report.telemetry {
            telemetry =
                telemetry.merged(&snap.with_prefix(&format!("{}_", s.name.replace('-', "_"))));
        }
        let all = report.tenant_slos.last().expect("`all` row is always appended");
        rows.push(vec![
            s.name.to_string(),
            format!("{}", s.devices),
            format!("{}", report.outcomes.len()),
            format!("{}", all.verified),
            format!("{}", report.counters.migrations),
            format!("{}", report.counters.device_lost),
            format!(
                "{}",
                report.counters.shed_overload
                    + report.counters.shed_largest
                    + report.counters.shed_deadline
            ),
            format!("{:.3e}", all.p99_s),
            format!("{:.3e}", report.clock_s),
        ]);
    }
    if only.is_none() || only == Some(PARITY_NAME) {
        ran_any = true;
        let report = scenario_n1_parity(&mut violations);
        add_cluster_summaries(&mut art, PARITY_NAME, &report);
        totals.merge(&report.counters);
        let all = report.tenant_slos.last().expect("`all` row is always appended");
        rows.push(vec![
            PARITY_NAME.to_string(),
            "1".into(),
            format!("{}", report.outcomes.len()),
            format!("{}", all.verified),
            "0".into(),
            "0".into(),
            "0".into(),
            format!("{:.3e}", all.p99_s),
            format!("{:.3e}", report.clock_s),
        ]);
    }
    if !ran_any {
        eprintln!("no cluster scenario matched");
        return false;
    }

    println!(
        "\ncluster chaos matrix:\n{}",
        format_table(
            &["scenario", "dev", "jobs", "verified", "migr", "lost", "shed", "p99 s", "clock s"],
            &rows
        )
    );

    if only.is_none() {
        art.add_summary("scenarios", Json::from(rows.len()));
        art.add_summary("service", totals.to_json());
        art.add_summary("violations", Json::from(violations.len()));
        art.telemetry = Some(telemetry);
        artifact::emit(&art);
    } else {
        println!("(--only run: skipping results/cluster.json so the pinned matrix stays intact)");
    }

    if violations.is_empty() {
        println!(
            "\nOK: every cluster job was verified-sorted, typed-shed, or typed device-lost; \
             every crash with failover enabled completed via checkpoint migration."
        );
        true
    } else {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        false
    }
}

/// Per-scenario artifact summaries: the `all` SLO row plus the makespan
/// and failover price — the numbers the perf gate pins.
fn add_cluster_summaries(art: &mut RunArtifact, name: &str, report: &ClusterReport) {
    let all = report.tenant_slos.last().expect("`all` row is always appended");
    art.add_summary(
        &format!("{}_slo", name.replace('-', "_")),
        Json::obj([
            ("verified", Json::from(all.verified)),
            ("p50_s", Json::from(all.p50_s)),
            ("p99_s", Json::from(all.p99_s)),
            ("p999_s", Json::from(all.p999_s)),
            ("clock_s", Json::from(report.clock_s)),
            ("lost_work_s", Json::from(report.lost_work_s)),
            ("migration_s", Json::from(report.migration_s)),
        ]),
    );
}
