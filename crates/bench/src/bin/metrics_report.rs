//! Emit the unified telemetry report: a schema-v2 artifact with an
//! embedded metrics snapshot (`metrics_report.json`), the same snapshot
//! in Prometheus text exposition format (`metrics_report.prom`), and
//! folded stacks for flamegraph tooling (`metrics_report.folded`).
//!
//! Everything is modeled time, so all three files are deterministic and
//! diffable; the golden test in `crates/bench/tests/` pins the JSON byte
//! for byte, and CI's perf gate diffs the artifact against the pinned
//! copy in `results/`.
//!
//! Render the flamegraph with any folded-stacks tool, e.g.:
//!
//! ```text
//! inferno-flamegraph results/metrics_report.folded > flame.svg
//! ```

use cfmerge_bench::artifact::{emit, RunArtifact};
use cfmerge_bench::telemetry_report;

fn main() {
    let report = telemetry_report::build();

    let dir = RunArtifact::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
    }
    for (name, text) in
        [("metrics_report.prom", &report.prometheus), ("metrics_report.folded", &report.folded)]
    {
        let path = dir.join(name);
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("telemetry: {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    let snap = report.artifact.telemetry.as_ref().expect("report embeds telemetry");
    println!("=== telemetry report ===\n");
    println!("{} metrics recorded; highlights:\n", snap.metrics.len());
    for name in [
        "sim_thrust_phase_merge_bank_conflicts",
        "sim_cf_merge_phase_merge_bank_conflicts",
        "sim_cf_merge_phase_gather_bank_conflicts",
        "service_jobs_verified_total",
        "service_retries_total",
        "service_fallbacks_total",
        "service_breaker_opens_total",
    ] {
        if let Some(v) = snap.get(name) {
            println!("  {name}: {v:?}");
        }
    }
    if let Some(lat) = snap.histogram("service_job_latency_seconds") {
        println!(
            "  service_job_latency_seconds: count {}, p50 {:.3e}s, p99 {:.3e}s, p999 {:.3e}s",
            lat.count,
            lat.p50 as f64 / 1e9,
            lat.p99 as f64 / 1e9,
            lat.p999 as f64 / 1e9
        );
    }
    emit(&report.artifact);
}
