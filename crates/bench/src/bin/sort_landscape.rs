//! The sorting landscape around CF-Merge: throughput of the two
//! merge-path mergesorts, bitonic sort, and LSD radix sort on the same
//! simulated device — the context for the paper's "fastest
//! comparison-based" framing.
//!
//! Expected shape: the mergesorts beat bitonic (whose `log² n` work
//! grows) with a widening gap; CF-Merge ≈ Thrust on random inputs; the
//! *direct-scatter* radix sort trails them all — its per-pass scattered
//! stores blow up the sector count, which is exactly why production
//! radix sorts (Merrill & Grimshaw, cited [32]) bin keys through shared
//! memory before writing. The simulator makes that design pressure
//! visible.

use cfmerge_algos::bitonic::bitonic_sort;
use cfmerge_algos::radix::{radix_sort, radix_sort_with, ScatterKind};
use cfmerge_bench::artifact::{emit, RunArtifact, RunRecord};
use cfmerge_core::inputs::InputSpec;
use cfmerge_core::metrics::format_table;
use cfmerge_core::params::SortParams;
use cfmerge_core::sort::{simulate_sort, SortAlgorithm, SortConfig};
use cfmerge_gpu_sim::device::Device;
use cfmerge_gpu_sim::timing::TimingModel;
use cfmerge_json::Json;

fn main() {
    let device = Device::rtx2080ti();
    let timing = TimingModel::rtx2080ti_like();
    let cfg = SortConfig::with_params(SortParams::e15_u512());
    let mut art = RunArtifact::new("sort_landscape", device.clone());
    let mut landscape = Vec::new();
    let mut rows = Vec::new();
    for i in [12u32, 14, 16, 18, 20] {
        let n = 1usize << i;
        let input = InputSpec::UniformRandom { seed: u64::from(i) }.generate(n);
        let thrust = simulate_sort(&input, SortAlgorithm::ThrustMergesort, &cfg);
        let cf = simulate_sort(&input, SortAlgorithm::CfMerge, &cfg);
        let bit = bitonic_sort(&input, 256, &device, &timing, true);
        let rad = radix_sort(&input, 256, &device, &timing, true);
        let radb = radix_sort_with(&input, 256, &device, &timing, true, ScatterKind::Binned);
        let mut sorted = input.clone();
        sorted.sort_unstable();
        assert_eq!(thrust.output, sorted);
        assert_eq!(cf.output, sorted);
        assert_eq!(bit.output, sorted);
        assert_eq!(rad.output, sorted);
        assert_eq!(radb.output, sorted);
        art.runs.push(RunRecord::from_run(
            format!("thrust/random/n=2^{i}"),
            SortAlgorithm::ThrustMergesort,
            &thrust,
        ));
        art.runs.push(RunRecord::from_run(
            format!("cf-merge/random/n=2^{i}"),
            SortAlgorithm::CfMerge,
            &cf,
        ));
        landscape.push(Json::obj([
            ("n", Json::from(n)),
            ("thrust", Json::from(thrust.throughput())),
            ("cf_merge", Json::from(cf.throughput())),
            ("bitonic", Json::from(bit.throughput())),
            ("radix_direct", Json::from(rad.throughput())),
            ("radix_binned", Json::from(radb.throughput())),
        ]));
        rows.push(vec![
            format!("2^{i}"),
            format!("{:.0}", thrust.throughput()),
            format!("{:.0}", cf.throughput()),
            format!("{:.0}", bit.throughput()),
            format!("{:.0}", rad.throughput()),
            format!("{:.0}", radb.throughput()),
            format!(
                "{:.1}x/{:.1}x",
                rad.profile.total().global_st_sectors as f64
                    / (rad.n as f64 / 8.0 * f64::from(32 / cfmerge_algos::radix::RADIX_BITS)),
                radb.profile.total().global_st_sectors as f64
                    / (radb.n as f64 / 8.0 * f64::from(32 / cfmerge_algos::radix::RADIX_BITS))
            ),
        ]);
    }
    println!("=== Sorting landscape (uniform random u32, elements/µs) ===\n");
    println!(
        "{}",
        format_table(
            &[
                "n",
                "thrust merge",
                "cf-merge",
                "bitonic",
                "radix direct",
                "radix binned",
                "scatter blowup (direct/binned)"
            ],
            &rows
        )
    );
    println!(
        "bitonic pays the Θ(log²n) factor plus 2-way shared conflicts at small\n\
         strides; direct-scatter radix pays the sector blow-up in the last column,\n\
         which Merrill-style shared-memory binning removes — the binned variant is\n\
         the non-comparison sort the paper's 'comparison-based' qualifier concedes to."
    );
    art.add_summary("throughput", Json::Arr(landscape));
    emit(&art);
}
