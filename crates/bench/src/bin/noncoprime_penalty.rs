//! The coprime-heuristic ablation: Thrust picks `E` coprime with `w`
//! because non-coprime `E` makes its strided phases and merges collide
//! structurally ("the performance of Thrust is much worse", §5). CF-Merge
//! is insensitive. We sweep `E ∈ {14, …, 18}` at `u = 256` on random and
//! worst-case inputs.

use cfmerge_bench::artifact::{emit, RunArtifact, RunRecord};
use cfmerge_core::inputs::InputSpec;
use cfmerge_core::metrics::format_table;
use cfmerge_core::params::SortParams;
use cfmerge_core::sort::{simulate_sort, SortAlgorithm, SortConfig};
use cfmerge_gpu_sim::device::Device;
use cfmerge_numtheory::gcd;

fn main() {
    let mut art = RunArtifact::new("noncoprime_penalty", Device::rtx2080ti());
    let mut rows = Vec::new();
    for e in [14usize, 15, 16, 17, 18] {
        let params = SortParams::new(e, 256);
        let cfg = SortConfig::with_params(params);
        let n = 32 * params.tile();
        let d = gcd(32, e as u64);
        for (spec, input_label) in [
            (InputSpec::UniformRandom { seed: 7 }, "random"),
            (InputSpec::WorstCase { w: 32, e, u: 256 }, "worst"),
        ] {
            let input = spec.generate(n);
            let thrust = simulate_sort(&input, SortAlgorithm::ThrustMergesort, &cfg);
            let cf = simulate_sort(&input, SortAlgorithm::CfMerge, &cfg);
            art.runs.push(RunRecord::from_run(
                format!("thrust/{input_label}/E={e},u=256"),
                SortAlgorithm::ThrustMergesort,
                &thrust,
            ));
            art.runs.push(RunRecord::from_run(
                format!("cf-merge/{input_label}/E={e},u=256"),
                SortAlgorithm::CfMerge,
                &cf,
            ));
            rows.push(vec![
                e.to_string(),
                d.to_string(),
                input_label.to_string(),
                format!("{:.0}", thrust.throughput()),
                format!("{:.0}", cf.throughput()),
                format!("{:.2}", cf.throughput() / thrust.throughput()),
                thrust.profile.total_bank_conflicts().to_string(),
                cf.profile.total_bank_conflicts().to_string(),
            ]);
        }
    }
    println!("=== Non-coprime E penalty (u = 256, n = 32 tiles) ===\n");
    println!(
        "{}",
        format_table(
            &[
                "E",
                "d",
                "input",
                "thrust e/µs",
                "cf e/µs",
                "cf/thrust",
                "thrust conflicts",
                "cf conflicts"
            ],
            &rows
        )
    );
    println!(
        "(CF-Merge's residual conflicts at d > 1 come from the block sort's\n\
         reversal-only small pairs and the rank-layout stores — its gather and the\n\
         global merge passes stay conflict-free; see DESIGN.md.)"
    );
    emit(&art);
}
