//! Theorem 8 validation table: predicted vs lock-step-measured worst-case
//! bank conflicts per warp, over a grid of `(w, E)` covering coprime and
//! non-coprime cases, `q = 1` and `q > 1`, including the paper's figure
//! parameters and the headline `w = 32` column.

use cfmerge_bench::artifact::{emit, RunArtifact};
use cfmerge_core::metrics::format_table;
use cfmerge_core::worst_case::{lockstep_baseline_conflicts, predicted_warp_conflicts};
use cfmerge_gpu_sim::device::Device;
use cfmerge_json::Json;
use cfmerge_numtheory::gcd;

fn main() {
    let mut art = RunArtifact::new("theorem8", Device::rtx2080ti());
    let mut table = Vec::new();
    let mut rows = Vec::new();
    let mut cases: Vec<(usize, usize)> = Vec::new();
    for e in [2usize, 4, 5, 8, 12, 14, 15, 16, 17, 20, 24, 28, 31, 32] {
        cases.push((32, e));
    }
    for &(w, e) in &[(12usize, 5usize), (12, 9), (9, 6), (16, 12), (24, 18), (8, 6)] {
        cases.push((w, e));
    }
    let warps = 4;
    for (w, e) in cases {
        let d = gcd(w as u64, e as u64);
        let predicted = predicted_warp_conflicts(w, e);
        let measured = lockstep_baseline_conflicts(w, e, warps) as f64 / warps as f64;
        table.push(Json::obj([
            ("w", Json::from(w)),
            ("e", Json::from(e)),
            ("d", Json::from(d)),
            ("predicted", Json::from(predicted)),
            ("measured", Json::from(measured)),
        ]));
        rows.push(vec![
            w.to_string(),
            e.to_string(),
            d.to_string(),
            (w / e).to_string(),
            (w % e).to_string(),
            predicted.to_string(),
            format!("{measured:.0}"),
            format!("{:.3}", measured / predicted as f64),
        ]);
    }
    println!("=== Theorem 8: worst-case bank conflicts per warp ===");
    println!(
        "{}",
        format_table(&["w", "E", "d", "q", "r", "predicted", "measured", "ratio"], &rows)
    );
    println!(
        "(predicted counts E per aligned column scan; the lock-step measurement counts\n\
         transactions−1 per round, so ratios slightly below 1 are expected — see\n\
         EXPERIMENTS.md.)"
    );
    art.add_summary("cases", Json::Arr(table));
    emit(&art);
}
