//! Kernel analysis gate: symbolic conflict-freedom certification plus a
//! dynamic sanitizer sweep over the shipping pipelines.
//!
//! Layer 1 (static): runs the prover over the full phase registry
//! ([`cfmerge_core::analysis`]) for the paper's parameter sets and an
//! honest non-coprime case, cross-validating every verdict against the
//! bank cost model. Layer 2 (dynamic): executes both pipelines under the
//! [`Sanitizer`](cfmerge_gpu_sim::Sanitizer) on worst-case and random
//! inputs and requires a clean bill of health.
//!
//! Exits nonzero on any finding, so CI can gate on it.

use cfmerge_bench::artifact::{emit, RunArtifact};
use cfmerge_core::analysis::check_registry;
use cfmerge_core::inputs::InputSpec;
use cfmerge_core::params::SortParams;
use cfmerge_core::sort::{simulate_sort_checked, SortAlgorithm, SortConfig};
use cfmerge_gpu_sim::device::Device;
use cfmerge_json::Json;

fn main() {
    let dev = Device::rtx2080ti();
    let w = dev.warp_width as usize;
    let mut art = RunArtifact::new("kernel_check", dev.clone());
    let mut failures = 0usize;

    // ---- Layer 1: symbolic certification of the kernel registry ----
    println!("=== kernel_check: symbolic conflict-freedom certification ===");
    let mut registry_rows = Vec::new();
    // The paper's two parameter sets, plus E = 16 — the non-coprime
    // regime where the registry must be *honest* (strided phases and the
    // reversal-only gather conflict by exactly gcd(E, w)).
    for (e, u) in [(15usize, 512usize), (17, 256), (16, 256)] {
        for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
            println!("--- {} E={e} u={u} ---", algo.label());
            for report in check_registry(algo, w, e, u) {
                println!("  {}", report.summary());
                if !report.pass() {
                    failures += 1;
                }
                registry_rows.push(Json::obj([
                    ("algo", Json::from(algo.label())),
                    ("e", Json::from(e)),
                    ("u", Json::from(u)),
                    ("kernel", Json::from(report.spec.kernel)),
                    ("phase", Json::from(report.spec.phase.as_str())),
                    ("access", Json::from(report.spec.access)),
                    ("pattern", Json::from(report.spec.pattern.describe())),
                    ("verdict", Json::from(report.verdict.summary())),
                    ("expected", Json::from(report.spec.expected.label())),
                    ("pass", Json::from(report.pass())),
                ]));
            }
        }
    }
    art.add_summary("registry", Json::Arr(registry_rows));

    // ---- Layer 2: dynamic sanitizer sweep over the shipping pipelines ----
    println!("\n=== kernel_check: sanitizer sweep (races, OOB, uninit, divergence) ===");
    let mut sweep_rows = Vec::new();
    for (e, u) in [(15usize, 512usize), (17, 256)] {
        let config = SortConfig::with_params(SortParams::new(e, u));
        let n = 4 * e * u; // two merge passes: every kernel exercised
        for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
            for spec in [
                InputSpec::WorstCase { w, e, u },
                InputSpec::UniformRandom { seed: 0xC0FFEE },
                InputSpec::FewDistinct { seed: 7, distinct: 3 },
            ] {
                let input = spec.generate(n);
                let checked = simulate_sort_checked(&input, algo, &config);
                let mut expect = input.clone();
                expect.sort_unstable();
                let sorted_ok = checked.run.output == expect;
                let clean = checked.is_clean() && sorted_ok;
                println!(
                    "  {:<9} E={e:<3} u={u:<4} {:<22} {}",
                    algo.label(),
                    spec.label(),
                    if clean { "clean" } else { "FINDINGS" },
                );
                if !clean {
                    failures += 1;
                    if !sorted_ok {
                        println!("    output is not sorted correctly");
                    }
                    for f in checked.findings.iter().take(10) {
                        println!("    {f}");
                    }
                }
                sweep_rows.push(Json::obj([
                    ("algo", Json::from(algo.label())),
                    ("e", Json::from(e)),
                    ("u", Json::from(u)),
                    ("input", Json::from(spec.label())),
                    ("n", Json::from(n)),
                    ("findings", Json::from(checked.findings.len() as u64 + checked.dropped)),
                    ("sorted", Json::from(sorted_ok)),
                ]));
            }
        }
    }
    art.add_summary("sanitizer_sweep", Json::Arr(sweep_rows));
    art.add_summary("failures", Json::from(failures as u64));
    emit(&art);

    if failures > 0 {
        eprintln!("kernel_check: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("\nkernel_check: all phases certified or honestly refused; sanitizer clean.");
}
