//! Dump Perfetto / chrome://tracing traces for one Figure-5
//! configuration (`E = 15, u = 512`, worst-case input, one sweep point),
//! for both pipelines, plus the conflict-forensics report.
//!
//! Load the emitted `trace_fig5_*.perfetto.json` files in
//! <https://ui.perfetto.dev> or chrome://tracing: the Thrust timeline
//! shows instant "conflict" markers clustered in the merge phases; the
//! CF-Merge timeline has none there — its only markers sit in
//! blocksort's binary-search steps, which the paper's transformation
//! does not target.

use cfmerge_bench::artifact::{emit, RunArtifact, RunRecord};
use cfmerge_core::inputs::InputSpec;
use cfmerge_core::sort::{simulate_sort_traced, SortAlgorithm, SortConfig};
use cfmerge_json::Json;

fn main() {
    let cfg = SortConfig::paper_e15_u512();
    let n = (1usize << 9) * cfg.params.e; // the first Figure-5 sweep point
    let input = InputSpec::worst_case(cfg.params).generate(n);

    let mut art = RunArtifact::new("trace_fig5", cfg.device.clone());
    let dir = RunArtifact::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
    }

    for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
        let traced = simulate_sort_traced(&input, algo, &cfg);
        assert!(traced.run.output.is_sorted(), "pipeline produced unsorted output");

        let path = dir.join(format!("trace_fig5_{}.perfetto.json", algo.label()));
        match std::fs::write(&path, traced.trace.to_perfetto_string()) {
            Ok(()) => eprintln!("trace: {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        let folded_path = dir.join(format!("trace_fig5_{}.folded", algo.label()));
        match std::fs::write(&folded_path, traced.trace.folded_stacks()) {
            Ok(()) => eprintln!("folded stacks: {}", folded_path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", folded_path.display()),
        }

        println!("=== {} ===", traced.trace.label);
        println!("{}", traced.trace.forensics().report(5));
        println!();

        art.runs.push(RunRecord::from_run(traced.trace.label.clone(), algo, &traced.run));
        art.add_summary(
            algo.label(),
            Json::obj([
                ("trace_file", Json::from(path.display().to_string())),
                ("conflict_rounds", Json::from(traced.trace.conflict_rounds())),
                ("dropped_conflicts", Json::from(traced.trace.dropped_conflicts())),
                ("merge_conflicts", Json::from(traced.run.profile.merge_bank_conflicts())),
            ]),
        );
    }
    emit(&art);
}
