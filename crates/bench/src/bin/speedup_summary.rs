//! The Section 5.1 headline numbers in one table: CF-Merge's speedup on
//! worst-case inputs (average / mean / max over the sweep) per parameter
//! set, CF-vs-Thrust parity on random inputs, and the zero-conflict
//! `nvprof` check.

use cfmerge_bench::artifact::{emit, RunArtifact};
use cfmerge_bench::report::speedup_summary;
use cfmerge_bench::sweep::{default_exponents, full_exponents, full_flag, run_series};
use cfmerge_core::inputs::InputSpec;
use cfmerge_core::metrics::format_table;
use cfmerge_core::params::SortParams;
use cfmerge_core::sort::SortAlgorithm;
use cfmerge_gpu_sim::device::Device;
use cfmerge_json::{Json, ToJson};

fn main() {
    let full = full_flag();
    let mut art = RunArtifact::new("speedup_summary", Device::rtx2080ti());
    let mut rows = Vec::new();
    for params in [SortParams::e15_u512(), SortParams::e17_u256()] {
        let exps = if full { full_exponents(params.u) } else { default_exponents(params.u) };
        eprintln!("running E={}, u={} …", params.e, params.u);
        let worst = InputSpec::worst_case(params);
        let random = InputSpec::UniformRandom { seed: 0x5eed };

        let tw = run_series(params, SortAlgorithm::ThrustMergesort, worst, exps.clone());
        let cw = run_series(params, SortAlgorithm::CfMerge, worst, exps.clone());
        let tr = run_series(params, SortAlgorithm::ThrustMergesort, random, exps.clone());
        let cr = run_series(params, SortAlgorithm::CfMerge, random, exps);

        let sw = speedup_summary(
            &tw.points.iter().map(|p| p.seconds).collect::<Vec<_>>(),
            &cw.points.iter().map(|p| p.seconds).collect::<Vec<_>>(),
        )
        .expect("worst-case sweeps are paired, non-empty, and positive");
        let sr = speedup_summary(
            &tr.points.iter().map(|p| p.seconds).collect::<Vec<_>>(),
            &cr.points.iter().map(|p| p.seconds).collect::<Vec<_>>(),
        )
        .expect("random sweeps are paired, non-empty, and positive");
        let cf_conflicts: u64 = cw.points.iter().chain(&cr.points).map(|p| p.merge_conflicts).sum();
        rows.push(vec![
            format!("E={},u={}", params.e, params.u),
            format!("{:.2}/{:.2}/{:.2}", sw.average, sw.mean, sw.max),
            if params.e == 15 { "1.37/1.45/1.47".into() } else { "1.17/1.23/1.25".into() },
            format!("{:.3}", sr.mean),
            cf_conflicts.to_string(),
        ]);
        art.add_summary(
            &format!("e{}_u{}", params.e, params.u),
            Json::obj([
                ("worst_case_speedup", sw.to_json()),
                ("random_speedup", sr.to_json()),
                ("cf_merge_conflicts", Json::from(cf_conflicts)),
            ]),
        );
        art.series.extend([tw, cw, tr, cr]);
    }
    println!("\n=== Section 5.1 summary ===\n");
    println!(
        "{}",
        format_table(
            &[
                "params",
                "CF speedup worst (avg/mean/max)",
                "paper",
                "CF speedup random (mean)",
                "CF merge conflicts"
            ],
            &rows
        )
    );
    println!("(random-input speedup ≈ 1.0 = the paper's \"virtually the same time\";\n CF merge conflicts must be 0 — the nvprof check.)");
    emit(&art);
}
