//! Regenerates the paper's illustrative figures (1, 2, 3, 4, 7, 8) as
//! ASCII, from the implementation's actual index math.
//!
//! Usage: `cargo run -p cfmerge-bench --bin figures [-- fig1 fig2 …]`
//! (no argument = all figures).

use cfmerge_bench::artifact::{emit, RunArtifact};
use cfmerge_bench::render;
use cfmerge_gpu_sim::device::Device;
use cfmerge_json::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let mut art = RunArtifact::new("figures", Device::rtx2080ti());
    let mut rendered = Vec::new();

    if want("fig1") {
        println!("=== Figure 1: strided accesses, w = 12 ===");
        println!("{}", render::figure1(12, &[5, 6]));
        rendered.push(Json::obj([("figure", Json::from("fig1"))]));
    }
    if want("fig2") {
        println!("=== Figure 2: CF gather rounds, w = 12, E = 5, d = 1 ===");
        let (s, tx) = render::gather_figure(12, 5, 12, 2);
        println!("{s}max transactions in any round: {tx} (1 = conflict-free)\n");
        rendered.push(Json::obj([
            ("figure", Json::from("fig2")),
            ("max_transactions", Json::from(tx)),
        ]));
    }
    if want("fig3") {
        println!("=== Figure 3: CF gather rounds, w = 9, E = 6, d = 3 ===");
        let (s, tx) = render::gather_figure(9, 6, 9, 3);
        println!("{s}max transactions in any round: {tx} (1 = conflict-free)\n");
        rendered.push(Json::obj([
            ("figure", Json::from("fig3")),
            ("max_transactions", Json::from(tx)),
        ]));
    }
    if want("fig4") {
        println!("=== Figure 4: worst-case inputs, w = 12, E ∈ {{5, 9}} ===");
        println!("{}", render::figure4(12, 5));
        println!("{}", render::figure4(12, 9));
        rendered.push(Json::obj([("figure", Json::from("fig4"))]));
    }
    if want("fig7") {
        println!("=== Figure 7: read stalls without reversing B, w = 12, E = 5 ===");
        let (s, _) = render::figure7(12, 5, 7);
        println!("{s}");
        rendered.push(Json::obj([("figure", Json::from("fig7"))]));
    }
    if want("fig8") {
        println!("=== Figure 8: thread-block gather, u = 18, w = 6, E = 4, d = 2 ===");
        let (s, tx) = render::gather_figure(6, 4, 18, 8);
        println!("{s}max transactions in any round: {tx} (1 = conflict-free)\n");
        rendered.push(Json::obj([
            ("figure", Json::from("fig8")),
            ("max_transactions", Json::from(tx)),
        ]));
    }
    art.add_summary("rendered", Json::Arr(rendered));
    emit(&art);
}
