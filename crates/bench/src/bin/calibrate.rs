//! Timing-model calibration harness: prints the anchor ratios from
//! DESIGN.md §5 for the current `TimingModel::rtx2080ti_like` constants.

use cfmerge_bench::artifact::{emit, RunArtifact, RunRecord};
use cfmerge_core::inputs::InputSpec;
use cfmerge_core::params::SortParams;
use cfmerge_core::sort::{simulate_sort, SortAlgorithm, SortConfig};
use cfmerge_gpu_sim::device::Device;
use cfmerge_json::Json;

fn main() {
    let mut art = RunArtifact::new("calibrate", Device::rtx2080ti());
    for (e, u) in [(15usize, 512usize), (17, 256)] {
        let cfg = SortConfig::with_params(SortParams::new(e, u));
        let n = 64 * e * u;
        let worst = InputSpec::WorstCase { w: 32, e, u }.generate(n);
        let random = InputSpec::UniformRandom { seed: 1 }.generate(n);
        let tw = simulate_sort(&worst, SortAlgorithm::ThrustMergesort, &cfg);
        let tr = simulate_sort(&random, SortAlgorithm::ThrustMergesort, &cfg);
        let cw = simulate_sort(&worst, SortAlgorithm::CfMerge, &cfg);
        let cr = simulate_sort(&random, SortAlgorithm::CfMerge, &cfg);
        println!("E={e} u={u} n={n}");
        println!("  thrust-random : {:8.1} elem/us", tr.throughput());
        println!(
            "  thrust-worst  : {:8.1} elem/us  slowdown {:.3}",
            tw.throughput(),
            tr.throughput() / tw.throughput()
        );
        println!(
            "  cf-random     : {:8.1} elem/us  vs thrust-random {:.3}",
            cr.throughput(),
            tr.throughput() / cr.throughput()
        );
        println!(
            "  cf-worst      : {:8.1} elem/us  cf speedup on worst {:.3}",
            cw.throughput(),
            cw.throughput() / tw.throughput()
        );
        for k in &tr.kernels[..2.min(tr.kernels.len())] {
            println!(
                "  [rand {}] dominant={} global={:.2e} shared={:.2e} lat={:.2e} alu={:.2e}",
                k.name,
                k.time.dominant(),
                k.time.global_s,
                k.time.shared_s,
                k.time.latency_s,
                k.time.alu_s
            );
        }
        for k in &tw.kernels[..2.min(tw.kernels.len())] {
            println!(
                "  [worst {}] dominant={} global={:.2e} shared={:.2e} lat={:.2e} alu={:.2e}",
                k.name,
                k.time.dominant(),
                k.time.global_s,
                k.time.shared_s,
                k.time.latency_s,
                k.time.alu_s
            );
        }
        art.add_summary(
            &format!("anchors_e{e}_u{u}"),
            Json::obj([
                ("thrust_worst_slowdown", Json::from(tr.throughput() / tw.throughput())),
                ("cf_random_overhead", Json::from(tr.throughput() / cr.throughput())),
                ("cf_worst_speedup", Json::from(cw.throughput() / tw.throughput())),
            ]),
        );
        for (label, algo, run) in [
            ("thrust/worst", SortAlgorithm::ThrustMergesort, &tw),
            ("thrust/random", SortAlgorithm::ThrustMergesort, &tr),
            ("cf-merge/worst", SortAlgorithm::CfMerge, &cw),
            ("cf-merge/random", SortAlgorithm::CfMerge, &cr),
        ] {
            art.runs.push(RunRecord::from_run(format!("{label}/E={e},u={u}"), algo, run));
        }
    }
    emit(&art);
}
