//! The scan case study (the paper's citation [18] context): bank
//! conflicts of three block-scan variants, measured exactly.

use cfmerge_algos::scan::{block_exclusive_scan, ScanKind};
use cfmerge_bench::artifact::{emit, RunArtifact};
use cfmerge_core::metrics::format_table;
use cfmerge_gpu_sim::banks::BankModel;
use cfmerge_gpu_sim::device::Device;
use cfmerge_json::Json;
use rand::{Rng, SeedableRng};

fn main() {
    let mut art = RunArtifact::new("scan_table", Device::rtx2080ti());
    let mut variants = Vec::new();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0x5CA7);
    let mut rows = Vec::new();
    for u in [128usize, 512, 1024] {
        let input: Vec<u32> = (0..u).map(|_| rng.gen_range(0..1000)).collect();
        for kind in [ScanKind::HillisSteele, ScanKind::Blelloch, ScanKind::BlellochPadded] {
            let (_, profile) = block_exclusive_scan(BankModel::nvidia(), &input, kind);
            let t = profile.total();
            variants.push(Json::obj([
                ("u", Json::from(u)),
                ("variant", Json::from(kind.label())),
                ("alu_ops", Json::from(t.alu_ops)),
                ("shared_requests", Json::from(t.shared_requests())),
                ("shared_transactions", Json::from(t.shared_transactions())),
                ("bank_conflicts", Json::from(t.bank_conflicts())),
            ]));
            rows.push(vec![
                u.to_string(),
                kind.label().to_string(),
                t.alu_ops.to_string(),
                t.shared_requests().to_string(),
                t.shared_transactions().to_string(),
                t.bank_conflicts().to_string(),
            ]);
        }
    }
    println!("=== Block prefix-sum variants: work vs bank conflicts ===\n");
    println!(
        "{}",
        format_table(
            &["u", "variant", "adds", "smem requests", "smem transactions", "conflicts"],
            &rows
        )
    );
    println!(
        "Hillis-Steele: conflict-free but Θ(u log u) adds. Blelloch: Θ(u) adds but\n\
         power-of-two tree strides serialize up to {}-way. Padding (one word per {}\n\
         — Dotsenko et al. [18] / GPU Gems 3) removes every conflict at the same\n\
         request count: the same trade-space CF-Merge navigates for merging.",
        32, 32
    );
    art.add_summary("variants", Json::Arr(variants));
    emit(&art);
}
