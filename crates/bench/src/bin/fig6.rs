//! Figure 6: throughput of Thrust vs CF-Merge on *both* worst-case and
//! uniform-random inputs — one panel per software parameter set.
//!
//! The headline claims this reproduces: (i) CF ≈ Thrust on random inputs
//! (the gather's overhead is ~2–3 extra shared accesses per element);
//! (ii) Thrust drops sharply on worst-case inputs while CF is input-
//! independent.

use cfmerge_bench::artifact::{emit, RunArtifact};
use cfmerge_bench::sweep::{
    default_exponents, full_exponents, full_flag, run_series, series_table,
};
use cfmerge_core::inputs::InputSpec;
use cfmerge_core::params::SortParams;
use cfmerge_core::sort::SortAlgorithm;
use cfmerge_gpu_sim::device::Device;
use cfmerge_json::Json;

fn main() {
    let full = full_flag();
    let mut art = RunArtifact::new("fig6", Device::rtx2080ti());
    for params in [SortParams::e15_u512(), SortParams::e17_u256()] {
        let exps = if full { full_exponents(params.u) } else { default_exponents(params.u) };
        let worst = InputSpec::worst_case(params);
        let random = InputSpec::UniformRandom { seed: 0xF16 };
        eprintln!("running E={}, u={} (i = {:?}) …", params.e, params.u, exps);
        let series = vec![
            run_series(params, SortAlgorithm::ThrustMergesort, worst, exps.clone()),
            run_series(params, SortAlgorithm::ThrustMergesort, random, exps.clone()),
            run_series(params, SortAlgorithm::CfMerge, worst, exps.clone()),
            run_series(params, SortAlgorithm::CfMerge, random, exps),
        ];
        println!(
            "\n=== Figure 6 panel: E = {}, u = {} (worst-case and random inputs) ===",
            params.e, params.u
        );
        println!("{}", series_table(&series));

        // The two CF curves must coincide (input independence), and the
        // CF curves must track thrust/random.
        let last = series[0].points.len() - 1;
        let t_rand = series[1].points[last].throughput;
        let cf_worst = series[2].points[last].throughput;
        let cf_rand = series[3].points[last].throughput;
        println!(
            "at the largest n: cf-worst/cf-random = {:.3} (input independence), \
             cf-random/thrust-random = {:.3} (parity on random)",
            cf_worst / cf_rand,
            cf_rand / t_rand
        );
        art.add_summary(
            &format!("ratios_e{}_u{}", params.e, params.u),
            Json::obj([
                ("cf_input_independence", Json::from(cf_worst / cf_rand)),
                ("cf_random_parity", Json::from(cf_rand / t_rand)),
            ]),
        );
        art.series.extend(series);
    }
    emit(&art);
}
