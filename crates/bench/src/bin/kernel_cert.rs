//! Certification gate: regenerate the device-parametric certificate
//! table, cross-validate its verdicts, lint the schedules, audit registry
//! completeness, and (with `--check PINNED.json`) fail on drift.
//!
//! Emits two artifacts into the results dir (`$CFMERGE_RESULTS_DIR`,
//! default `results/`):
//!
//! * `certificates.json` — the versioned [`CertificateTable`] itself,
//!   one verdict per (kernel phase, E, u, device profile) lattice point.
//!   This is the input contract the ROADMAP's auto-tuner consumes.
//! * `kernel_cert.json` — a [`RunArtifact`] whose
//!   `summaries.certificates` block carries the coverage counts the
//!   perf gate (`bench_diff --gate`) compares, flagging newly-Unknown
//!   shapes as coverage loss.
//!
//! Exit status is nonzero on any prover↔cost-model disagreement (a
//! record failing cross-validation fails its `pass` bit), any lint
//! finding, any registry-completeness gap, or any drift against a pinned
//! table.

use cfmerge_bench::artifact::{emit, RunArtifact};
use cfmerge_core::cert::{
    build_certificate_table, cert_configs, completeness_audit, device_profiles, diff_tables,
    CertificateTable,
};
use cfmerge_core::params::SortParams;
use cfmerge_gpu_sim::device::Device;
use cfmerge_json::{Json, ToJson};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pinned_path = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--check" => Some(path.clone()),
        _ => {
            eprintln!("usage: kernel_cert [--check PINNED_CERTIFICATES.json]");
            std::process::exit(2);
        }
    };

    let mut failures = 0usize;
    println!("=== kernel_cert: device-parametric certification ===");
    let table = build_certificate_table();

    // ---- per-profile coverage and failure reporting ----
    let mut profile_rows = Vec::new();
    for profile in device_profiles() {
        let recs: Vec<_> = table.records.iter().filter(|r| r.profile == profile.name).collect();
        let count = |verdict: &str| recs.iter().filter(|r| r.verdict == verdict).count();
        let (free, conf, refused) =
            (count("conflict-free"), count("conflicting"), count("not-certifiable"));
        println!(
            "  {:<18} w={:<3} {}-bit rows: {} certificates ({free} free, {conf} conflicting, \
             {refused} refused)",
            profile.name,
            profile.device.warp_width,
            32 * profile.device.bank_word_u32s,
            recs.len(),
        );
        profile_rows.push(Json::obj([
            ("profile", Json::from(profile.name)),
            ("banks", Json::from(profile.device.warp_width)),
            ("bank_word_u32s", Json::from(profile.device.bank_word_u32s)),
            ("records", Json::from(recs.len())),
            ("conflict_free", Json::from(free)),
            ("conflicting", Json::from(conf)),
            ("not_certifiable", Json::from(refused)),
        ]));
    }
    for rec in table.failures() {
        failures += 1;
        println!(
            "  FAIL {}: {} [{}] did not satisfy `{}`",
            rec.key(),
            rec.verdict,
            rec.strategy,
            rec.expected
        );
    }
    for lint in &table.lints {
        failures += 1;
        println!(
            "  LINT [{}] {}/{} on {} ({} E={} u={}): {}",
            lint.lint,
            lint.kernel,
            lint.phase,
            lint.profile,
            lint.algo,
            lint.e,
            lint.u,
            lint.message
        );
    }

    // ---- registry-completeness audit (dynamic half) ----
    println!("\n=== kernel_cert: registry-completeness audit ===");
    for params in [SortParams::e15_u512(), SortParams::e17_u256()] {
        let gaps = completeness_audit(params);
        println!(
            "  E={} u={}: {}",
            params.e,
            params.u,
            if gaps.is_empty() {
                "every profiled shared-memory phase has a registry entry"
            } else {
                "GAPS"
            }
        );
        for gap in &gaps {
            failures += 1;
            println!("    {gap}");
        }
    }

    // ---- drift check against a pinned table ----
    if let Some(path) = &pinned_path {
        println!("\n=== kernel_cert: drift check vs {path} ===");
        match load_table(Path::new(path)) {
            Ok(pinned) => {
                let drift = diff_tables(&pinned, &table);
                if drift.is_empty() {
                    println!("  no drift: {} certificates bit-stable", table.records.len());
                } else {
                    for d in &drift {
                        failures += 1;
                        println!("  DRIFT {d}");
                    }
                }
            }
            Err(e) => {
                failures += 1;
                println!("  cannot load pinned table: {e}");
            }
        }
    }

    // ---- emit artifacts ----
    let dir = RunArtifact::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("kernel_cert: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let cert_path = dir.join("certificates.json");
    let mut text = table.to_json().to_string_pretty();
    text.push('\n');
    if let Err(e) = std::fs::write(&cert_path, text) {
        eprintln!("kernel_cert: cannot write {}: {e}", cert_path.display());
        std::process::exit(1);
    }
    eprintln!("artifact: {}", cert_path.display());

    let mut art = RunArtifact::new("kernel_cert", Device::rtx2080ti());
    let verdict_counts = |counts: Vec<(String, usize)>, label: &str| {
        Json::Arr(
            counts
                .into_iter()
                .map(|(name, n)| {
                    Json::obj([(label, Json::from(name.as_str())), ("count", Json::from(n))])
                })
                .collect(),
        )
    };
    art.add_summary(
        "certificates",
        Json::obj([
            ("schema", Json::from(table.schema)),
            ("records", Json::from(table.records.len())),
            ("lint_findings", Json::from(table.lints.len())),
            ("failures", Json::from(table.failures().len())),
            ("configs", Json::from(cert_configs().len())),
            ("profiles", Json::Arr(profile_rows)),
            ("verdicts", verdict_counts(table.verdict_counts(), "verdict")),
            ("strategies", verdict_counts(table.strategy_counts(), "strategy")),
        ]),
    );
    art.add_summary("failures", Json::from(failures as u64));
    emit(&art);

    if failures > 0 {
        eprintln!("kernel_cert: {failures} failure(s)");
        std::process::exit(1);
    }
    println!(
        "\nkernel_cert: {} certificates across {} device profiles; all pass, lints clean.",
        table.records.len(),
        device_profiles().len()
    );
}

fn load_table(path: &Path) -> Result<CertificateTable, String> {
    use cfmerge_json::FromJson;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    CertificateTable::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
}
