//! ASCII renderings of the paper's access-pattern figures, generated
//! from the actual index math (not hand-drawn), so each figure doubles as
//! a check of the implementation.
//!
//! Shared memory is drawn as the paper draws it: a matrix with `w` rows
//! (one per bank) in column-major order — the element at address `a`
//! sits in row `a mod w`, column `a / w`.

use cfmerge_core::gather::layout::CfLayout;
use cfmerge_core::gather::schedule::{GatherSchedule, ThreadSplit};
use cfmerge_core::worst_case::WorstCaseBuilder;
use cfmerge_gpu_sim::banks::BankModel;
use cfmerge_mergepath::serial::{serial_merge_traced, Took};
use rand::{Rng, SeedableRng};

/// Figure 1: strided accesses in shared memory with `w = 12` — stride 5
/// (coprime, conflict-free) vs stride 6 (6-way conflicts).
#[must_use]
pub fn figure1(w: usize, strides: &[usize]) -> String {
    let banks = BankModel::new(w as u32);
    let mut out = String::new();
    for &s in strides {
        let cols = s; // the paper draws exactly the touched columns
        let accessed: Vec<usize> = (0..w).map(|k| k * s).collect();
        out.push_str(&format!(
            "stride {s} (gcd(w,{s}) = {}):\n",
            cfmerge_numtheory::gcd(w as u64, s as u64)
        ));
        for row in 0..w {
            out.push_str(&format!("{row:3}: "));
            for col in 0..cols {
                let addr = col * w + row;
                let hit = accessed.iter().any(|&a| a % (w * cols) == addr);
                out.push_str(&format!("{:>4}{} ", addr, if hit { "*" } else { " " }));
            }
            out.push('\n');
        }
        let cost = banks.round_cost(&accessed.iter().map(|&a| a as u32).collect::<Vec<_>>());
        out.push_str(&format!(
            "  → {} transaction(s), {} bank conflict(s)\n\n",
            cost.transactions, cost.conflicts
        ));
    }
    out
}

/// Deterministic "arbitrary input" splits for a block of `t` threads
/// (mirrors the papers' arbitrary examples).
#[must_use]
pub fn example_splits(t: usize, e: usize, seed: u64) -> (Vec<ThreadSplit>, usize) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut splits = Vec::with_capacity(t);
    let mut a = 0usize;
    for _ in 0..t {
        let len = rng.gen_range(0..=e);
        splits.push(ThreadSplit { a_begin: a, a_len: len });
        a += len;
    }
    (splits, a)
}

/// Figures 2, 3 and 8: the CF gather's round-by-round accesses for a
/// block of `u` threads (one warp for Figures 2–3). Each cell shows the
/// thread ID that reads that shared-memory word; below the grid, every
/// round is listed with its transaction count (all must be 1).
///
/// Returns `(rendering, max_transactions_per_round)`.
#[must_use]
pub fn gather_figure(w: usize, e: usize, u: usize, seed: u64) -> (String, u32) {
    let (splits, a_total) = example_splits(u, e, seed);
    let layout = CfLayout::new(w, e, u * e, a_total);
    let banks = BankModel::new(w as u32);
    let total = u * e;
    let cols = total / w;

    // reader[slot] = thread id, round[slot] = gather round.
    let mut reader = vec![usize::MAX; total];
    let mut round_of = vec![usize::MAX; total];
    for (tid, &sp) in splits.iter().enumerate() {
        let sched = GatherSchedule::new(layout, tid, sp);
        for j in 0..e {
            let slot = sched.round(j).slot();
            reader[slot] = tid;
            round_of[slot] = j;
        }
    }

    let d = cfmerge_numtheory::gcd(w as u64, e as u64);
    let mut out = format!(
        "CF gather: w={w}, E={e}, u={u}, d={d}  (|A|={a_total}, |B|={})\n",
        total - a_total
    );
    out.push_str("cells: thread id that reads the word (bank = row, column-major)\n");
    for row in 0..w {
        out.push_str(&format!("{row:3}: "));
        for col in 0..cols {
            let slot = col * w + row;
            out.push_str(&format!("{:>3} ", reader[slot]));
        }
        out.push('\n');
    }
    let mut max_tx = 0u32;
    out.push_str("rounds: ");
    for j in 0..e {
        let mut addrs = Vec::new();
        // Per-warp transactions for round j.
        let mut worst_round = 0u32;
        for v in 0..u / w {
            addrs.clear();
            for lane in 0..w {
                let tid = v * w + lane;
                let sched = GatherSchedule::new(layout, tid, splits[tid]);
                addrs.push(sched.round(j).slot() as u32);
            }
            worst_round = worst_round.max(banks.round_cost(&addrs).transactions);
        }
        max_tx = max_tx.max(worst_round);
        out.push_str(&format!("j={j}:{worst_round}tx "));
    }
    out.push('\n');
    (out, max_tx)
}

/// Figure 7: the read-stall picture — scanning *both* lists in ascending
/// order (staggering without the `π` reversal) forces some threads to
/// need two elements in the same round. Returns `(rendering,
/// max_elements_needed_by_one_thread_in_one_round)`.
#[must_use]
pub fn figure7(w: usize, e: usize, seed: u64) -> (String, usize) {
    let (splits, _) = example_splits(w, e, seed);
    // Naive schedule: A element m in round (aᵢ + m) mod E, and B element
    // m also ascending in round (bᵢ + m) mod E.
    let mut out = format!("naive dual scan (no reversal): w={w}, E={e}\n");
    let mut worst = 0usize;
    for j in 0..e {
        let mut stalls = 0usize;
        for (tid, &sp) in splits.iter().enumerate() {
            let b_begin = tid * e - sp.a_begin;
            let b_len = e - sp.a_len;
            let mut need = 0usize;
            for m in 0..sp.a_len {
                if (sp.a_begin + m) % e == j {
                    need += 1;
                }
            }
            for m in 0..b_len {
                if (b_begin + m) % e == j {
                    need += 1;
                }
            }
            worst = worst.max(need);
            if need > 1 {
                stalls += 1;
            }
        }
        out.push_str(&format!("round {j}: {stalls} thread(s) need 2 elements (stall)\n"));
    }
    out.push_str(&format!("max elements needed by one thread in one round: {worst}\n"));
    (out, worst)
}

/// Figure 4: the worst-case input for one warp — shared memory drawn as
/// the paper draws it (`A` columns then `B` columns), each cell labeled
/// with the thread that consumes it during the serial merge; rows
/// `w−E … w−1` (the bottom `E` banks, where the aligned scans sit) are
/// marked with `|` at the row label.
#[must_use]
pub fn figure4(w: usize, e: usize) -> String {
    let builder = WorstCaseBuilder::new(w, e, w);
    let (a, b) = builder.merge_pair(2);
    let (_, trace) = serial_merge_traced(&a, &b);
    // consumer[list][offset] = thread id.
    let mut a_consumer = vec![usize::MAX; a.len()];
    let mut b_consumer = vec![usize::MAX; b.len()];
    let (mut ai, mut bi) = (0usize, 0usize);
    for (step, &took) in trace.iter().enumerate() {
        let tid = step / e;
        match took {
            Took::A => {
                a_consumer[ai] = tid;
                ai += 1;
            }
            Took::B => {
                b_consumer[bi] = tid;
                bi += 1;
            }
        }
    }
    // Render warp 0's portion only (the second warp is the mirror image).
    let a_cols = a.len() / w;
    let b_cols = b.len() / w;
    let mut out = format!(
        "worst-case input, w={w}, E={e}, d={} (warp 0 of a balanced pair):\n",
        cfmerge_numtheory::gcd(w as u64, e as u64)
    );
    out.push_str("        A region");
    out.push_str(&" ".repeat(4 * a_cols.saturating_sub(2)));
    out.push_str("| B region\n");
    for row in 0..w {
        let marker = if row >= w - e { "|" } else { " " };
        out.push_str(&format!("{marker}{row:3}: "));
        for col in 0..a_cols {
            let off = col * w + row;
            out.push_str(&format!("{:>3} ", fmt_tid(a_consumer.get(off))));
        }
        out.push_str("| ");
        for col in 0..b_cols {
            let off = col * w + row;
            out.push_str(&format!("{:>3} ", fmt_tid(b_consumer.get(off))));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "predicted conflicts per warp (Theorem 8): {}\n",
        cfmerge_core::worst_case::predicted_warp_conflicts(w, e)
    ));
    out.push_str(&format!(
        "measured  conflicts per warp (lock-step): {}\n",
        cfmerge_core::worst_case::lockstep_baseline_conflicts(w, e, 2) / 2
    ));
    out
}

fn fmt_tid(t: Option<&usize>) -> String {
    match t {
        Some(&x) if x != usize::MAX => x.to_string(),
        _ => "·".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shows_both_regimes() {
        let s = figure1(12, &[5, 6]);
        assert!(s.contains("1 transaction(s), 0 bank conflict(s)"));
        assert!(s.contains("6 transaction(s), 5 bank conflict(s)"));
    }

    #[test]
    fn figure2_parameters_are_conflict_free() {
        // Paper Figure 2: w=12, E=5, d=1.
        let (_, tx) = gather_figure(12, 5, 12, 2);
        assert_eq!(tx, 1);
    }

    #[test]
    fn figure3_noncoprime_is_conflict_free() {
        // Paper Figure 3: w=9, E=6, d=3.
        let (_, tx) = gather_figure(9, 6, 9, 3);
        assert_eq!(tx, 1);
    }

    #[test]
    fn figure8_thread_block_is_conflict_free() {
        // Paper Figure 8: u=18, w=6, E=4, d=2.
        let (_, tx) = gather_figure(6, 4, 18, 8);
        assert_eq!(tx, 1);
    }

    #[test]
    fn figure7_shows_stalls_without_reversal() {
        let (_, worst) = figure7(12, 5, 7);
        assert_eq!(worst, 2, "naive scan must need up to 2 elements per round");
    }

    #[test]
    fn figure4_renders_for_both_example_parameters() {
        for e in [5usize, 9] {
            let s = figure4(12, e);
            assert!(s.contains("predicted conflicts"));
            assert!(s.lines().count() > 12);
        }
    }
}
