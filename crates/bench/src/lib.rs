//! # cfmerge-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §3 for the
//! index), built on three shared pieces:
//!
//! * [`sweep`] — throughput sweeps over `n = 2^i·E` for
//!   (algorithm × input × parameter set), the data behind Figures 5–6.
//! * [`render`] — ASCII renderings of the paper's access-pattern figures
//!   (1, 2, 3, 4, 7, 8), generated from the actual index math rather than
//!   drawn by hand.
//! * [`report`] — table formatting re-exports.
//! * [`artifact`] — machine-readable [`artifact::RunArtifact`] JSON every
//!   binary writes next to its text output, plus the diff/summary helpers
//!   behind the `bench_diff` binary.
//! * [`gate`] — the exact-match perf-regression gate behind
//!   `bench_diff --gate` (pinned artifact vs fresh regeneration).
//! * [`telemetry_report`] — the deterministic telemetry-showcase run
//!   behind the `metrics_report` binary and its golden test.
//!
//! Binaries: `fig5`, `fig6`, `figures` (1/2/3/4/7/8), `theorem8`,
//! `random_conflicts`, `noncoprime_penalty`, `occupancy_table`,
//! `speedup_summary`, `ablation`, `sort_landscape`, `scan_table`,
//! `calibrate`, plus the observability set `bench_diff` (artifact →
//! speedup table, perf gate), `trace_fig5` (Perfetto trace dump), and
//! `metrics_report` (metrics JSON + Prometheus + flamegraph export).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod gate;
pub mod render;
pub mod sweep;
pub mod telemetry_report;

/// Table-formatting helpers (re-exported from the core crate so binaries
/// have one import).
pub mod report {
    pub use cfmerge_core::metrics::{format_table, speedup_summary, SpeedupSummary};
}
