//! Throughput sweeps over `n = 2^i·E` — the measurement loop behind
//! Figures 5 and 6.
//!
//! The paper sweeps `16 ≤ i ≤ 26` on hardware; simulating every access at
//! `2^26` keys is possible but slow on one host core, so the default
//! range is `9 ≤ i ≤ 15` (from one tile pair up to ~half a million keys —
//! past the occupancy knee, where the curves are flat) and `--full`
//! extends to `i = 18`. EXPERIMENTS.md records which range produced the
//! published numbers.

use cfmerge_core::inputs::InputSpec;
use cfmerge_core::params::SortParams;
use cfmerge_core::sort::{simulate_sort, SortAlgorithm, SortConfig, SortRun};
use cfmerge_json::{FromJson, Json, JsonError, ToJson};

/// One measured point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// `n = 2^i · E`.
    pub i: u32,
    /// Input size.
    pub n: usize,
    /// Simulated seconds.
    pub seconds: f64,
    /// Elements per microsecond.
    pub throughput: f64,
    /// Mean bank conflicts per merge/gather round.
    pub conflicts_per_round: f64,
    /// Total bank conflicts in the merge/gather phases.
    pub merge_conflicts: u64,
}

impl ToJson for SweepPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("i", Json::from(self.i)),
            ("n", Json::from(self.n)),
            ("seconds", Json::from(self.seconds)),
            ("throughput", Json::from(self.throughput)),
            ("conflicts_per_round", Json::from(self.conflicts_per_round)),
            ("merge_conflicts", Json::from(self.merge_conflicts)),
        ])
    }
}

impl FromJson for SweepPoint {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            i: v.field("i")?,
            n: v.field("n")?,
            seconds: v.field("seconds")?,
            throughput: v.field("throughput")?,
            conflicts_per_round: v.field("conflicts_per_round")?,
            merge_conflicts: v.field("merge_conflicts")?,
        })
    }
}

/// A full series: one (algorithm, input, parameters) combination.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Display label, e.g. `thrust/worst-case(E=15)/E=15,u=512`.
    pub label: String,
    /// The measured points, ascending in `n`.
    pub points: Vec<SweepPoint>,
}

impl ToJson for Series {
    fn to_json(&self) -> Json {
        Json::obj([("label", Json::from(self.label.as_str())), ("points", self.points.to_json())])
    }
}

impl FromJson for Series {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self { label: v.field("label")?, points: v.field("points")? })
    }
}

/// Default exponent range: `2^9·E … 2^15·E`.
#[must_use]
pub fn default_exponents(u: usize) -> std::ops::RangeInclusive<u32> {
    // Need at least one full tile: 2^i ≥ u.
    let lo = (u as f64).log2().ceil() as u32;
    lo..=15
}

/// Extended range for `--full` runs.
#[must_use]
pub fn full_exponents(u: usize) -> std::ops::RangeInclusive<u32> {
    let lo = (u as f64).log2().ceil() as u32;
    lo..=18
}

/// Run one series.
#[must_use]
pub fn run_series(
    params: SortParams,
    algo: SortAlgorithm,
    input: InputSpec,
    exponents: std::ops::RangeInclusive<u32>,
) -> Series {
    let cfg = SortConfig::with_params(params);
    let points = exponents
        .map(|i| {
            let n = (1usize << i) * params.e;
            let data = input.generate(n);
            let run = simulate_sort(&data, algo, &cfg);
            assert!(run.output.is_sorted(), "pipeline produced unsorted output");
            point_of(i, &run)
        })
        .collect();
    Series {
        label: format!("{}/{}/E={},u={}", algo.label(), input.label(), params.e, params.u),
        points,
    }
}

fn point_of(i: u32, run: &SortRun) -> SweepPoint {
    SweepPoint {
        i,
        n: run.n,
        seconds: run.simulated_seconds,
        throughput: run.throughput(),
        conflicts_per_round: run.conflicts_per_merge_round(),
        merge_conflicts: run.profile.merge_bank_conflicts(),
    }
}

/// Parse the common `--full` flag from argv.
#[must_use]
pub fn full_flag() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Render several series as an aligned table: one row per `n`, one column
/// per series (throughput in elements/µs).
#[must_use]
pub fn series_table(series: &[Series]) -> String {
    let mut headers: Vec<&str> = vec!["i", "n"];
    for s in series {
        headers.push(&s.label);
    }
    let rows: Vec<Vec<String>> = series[0]
        .points
        .iter()
        .enumerate()
        .map(|(r, p)| {
            let mut row = vec![p.i.to_string(), p.n.to_string()];
            for s in series {
                row.push(format!("{:.1}", s.points[r].throughput));
            }
            row
        })
        .collect();
    cfmerge_core::metrics::format_table(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_runs() {
        let params = SortParams::new(5, 32);
        let s =
            run_series(params, SortAlgorithm::CfMerge, InputSpec::UniformRandom { seed: 1 }, 5..=7);
        assert_eq!(s.points.len(), 3);
        assert!(s.points.iter().all(|p| p.throughput > 0.0));
        assert_eq!(s.points[0].n, 32 * 5);
        assert_eq!(s.points[2].n, 128 * 5);
    }

    #[test]
    fn default_range_starts_at_one_tile() {
        assert_eq!(*default_exponents(512).start(), 9);
        assert_eq!(*default_exponents(256).start(), 8);
    }

    #[test]
    fn table_has_all_columns() {
        let params = SortParams::new(5, 32);
        let a = run_series(params, SortAlgorithm::ThrustMergesort, InputSpec::Sorted, 5..=6);
        let b = run_series(params, SortAlgorithm::CfMerge, InputSpec::Sorted, 5..=6);
        let t = series_table(&[a, b]);
        assert!(t.contains("thrust"));
        assert!(t.contains("cf-merge"));
        assert_eq!(t.lines().count(), 4);
    }
}
