//! The performance-regression gate behind `bench_diff --gate`.
//!
//! The simulator is deterministic, so a pinned artifact in `results/` is
//! not a noisy sample — it is the *exact* expected output of the current
//! code. The gate exploits that: it pairs a pinned baseline artifact with
//! a freshly regenerated one and demands every modeled number match
//! **exactly** (tolerance `0.0`) unless a per-metric relative tolerance
//! says otherwise. Any drift — slower *or* faster — trips the gate:
//! slower is a regression, faster means the pinned baseline is stale and
//! must be regenerated and reviewed.
//!
//! Compared, per artifact pair:
//! * every series point's `seconds` and `merge_conflicts` (paired by
//!   exact series label and point `n`),
//! * every run record's `simulated_seconds` and `merge_conflicts`
//!   (paired by label, repeats positionally),
//! * every telemetry metric present in both snapshots (counters and
//!   gauges by value; histograms by `count` and `sum`).
//!
//! A series, run, or telemetry metric present in the baseline but absent
//! from the current artifact is a coverage regression and fails the gate.
//! Metrics only the *current* artifact has are fine — that is how new
//! instrumentation lands.

use crate::artifact::RunArtifact;
use cfmerge_core::telemetry::{MetricValue, MetricsSnapshot};
use cfmerge_json::Json;

/// Per-metric relative tolerances for [`gate_artifacts`]. Everything not
/// named is compared exactly.
#[derive(Debug, Clone, Default)]
pub struct GateConfig {
    /// `(metric kind, relative tolerance)` pairs. Kinds are the ones the
    /// gate emits in violations: `seconds`, `merge_conflicts`, and
    /// telemetry metric names (e.g. `service_job_latency_seconds_sum`).
    pub tolerances: Vec<(String, f64)>,
}

impl GateConfig {
    /// The default, fully-exact gate.
    #[must_use]
    pub fn exact() -> Self {
        Self::default()
    }

    /// Set the relative tolerance for one metric kind (replacing any
    /// earlier setting for the same kind).
    pub fn set_tolerance(&mut self, kind: &str, rel: f64) {
        assert!(rel >= 0.0 && rel.is_finite(), "tolerance must be a finite non-negative ratio");
        self.tolerances.retain(|(k, _)| k != kind);
        self.tolerances.push((kind.to_string(), rel));
    }

    /// Parse a `--tol kind=rel` argument value, e.g. `seconds=0.02`.
    ///
    /// # Errors
    /// Describes the malformed argument.
    pub fn parse_tolerance_arg(&mut self, arg: &str) -> Result<(), String> {
        let (kind, rel) =
            arg.split_once('=').ok_or_else(|| format!("expected KIND=REL, got `{arg}`"))?;
        let rel: f64 = rel.parse().map_err(|e| format!("bad tolerance in `{arg}`: {e}"))?;
        if !(rel >= 0.0 && rel.is_finite()) {
            return Err(format!("tolerance must be finite and ≥ 0, got `{arg}`"));
        }
        self.set_tolerance(kind, rel);
        Ok(())
    }

    /// Tolerance applied to metric `kind` (0.0 — exact — by default).
    #[must_use]
    pub fn tolerance_for(&self, kind: &str) -> f64 {
        self.tolerances.iter().find(|(k, _)| k == kind).map_or(0.0, |(_, rel)| *rel)
    }
}

/// One gated metric that moved beyond its tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct GateViolation {
    /// Where: `series/<label>/n=<n>/seconds`, `run/<label>[i]/…`, or
    /// `telemetry/<metric>`.
    pub metric: String,
    /// The metric kind the tolerance was resolved under.
    pub kind: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Tolerance that was applied.
    pub tolerance: f64,
}

impl GateViolation {
    /// `current/baseline − 1`; infinite when the baseline is 0.
    #[must_use]
    pub fn rel_change(&self) -> f64 {
        if self.baseline == 0.0 {
            if self.current == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.current / self.baseline - 1.0
        }
    }
}

/// What [`gate_artifacts`] found.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Metrics that moved beyond tolerance, in comparison order.
    pub violations: Vec<GateViolation>,
    /// Baseline entries with no counterpart in the current artifact
    /// (coverage regressions — these fail the gate too).
    pub missing: Vec<String>,
    /// Number of metric values compared.
    pub compared: usize,
}

impl GateReport {
    /// The gate passes iff nothing drifted and nothing disappeared.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.missing.is_empty()
    }

    /// Human-readable verdict for the CI log.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            out.push_str(&format!(
                "perf gate PASSED: {} metrics compared, 0 drifted\n",
                self.compared
            ));
            return out;
        }
        out.push_str(&format!(
            "perf gate FAILED: {} of {} compared metrics drifted, {} missing\n",
            self.violations.len(),
            self.compared,
            self.missing.len()
        ));
        for v in &self.violations {
            out.push_str(&format!(
                "  {}: {} -> {} ({:+.3}%, tolerance {:.3}%)\n",
                v.metric,
                v.baseline,
                v.current,
                v.rel_change() * 100.0,
                v.tolerance * 100.0
            ));
        }
        for m in &self.missing {
            out.push_str(&format!("  missing from current artifact: {m}\n"));
        }
        out
    }
}

struct Gate<'a> {
    cfg: &'a GateConfig,
    report: GateReport,
}

impl Gate<'_> {
    fn check(&mut self, metric: String, kind: &str, baseline: f64, current: f64) {
        self.report.compared += 1;
        let tol = self.cfg.tolerance_for(kind);
        let within =
            if baseline == 0.0 { current == 0.0 } else { (current / baseline - 1.0).abs() <= tol };
        if !within {
            self.report.violations.push(GateViolation {
                metric,
                kind: kind.to_string(),
                baseline,
                current,
                tolerance: tol,
            });
        }
    }
}

/// Gate `current` against the pinned `baseline` under `cfg`.
#[must_use]
pub fn gate_artifacts(
    baseline: &RunArtifact,
    current: &RunArtifact,
    cfg: &GateConfig,
) -> GateReport {
    let mut gate = Gate { cfg, report: GateReport::default() };

    for base in &baseline.series {
        let Some(cur) = current.series.iter().find(|s| s.label == base.label) else {
            gate.report.missing.push(format!("series `{}`", base.label));
            continue;
        };
        for bp in &base.points {
            let Some(cp) = cur.points.iter().find(|p| p.n == bp.n) else {
                gate.report.missing.push(format!("series `{}` point n={}", base.label, bp.n));
                continue;
            };
            let at = format!("series/{}/n={}", base.label, bp.n);
            gate.check(format!("{at}/seconds"), "seconds", bp.seconds, cp.seconds);
            gate.check(
                format!("{at}/merge_conflicts"),
                "merge_conflicts",
                bp.merge_conflicts as f64,
                cp.merge_conflicts as f64,
            );
        }
    }

    // Repeated run labels (repeat-seed runs) pair positionally; handle
    // each label once.
    let mut seen: Vec<&str> = Vec::new();
    for label in baseline.runs.iter().map(|r| r.label.as_str()) {
        if seen.contains(&label) {
            continue;
        }
        seen.push(label);
        let base_runs: Vec<_> = baseline.runs.iter().filter(|r| r.label == label).collect();
        let cur_runs: Vec<_> = current.runs.iter().filter(|r| r.label == label).collect();
        if cur_runs.is_empty() {
            gate.report.missing.push(format!("run `{label}`"));
            continue;
        }
        if cur_runs.len() < base_runs.len() {
            gate.report.missing.push(format!(
                "run `{label}` repeats ({} baseline vs {} current)",
                base_runs.len(),
                cur_runs.len()
            ));
        }
        for (i, (b, c)) in base_runs.iter().zip(&cur_runs).enumerate() {
            let at = format!("run/{label}[{i}]");
            gate.check(
                format!("{at}/simulated_seconds"),
                "seconds",
                b.simulated_seconds,
                c.simulated_seconds,
            );
            gate.check(
                format!("{at}/merge_conflicts"),
                "merge_conflicts",
                b.merge_conflicts as f64,
                c.merge_conflicts as f64,
            );
        }
    }

    match (&baseline.telemetry, &current.telemetry) {
        (Some(base), Some(cur)) => gate_telemetry(&mut gate, base, cur),
        (Some(_), None) => gate.report.missing.push("telemetry snapshot".into()),
        (None, _) => {}
    }

    match (baseline.summaries.get("certificates"), current.summaries.get("certificates")) {
        (Some(base), Some(cur)) => gate_certificates(&mut gate, base, cur),
        (Some(_), None) => gate.report.missing.push("certificates summary".into()),
        (None, _) => {}
    }

    match (baseline.summaries.get("tuning"), current.summaries.get("tuning")) {
        (Some(base), Some(cur)) => gate_tuning(&mut gate, base, cur),
        (Some(_), None) => gate.report.missing.push("tuning summary".into()),
        (None, _) => {}
    }

    gate.report
}

/// Gate the certification coverage block (`summaries.certificates`): the
/// scalar totals and every profile's verdict counts must match exactly. A
/// profile whose `not_certifiable` count *rose* is flagged as coverage
/// loss — lattice points that used to carry a decided verdict became
/// `Unknown`, which is precisely the regression the fail-closed design
/// turns into a gate failure instead of a silent optimistic answer.
fn gate_certificates(gate: &mut Gate<'_>, base: &Json, cur: &Json) {
    for key in ["schema", "records", "lint_findings", "failures"] {
        match (base.get(key).and_then(Json::as_f64), cur.get(key).and_then(Json::as_f64)) {
            (Some(b), Some(c)) => gate.check(format!("certificates/{key}"), "certificates", b, c),
            (Some(_), None) => gate.report.missing.push(format!("certificates field `{key}`")),
            (None, _) => {}
        }
    }
    let profiles = |v: &Json| -> Vec<Json> {
        v.get("profiles").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default()
    };
    let cur_rows = profiles(cur);
    for brow in profiles(base) {
        let Some(name) = brow.get("profile").and_then(Json::as_str) else { continue };
        let Some(crow) =
            cur_rows.iter().find(|r| r.get("profile").and_then(Json::as_str) == Some(name))
        else {
            gate.report.missing.push(format!("certificates profile `{name}`"));
            continue;
        };
        for field in ["records", "conflict_free", "conflicting", "not_certifiable"] {
            let (Some(b), Some(c)) =
                (brow.get(field).and_then(Json::as_f64), crow.get(field).and_then(Json::as_f64))
            else {
                continue;
            };
            let metric = if field == "not_certifiable" && c > b {
                format!("certificates/{name}/{field} [COVERAGE LOSS: newly-unknown shapes]")
            } else {
                format!("certificates/{name}/{field}")
            };
            gate.check(metric, "certificates", b, c);
        }
    }
}

/// Gate the auto-tuner coverage block (`summaries.tuning`): the ladder
/// checksum, the scalar totals, and every ladder's rung/tier counts must
/// match exactly. A ladder whose `certified` or `rungs` count *fell* is
/// flagged as coverage loss — launch configs the degradation ladder used
/// to be able to run were silently pushed off it, which shrinks the
/// space the service can degrade into before failing closed.
fn gate_tuning(gate: &mut Gate<'_>, base: &Json, cur: &Json) {
    match (base.get("checksum").and_then(Json::as_str), cur.get("checksum").and_then(Json::as_str))
    {
        (Some(b), Some(c)) if b != c => {
            gate.report.missing.push(format!("tuning checksum match (ladders drifted: {b} -> {c})"))
        }
        (Some(_), None) => gate.report.missing.push("tuning field `checksum`".into()),
        _ => {}
    }
    for key in [
        "schema",
        "cert_schema",
        "ladder_count",
        "rungs",
        "certified",
        "degraded",
        "excluded",
        "validation_scenarios",
        "validation_failures",
    ] {
        match (base.get(key).and_then(Json::as_f64), cur.get(key).and_then(Json::as_f64)) {
            (Some(b), Some(c)) => gate.check(format!("tuning/{key}"), "tuning", b, c),
            (Some(_), None) => gate.report.missing.push(format!("tuning field `{key}`")),
            (None, _) => {}
        }
    }
    let ladders = |v: &Json| -> Vec<Json> {
        v.get("ladders").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default()
    };
    let cur_rows = ladders(cur);
    for brow in ladders(base) {
        let Some(name) = brow.get("ladder").and_then(Json::as_str) else { continue };
        let Some(crow) =
            cur_rows.iter().find(|r| r.get("ladder").and_then(Json::as_str) == Some(name))
        else {
            gate.report.missing.push(format!("tuning ladder `{name}`"));
            continue;
        };
        for field in ["rungs", "certified", "degraded", "excluded"] {
            let (Some(b), Some(c)) =
                (brow.get(field).and_then(Json::as_f64), crow.get(field).and_then(Json::as_f64))
            else {
                continue;
            };
            let metric = if matches!(field, "rungs" | "certified") && c < b {
                format!("tuning/{name}/{field} [COVERAGE LOSS: the degradation ladder shrank]")
            } else {
                format!("tuning/{name}/{field}")
            };
            gate.check(metric, "tuning", b, c);
        }
    }
}

fn gate_telemetry(gate: &mut Gate<'_>, base: &MetricsSnapshot, cur: &MetricsSnapshot) {
    for m in &base.metrics {
        let Some(c) = cur.get(&m.name) else {
            gate.report.missing.push(format!("telemetry metric `{}`", m.name));
            continue;
        };
        let at = format!("telemetry/{}", m.name);
        match (&m.value, c) {
            (MetricValue::Counter(b), MetricValue::Counter(c)) => {
                gate.check(at.clone(), &m.name, *b as f64, *c as f64);
            }
            (MetricValue::Gauge(b), MetricValue::Gauge(c)) => {
                gate.check(at.clone(), &m.name, *b, *c);
            }
            (MetricValue::Histogram(b), MetricValue::Histogram(c)) => {
                let count_kind = format!("{}_count", m.name);
                let sum_kind = format!("{}_sum", m.name);
                gate.check(format!("{at}/count"), &count_kind, b.count as f64, c.count as f64);
                gate.check(format!("{at}/sum"), &sum_kind, b.sum as f64, c.sum as f64);
            }
            _ => gate.report.missing.push(format!(
                "telemetry metric `{}` changed kind ({} vs {})",
                m.name,
                m.value.kind(),
                c.kind()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{Series, SweepPoint};
    use cfmerge_core::telemetry::MetricsRegistry;
    use cfmerge_gpu_sim::device::Device;

    fn point(i: u32, n: usize, seconds: f64, conflicts: u64) -> SweepPoint {
        SweepPoint {
            i,
            n,
            seconds,
            throughput: n as f64 / (seconds * 1e6),
            conflicts_per_round: 0.0,
            merge_conflicts: conflicts,
        }
    }

    fn sample() -> RunArtifact {
        let mut art = RunArtifact::new("gate_test", Device::rtx2080ti());
        art.series.push(Series {
            label: "cf-merge/worst-case/E=15,u=512".into(),
            points: vec![point(9, 512 * 15, 1.0e-4, 0), point(10, 1024 * 15, 2.0e-4, 0)],
        });
        let mut reg = MetricsRegistry::new();
        reg.inc("runs_total", 2);
        reg.observe_seconds("run_seconds", 1.0e-4);
        reg.observe_seconds("run_seconds", 2.0e-4);
        art.telemetry = Some(reg.snapshot());
        art
    }

    #[test]
    fn identical_artifacts_pass_exactly() {
        let art = sample();
        let report = gate_artifacts(&art, &art, &GateConfig::exact());
        assert!(report.passed(), "{}", report.render());
        assert!(report.compared >= 4, "compared only {} metrics", report.compared);
        assert!(report.render().contains("PASSED"));
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        let base = sample();
        let mut cur = base.clone();
        cur.series[0].points[1].seconds *= 1.05; // 5% slower
        let report = gate_artifacts(&base, &cur, &GateConfig::exact());
        assert!(!report.passed());
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert!(v.metric.ends_with("n=15360/seconds"), "{}", v.metric);
        assert!((v.rel_change() - 0.05).abs() < 1e-9);
        assert!(report.render().contains("FAILED"));

        // A matching tolerance lets the same drift through.
        let mut cfg = GateConfig::exact();
        cfg.parse_tolerance_arg("seconds=0.10").unwrap();
        assert!(gate_artifacts(&base, &cur, &cfg).passed());
        // …but a conflict-count change stays exact under that config.
        let mut bad = base.clone();
        bad.series[0].points[0].merge_conflicts = 3;
        assert!(!gate_artifacts(&base, &bad, &cfg).passed());
    }

    #[test]
    fn missing_coverage_fails_the_gate() {
        let base = sample();
        let mut cur = base.clone();
        cur.series.clear();
        let report = gate_artifacts(&base, &cur, &GateConfig::exact());
        assert!(!report.passed());
        assert_eq!(report.missing.len(), 1);
        assert!(report.render().contains("missing"));

        let mut no_tel = base.clone();
        no_tel.telemetry = None;
        let report = gate_artifacts(&base, &no_tel, &GateConfig::exact());
        assert!(!report.passed());
        assert!(report.missing.iter().any(|m| m.contains("telemetry")));
        // The reverse direction — current gained telemetry — is fine.
        assert!(gate_artifacts(&no_tel, &base, &GateConfig::exact()).passed());
    }

    #[test]
    fn telemetry_drift_is_gated() {
        let base = sample();
        let mut cur = base.clone();
        let mut reg = MetricsRegistry::new();
        reg.inc("runs_total", 3); // counter drifted
        reg.observe_seconds("run_seconds", 1.0e-4);
        reg.observe_seconds("run_seconds", 2.0e-4);
        cur.telemetry = Some(reg.snapshot());
        let report = gate_artifacts(&base, &cur, &GateConfig::exact());
        assert!(!report.passed());
        assert!(report.violations.iter().any(|v| v.metric == "telemetry/runs_total"));
    }

    #[test]
    fn tolerance_args_validate() {
        let mut cfg = GateConfig::exact();
        assert!(cfg.parse_tolerance_arg("nonsense").is_err());
        assert!(cfg.parse_tolerance_arg("seconds=abc").is_err());
        assert!(cfg.parse_tolerance_arg("seconds=-0.5").is_err());
        cfg.parse_tolerance_arg("seconds=0.02").unwrap();
        cfg.parse_tolerance_arg("seconds=0.03").unwrap(); // replaces
        assert!((cfg.tolerance_for("seconds") - 0.03).abs() < 1e-12);
        assert_eq!(cfg.tolerance_for("merge_conflicts"), 0.0);
    }

    fn cert_summary(not_certifiable: u64) -> Json {
        Json::obj([
            ("schema", Json::from(1u64)),
            ("records", Json::from(84u64)),
            ("lint_findings", Json::from(0u64)),
            ("failures", Json::from(0u64)),
            (
                "profiles",
                Json::Arr(vec![Json::obj([
                    ("profile", Json::from("kepler_64bit_like")),
                    ("records", Json::from(28u64)),
                    ("conflict_free", Json::from(20u64 - not_certifiable.min(20))),
                    ("conflicting", Json::from(8u64)),
                    ("not_certifiable", Json::from(not_certifiable)),
                ])]),
            ),
        ])
    }

    #[test]
    fn certificate_drift_and_coverage_loss_fail_the_gate() {
        let mut base = sample();
        base.add_summary("certificates", cert_summary(0));
        // Identical certification coverage passes.
        let report = gate_artifacts(&base, &base, &GateConfig::exact());
        assert!(report.passed(), "{}", report.render());

        // A profile whose decided verdicts became refusals is flagged as
        // coverage loss, not just a numeric drift.
        let mut cur = sample();
        cur.add_summary("certificates", cert_summary(3));
        let report = gate_artifacts(&base, &cur, &GateConfig::exact());
        assert!(!report.passed());
        assert!(
            report.violations.iter().any(|v| v.metric.contains("COVERAGE LOSS")),
            "{}",
            report.render()
        );

        // Dropping the certificates block entirely is missing coverage.
        let no_cert = sample();
        let report = gate_artifacts(&base, &no_cert, &GateConfig::exact());
        assert!(!report.passed());
        assert!(report.missing.iter().any(|m| m.contains("certificates")));
        // The reverse — current gained certification — is fine.
        assert!(gate_artifacts(&no_cert, &base, &GateConfig::exact()).passed());
    }

    fn tuning_summary(certified: u64, checksum: &str) -> Json {
        Json::obj([
            ("schema", Json::from(1u64)),
            ("cert_schema", Json::from(1u64)),
            ("checksum", Json::from(checksum)),
            ("ladder_count", Json::from(6u64)),
            ("rungs", Json::from(certified + 2)),
            ("certified", Json::from(certified)),
            ("degraded", Json::from(2u64)),
            ("excluded", Json::from(12u64)),
            ("validation_scenarios", Json::from(2u64)),
            ("validation_failures", Json::from(0u64)),
            (
                "ladders",
                Json::Arr(vec![Json::obj([
                    ("ladder", Json::from("rtx2080ti/cf-merge")),
                    ("rungs", Json::from(certified)),
                    ("certified", Json::from(certified)),
                    ("degraded", Json::from(0u64)),
                    ("excluded", Json::from(1u64)),
                ])]),
            ),
        ])
    }

    #[test]
    fn tuning_drift_and_ladder_shrink_fail_the_gate() {
        let mut base = sample();
        base.add_summary("tuning", tuning_summary(4, "fnv1a64:00ff"));
        let report = gate_artifacts(&base, &base, &GateConfig::exact());
        assert!(report.passed(), "{}", report.render());

        // A ladder that lost certified rungs is flagged as coverage loss:
        // the service has less room to degrade into before failing
        // closed.
        let mut cur = sample();
        cur.add_summary("tuning", tuning_summary(2, "fnv1a64:00ff"));
        let report = gate_artifacts(&base, &cur, &GateConfig::exact());
        assert!(!report.passed());
        assert!(
            report.violations.iter().any(|v| v.metric.contains("COVERAGE LOSS")),
            "{}",
            report.render()
        );

        // A checksum drift alone fails even when every count matches.
        let mut cur = sample();
        cur.add_summary("tuning", tuning_summary(4, "fnv1a64:beef"));
        let report = gate_artifacts(&base, &cur, &GateConfig::exact());
        assert!(!report.passed());
        assert!(report.missing.iter().any(|m| m.contains("checksum")), "{}", report.render());

        // Dropping the tuning block entirely is missing coverage; the
        // reverse — current gained a tuner — is fine.
        let no_tuning = sample();
        let report = gate_artifacts(&base, &no_tuning, &GateConfig::exact());
        assert!(!report.passed());
        assert!(report.missing.iter().any(|m| m.contains("tuning")));
        assert!(gate_artifacts(&no_tuning, &base, &GateConfig::exact()).passed());
    }

    #[test]
    fn pinned_fig5_artifact_gates_cleanly_against_itself() {
        // The pinned artifact is its own baseline: the gate's pairing and
        // exact comparison must hold on real repo data, not just
        // fixtures.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/fig5.json");
        let art = RunArtifact::load(&path).expect("pinned fig5 artifact loads");
        let report = gate_artifacts(&art, &art, &GateConfig::exact());
        assert!(report.passed(), "{}", report.render());
        assert!(report.compared > 0);
    }
}
