//! Congruence arithmetic helpers (Definitions 13–15 support code).
//!
//! Small, explicit operations on residues used by the residue-system
//! constructions in [`crate::residue`] and by the gather/worst-case code in
//! the core crate.

/// Whether `a ≡ b (mod m)`.
///
/// # Panics
/// Panics if `m == 0`.
#[must_use]
pub fn congruent(a: i64, b: i64, m: u64) -> bool {
    assert!(m > 0, "congruence modulus must be positive");
    a.rem_euclid(m as i64) == b.rem_euclid(m as i64)
}

/// Modular addition on canonical residues: `(a + b) mod m`, inputs reduced
/// first so callers may pass arbitrary values.
#[must_use]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    assert!(m > 0);
    ((a % m) + (b % m)) % m
}

/// Modular subtraction on canonical residues: `(a - b) mod m` in `[0, m)`.
#[must_use]
pub fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    assert!(m > 0);
    ((a % m) + m - (b % m)) % m
}

/// Modular multiplication via `u128` widening (no overflow for any `u64`).
#[must_use]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    assert!(m > 0);
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

/// Modular exponentiation by repeated squaring.
#[must_use]
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m > 0);
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Solve the linear congruence `a·x ≡ b (mod m)`.
///
/// Returns the set of canonical solutions in `[0, m)`; there are exactly
/// `g = gcd(a, m)` of them when `g | b`, and none otherwise. This is the
/// classical theorem behind Lemma 1's "stride coprime with `w` visits every
/// bank" argument: for coprime `a`, every target residue is hit exactly
/// once.
#[must_use]
pub fn solve_linear_congruence(a: u64, b: u64, m: u64) -> Vec<u64> {
    assert!(m > 0);
    let g = crate::gcd(a % m, m);
    let g = if g == 0 { m } else { g };
    if !b.is_multiple_of(g) {
        return Vec::new();
    }
    let m_red = m / g;
    let a_red = (a % m) / g;
    let b_red = (b % m) / g;
    // a_red is coprime with m_red (Corollary 18), so it has an inverse.
    let inv = crate::mod_inverse(a_red % m_red.max(1), m_red.max(1)).unwrap_or(0);
    let x0 = mul_mod(inv, b_red % m_red.max(1), m_red.max(1));
    (0..g).map(|k| x0 + k * m_red).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congruence_basics() {
        assert!(congruent(5, 17, 12));
        assert!(congruent(-7, 5, 12));
        assert!(!congruent(5, 16, 12));
        assert!(congruent(0, 0, 1));
    }

    #[test]
    fn add_sub_mul_mod() {
        assert_eq!(add_mod(10, 7, 12), 5);
        assert_eq!(sub_mod(3, 7, 12), 8);
        assert_eq!(sub_mod(7, 3, 12), 4);
        assert_eq!(mul_mod(u64::MAX, u64::MAX, 97), {
            let big = u128::from(u64::MAX) * u128::from(u64::MAX);
            (big % 97) as u64
        });
    }

    #[test]
    fn pow_mod_matches_naive() {
        for base in 0u64..8 {
            for exp in 0u64..10 {
                for m in 1u64..20 {
                    let mut naive = 1 % m;
                    for _ in 0..exp {
                        naive = naive * base % m;
                    }
                    assert_eq!(pow_mod(base, exp, m), naive, "b={base} e={exp} m={m}");
                }
            }
        }
    }

    #[test]
    fn linear_congruence_solution_counts() {
        // 3x ≡ 6 (mod 12): g = 3 divides 6 → 3 solutions {2, 6, 10}.
        let sols = solve_linear_congruence(3, 6, 12);
        assert_eq!(sols, vec![2, 6, 10]);
        // 3x ≡ 5 (mod 12): g = 3 does not divide 5 → no solutions.
        assert!(solve_linear_congruence(3, 5, 12).is_empty());
        // 5x ≡ 1 (mod 12): coprime stride → unique solution.
        let sols = solve_linear_congruence(5, 1, 12);
        assert_eq!(sols, vec![5]);
    }

    #[test]
    fn linear_congruence_solutions_verify() {
        for a in 0u64..15 {
            for b in 0u64..15 {
                for m in 1u64..15 {
                    for x in solve_linear_congruence(a, b, m) {
                        assert!(x < m);
                        assert_eq!(mul_mod(a, x, m), b % m, "a={a} b={b} m={m} x={x}");
                    }
                }
            }
        }
    }
}
