//! Euclid's division lemma (Lemma 9) and floor/Euclidean modulo helpers.
//!
//! The worst-case input construction of Section 4 repeatedly decomposes the
//! warp width as `w = qE + r` with `0 <= r < E`; the gather indexing of
//! Algorithm 1 needs a modulo that behaves sanely on negative operands
//! (`k - j - 1 (mod E)` can be negative in machine arithmetic). Both live
//! here.

/// Euclid's division lemma (Lemma 9): for `b > 0`, the unique `(q, r)` with
/// `a = q*b + r` and `0 <= r < b`.
///
/// # Panics
/// Panics if `b == 0`.
///
/// ```
/// use cfmerge_numtheory::division::euclid_div;
/// assert_eq!(euclid_div(32, 15), (2, 2)); // w = 32, E = 15: q = 2, r = 2
/// assert_eq!(euclid_div(32, 17), (1, 15));
/// assert_eq!(euclid_div(-7, 3), (-3, 2));
/// ```
#[must_use]
pub fn euclid_div(a: i64, b: i64) -> (i64, i64) {
    assert!(b > 0, "euclid_div requires a positive divisor, got {b}");
    (a.div_euclid(b), a.rem_euclid(b))
}

/// Euclidean (always non-negative) remainder: `a mod m` with result in
/// `[0, m)`.
///
/// # Panics
/// Panics if `m == 0`.
#[must_use]
pub fn mod_floor(a: i64, m: i64) -> i64 {
    assert!(m > 0, "mod_floor requires a positive modulus, got {m}");
    a.rem_euclid(m)
}

/// `mod_floor` for `usize` indices offset by a possibly-negative delta.
///
/// Computes `(base as i64 + delta) mod m` in `[0, m)` and converts back to
/// `usize`. This is the shape of every index expression in Algorithm 1.
#[must_use]
pub fn offset_mod(base: usize, delta: i64, m: usize) -> usize {
    debug_assert!(m > 0);
    (base as i64 + delta).rem_euclid(m as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclid_div_unique_decomposition() {
        for a in -200i64..200 {
            for b in 1i64..40 {
                let (q, r) = euclid_div(a, b);
                assert_eq!(q * b + r, a);
                assert!((0..b).contains(&r));
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive divisor")]
    fn euclid_div_zero_divisor_panics() {
        let _ = euclid_div(5, 0);
    }

    #[test]
    fn mod_floor_negative_operands() {
        assert_eq!(mod_floor(-1, 5), 4);
        assert_eq!(mod_floor(-5, 5), 0);
        assert_eq!(mod_floor(-6, 5), 4);
        assert_eq!(mod_floor(7, 5), 2);
        assert_eq!(mod_floor(0, 5), 0);
    }

    #[test]
    fn offset_mod_matches_paper_index_shapes() {
        // k - j - 1 (mod E) from Algorithm 1, with k = 0, j = 0, E = 5:
        assert_eq!(offset_mod(0, -1, 5), 4);
        // j - k (mod E) with j = 1, k = 3, E = 5:
        assert_eq!(offset_mod(1, -3, 5), 3);
        assert_eq!(offset_mod(4, 1, 5), 0);
    }
}
