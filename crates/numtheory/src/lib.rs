//! Number-theoretic toolkit underlying bank-conflict-free GPU algorithms.
//!
//! This crate codifies Appendix A of *Eliminating Bank Conflicts in GPU
//! Mergesort* (Berney & Sitchinava, SPAA 2025): Euclid's division lemma,
//! greatest common divisors, modular inverses, and **complete residue
//! systems** — the machinery used in Sections 3 and 4 of the paper to prove
//! that the load-balanced dual subsequence gather issues every shared-memory
//! bank exactly once per round.
//!
//! The paper-facing highlights are:
//!
//! * [`gcd`], [`extended_gcd`], [`are_coprime`] — Definitions 10–12,
//!   Corollaries 17–18.
//! * [`mod_inverse`] — Definition 15 / Corollary 16.
//! * [`residue::is_complete_residue_system`] and the paper's concrete
//!   residue families [`residue::r_j`], [`residue::r_j_ell`],
//!   [`residue::d_ell`], [`residue::r_prime_j`] — Definition 13, Lemma 1,
//!   Lemma 2, Corollary 3.
//! * [`division::euclid_div`] — Lemma 9, used by the worst-case input
//!   construction of Section 4 (`w = qE + r`).
//!
//! Everything is implemented for plain machine integers (the quantities in
//! play — warp width `w`, elements per thread `E` — are tiny), with the
//! emphasis on *correctness as executable mathematics*: each lemma in the
//! paper has a corresponding function or property test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod division;
pub mod modular;
pub mod residue;

/// Greatest common divisor of `a` and `b` (Definition 10).
///
/// By convention `gcd(0, 0) == 0`; otherwise the result is the unique
/// positive integer dividing both arguments that every common divisor
/// divides (Theorem 11).
///
/// ```
/// use cfmerge_numtheory::gcd;
/// assert_eq!(gcd(32, 15), 1); // Thrust's coprime heuristic: E = 15, w = 32
/// assert_eq!(gcd(32, 12), 4);
/// assert_eq!(gcd(9, 6), 3);   // the paper's Figure 3 example
/// ```
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple of `a` and `b`, or `None` on overflow.
///
/// `lcm(0, 0)` is defined as `Some(0)`.
#[must_use]
pub fn lcm(a: u64, b: u64) -> Option<u64> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    (a / gcd(a, b)).checked_mul(b)
}

/// Whether `a` and `b` are coprime (Definition 12), i.e. `gcd(a, b) == 1`.
///
/// The Thrust mergesort heuristic the paper discusses is exactly "choose
/// `E` such that `are_coprime(E, w)`".
#[must_use]
pub fn are_coprime(a: u64, b: u64) -> bool {
    gcd(a, b) == 1
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` with `g = gcd(a, b)` and `a*x + b*y == g` (Bézout
/// coefficients). All arithmetic is in `i128` so that no intermediate
/// product of two `i64` inputs can overflow.
///
/// ```
/// use cfmerge_numtheory::extended_gcd;
/// let (g, x, y) = extended_gcd(240, 46);
/// assert_eq!(g, 2);
/// assert_eq!(240 * x + 46 * y, 2);
/// ```
#[must_use]
pub fn extended_gcd(a: i64, b: i64) -> (i64, i128, i128) {
    let (mut old_r, mut r) = (i128::from(a), i128::from(b));
    let (mut old_s, mut s) = (1i128, 0i128);
    let (mut old_t, mut t) = (0i128, 1i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
        (old_t, t) = (t, old_t - q * t);
    }
    if old_r < 0 {
        (old_r, old_s, old_t) = (-old_r, -old_s, -old_t);
    }
    (old_r as i64, old_s, old_t)
}

/// Modular inverse of `a` modulo `m` (Definition 15 / Corollary 16).
///
/// Returns `Some(b)` with `a*b ≡ 1 (mod m)` and `0 <= b < m` iff
/// `gcd(a, m) == 1`; otherwise `None`. Corollary 16 guarantees uniqueness,
/// which the property tests exercise.
#[must_use]
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    if m == 0 {
        return None;
    }
    if m == 1 {
        return Some(0);
    }
    let (g, x, _) = extended_gcd((a % m) as i64, m as i64);
    if g != 1 {
        return None;
    }
    Some(x.rem_euclid(i128::from(m)) as u64)
}

/// Corollary 17: for `a = q*b + r`, `gcd(a, b) == gcd(b, r)`.
///
/// Exposed as a checkable predicate (used by the worst-case construction
/// tests, where `w = qE + r` and `d = gcd(w, E) = gcd(E, r)`).
#[must_use]
pub fn corollary17_holds(a: u64, b: u64) -> bool {
    if b == 0 {
        return true;
    }
    let r = a % b;
    gcd(a, b) == gcd(b, r)
}

/// Corollary 18: dividing out the GCD leaves coprime values,
/// `gcd(a/d, b/d) == 1` where `d = gcd(a, b)`.
#[must_use]
pub fn corollary18_holds(a: u64, b: u64) -> bool {
    let d = gcd(a, b);
    if d == 0 {
        return true;
    }
    are_coprime(a / d, b / d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(18, 12), 6);
        assert_eq!(gcd(17, 32), 1);
        assert_eq!(gcd(15, 32), 1);
        assert_eq!(gcd(16, 32), 16);
    }

    #[test]
    fn gcd_paper_parameters() {
        // The two software parameter sets evaluated in Section 5 are both
        // coprime with w = 32, which is why only the coprime gather variant
        // is needed for the headline experiments.
        assert!(are_coprime(15, 32));
        assert!(are_coprime(17, 32));
        // The Figure 3 example is deliberately non-coprime.
        assert_eq!(gcd(9, 6), 3);
        // The Figure 8 example: u = 18, w = 6, E = 4, d = 2.
        assert_eq!(gcd(6, 4), 2);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 0), Some(0));
        assert_eq!(lcm(0, 5), Some(0));
        assert_eq!(lcm(4, 6), Some(12));
        assert_eq!(lcm(32, 15), Some(480));
        assert_eq!(lcm(u64::MAX, 2), None);
    }

    #[test]
    fn extended_gcd_bezout() {
        for &(a, b) in &[(240i64, 46i64), (35, 15), (1, 1), (0, 5), (5, 0), (17, 32)] {
            let (g, x, y) = extended_gcd(a, b);
            assert_eq!(g as u64, gcd(a.unsigned_abs(), b.unsigned_abs()));
            assert_eq!(i128::from(a) * x + i128::from(b) * y, i128::from(g));
        }
    }

    #[test]
    fn extended_gcd_negative_inputs() {
        let (g, x, y) = extended_gcd(-240, 46);
        assert_eq!(g, 2);
        assert_eq!(-240i128 * x + 46 * y, 2);
        let (g, x, y) = extended_gcd(240, -46);
        assert_eq!(g, 2);
        assert_eq!(240i128 * x - 46 * y, 2);
    }

    #[test]
    fn mod_inverse_exists_iff_coprime() {
        assert_eq!(mod_inverse(3, 7), Some(5));
        assert_eq!(mod_inverse(15, 32), Some(15)); // 15*15 = 225 = 7*32 + 1
        assert_eq!(mod_inverse(6, 9), None);
        assert_eq!(mod_inverse(0, 5), None);
        assert_eq!(mod_inverse(4, 0), None);
        assert_eq!(mod_inverse(42, 1), Some(0));
    }

    #[test]
    fn mod_inverse_is_inverse() {
        for m in 2u64..60 {
            for a in 1..m {
                match mod_inverse(a, m) {
                    Some(b) => {
                        assert!(are_coprime(a, m));
                        assert_eq!(a * b % m, 1, "a={a} m={m} b={b}");
                        assert!(b < m);
                    }
                    None => assert!(!are_coprime(a, m)),
                }
            }
        }
    }

    #[test]
    fn corollaries_hold_on_grid() {
        for a in 0u64..120 {
            for b in 0u64..120 {
                assert!(corollary17_holds(a, b), "cor17 a={a} b={b}");
                assert!(corollary18_holds(a, b), "cor18 a={a} b={b}");
            }
        }
    }
}
