//! Complete residue systems (Definition 13) and the concrete residue
//! families of Sections 3.1–3.2.
//!
//! The bank-conflict-freedom proofs in the paper all reduce to showing that
//! the set of shared-memory addresses touched by one warp in one round is a
//! *complete residue system modulo `w`* — i.e. it hits each of the `w`
//! memory banks exactly once. This module provides the generic predicate
//! plus constructors for every residue family the paper names:
//!
//! * [`r_j`] — `R_j = { j + kE : 0 ≤ k < w }` (Lemma 1; a CRS iff
//!   `gcd(w, E) = 1`).
//! * [`r_j_ell`] — `R_j^(ℓ)`, the `ℓ`-th of `d` partitions of `R_j`
//!   (Lemma 2).
//! * [`d_ell`] — `D_ℓ = { ℓ + kd : 0 ≤ k < w/d }` (the residue classes each
//!   partition lands in).
//! * [`r_prime_j`] — `R'_j`, the circularly re-aligned union that Corollary 3
//!   proves to be a CRS for *any* `d = gcd(w, E)`.

use crate::gcd;

/// Whether `set` is a complete residue system modulo `m` (Definition 13):
/// exactly `m` elements, pairwise incongruent (equivalently: their residues
/// cover `{0, …, m-1}`).
#[must_use]
pub fn is_complete_residue_system(set: &[i64], m: u64) -> bool {
    if m == 0 || set.len() != m as usize {
        return false;
    }
    let mut seen = vec![false; m as usize];
    for &x in set {
        let r = x.rem_euclid(m as i64) as usize;
        if seen[r] {
            return false;
        }
        seen[r] = true;
    }
    true
}

/// The residues (mod `m`) of `set`, sorted — handy in tests and debugging.
#[must_use]
pub fn residues(set: &[i64], m: u64) -> Vec<u64> {
    assert!(m > 0);
    let mut v: Vec<u64> = set.iter().map(|&x| x.rem_euclid(m as i64) as u64).collect();
    v.sort_unstable();
    v
}

/// `R_j = { j + kE : 0 ≤ k < w }` — the addresses touched in round `j` by a
/// warp whose threads are staggered at stride `E` (Lemma 1).
///
/// Lemma 1: this is a complete residue system modulo `w` iff
/// `gcd(w, E) = 1`.
#[must_use]
pub fn r_j(j: i64, e: u64, w: u64) -> Vec<i64> {
    (0..w as i64).map(|k| j + k * e as i64).collect()
}

/// `R_j^(ℓ) = { j + (ℓw/d + k)E : 0 ≤ k < w/d }` — the `ℓ`-th of the `d`
/// partitions of `R_j` used in the non-coprime analysis (Section 3.2).
///
/// # Panics
/// Panics unless `ℓ < d` and `d == gcd(w, E)`.
#[must_use]
pub fn r_j_ell(j: i64, ell: u64, e: u64, w: u64) -> Vec<i64> {
    let d = gcd(w, e);
    assert!(d > 0 && ell < d, "partition index {ell} out of range for d={d}");
    let wd = (w / d) as i64;
    (0..wd).map(|k| j + (i64::try_from(ell).unwrap() * wd + k) * e as i64).collect()
}

/// `D_ℓ = { ℓ + kd : 0 ≤ k < w/d }` — the arithmetic progression of
/// residues with common difference `d` starting at `ℓ` (Section 3.2).
#[must_use]
pub fn d_ell(ell: u64, d: u64, w: u64) -> Vec<i64> {
    assert!(d > 0 && w.is_multiple_of(d));
    (0..(w / d) as i64).map(|k| ell as i64 + k * d as i64).collect()
}

/// `R'_j = R_j^(0) ∪ R_{j+1 mod E}^(1) ∪ … ∪ R_{j+d-1 mod E}^(d-1)` — the
/// circularly re-aligned round set of Corollary 3, a complete residue
/// system modulo `w` for **any** `d = gcd(w, E)`.
#[must_use]
pub fn r_prime_j(j: i64, e: u64, w: u64) -> Vec<i64> {
    let d = gcd(w, e);
    assert!(d > 0, "w and E must be positive");
    let e_i = e as i64;
    let mut out = Vec::with_capacity(w as usize);
    for ell in 0..d {
        let j_shift = (j + ell as i64).rem_euclid(e_i);
        out.extend(r_j_ell(j_shift, ell, e, w));
    }
    out
}

/// Checks both parts of Lemma 2 for the partition `R_j^(ℓ)`:
/// (1) every element is congruent (mod `w`) to some element of `D_{j'}`
/// where `j' = j mod d`, and (2) elements are pairwise incongruent.
#[must_use]
pub fn lemma2_holds(j: i64, ell: u64, e: u64, w: u64) -> bool {
    let d = gcd(w, e);
    let part = r_j_ell(j, ell, e, w);
    let target = d_ell(j.rem_euclid(d as i64) as u64, d, w);
    let target_res: Vec<u64> = residues(&target, w);
    // (1) containment of residues
    for &x in &part {
        let r = x.rem_euclid(w as i64) as u64;
        if !target_res.contains(&r) {
            return false;
        }
    }
    // (2) pairwise incongruent
    let mut rs = residues(&part, w);
    rs.dedup();
    rs.len() == part.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corollary14_canonical_residues() {
        // Z_m = {0, …, m−1} is a complete residue system for every m.
        for m in 1u64..=64 {
            let set: Vec<i64> = (0..m as i64).collect();
            assert!(is_complete_residue_system(&set, m));
        }
    }

    #[test]
    fn crs_predicate_basics() {
        assert!(is_complete_residue_system(&[0, 1, 2, 3], 4));
        assert!(is_complete_residue_system(&[4, 9, 14, 19], 4)); // 0,1,2,3
        assert!(is_complete_residue_system(&[-1, 0, 1, 2], 4));
        assert!(!is_complete_residue_system(&[0, 1, 2], 4)); // too small
        assert!(!is_complete_residue_system(&[0, 4, 2, 3], 4)); // 0 repeated
        assert!(!is_complete_residue_system(&[], 0));
    }

    #[test]
    fn lemma1_coprime_stride_is_crs() {
        // Figure 1 left: w = 12, stride 5 (coprime) → CRS.
        assert!(is_complete_residue_system(&r_j(0, 5, 12), 12));
        // Figure 1 right: stride 6 (not coprime) → not a CRS.
        assert!(!is_complete_residue_system(&r_j(0, 6, 12), 12));
        // Paper's main parameters: E = 15 and 17 vs w = 32.
        for j in 0..17 {
            assert!(is_complete_residue_system(&r_j(j, 15, 32), 32));
            assert!(is_complete_residue_system(&r_j(j, 17, 32), 32));
        }
    }

    #[test]
    fn lemma1_exhaustive_small_grid() {
        for w in 1u64..=24 {
            for e in 1u64..=24 {
                for j in -3i64..8 {
                    let crs = is_complete_residue_system(&r_j(j, e, w), w);
                    assert_eq!(
                        crs,
                        crate::are_coprime(w, e),
                        "w={w} E={e} j={j}: Lemma 1 iff condition violated"
                    );
                }
            }
        }
    }

    #[test]
    fn d_ell_union_is_crs() {
        // D = ∪ D_ℓ is a complete residue system (observation before
        // Lemma 2).
        for (w, e) in [(12u64, 6u64), (9, 6), (32, 12), (8, 8)] {
            let d = gcd(w, e);
            let mut all = Vec::new();
            for ell in 0..d {
                all.extend(d_ell(ell, d, w));
            }
            assert!(is_complete_residue_system(&all, w), "w={w} d={d}");
        }
    }

    #[test]
    fn lemma2_grid() {
        for w in 2u64..=18 {
            for e in 2u64..=18 {
                let d = gcd(w, e);
                for j in 0..e as i64 {
                    for ell in 0..d {
                        assert!(lemma2_holds(j, ell, e, w), "w={w} E={e} j={j} ℓ={ell}");
                    }
                }
            }
        }
    }

    #[test]
    fn corollary3_r_prime_is_crs() {
        // The paper's Figure 3 parameters: w = 9, E = 6, d = 3.
        for j in 0..6 {
            assert!(is_complete_residue_system(&r_prime_j(j, 6, 9), 9));
        }
        // Figure 8 parameters: w = 6, E = 4, d = 2.
        for j in 0..4 {
            assert!(is_complete_residue_system(&r_prime_j(j, 4, 6), 6));
        }
        // Exhaustive small grid, including coprime (d = 1) where R'_j = R_j.
        for w in 1u64..=20 {
            for e in 1u64..=20 {
                for j in 0..e as i64 {
                    assert!(
                        is_complete_residue_system(&r_prime_j(j, e, w), w),
                        "w={w} E={e} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma4_gap_structure() {
        // Lemma 4: consecutive partitions' boundary gap is E+1 except at
        // the wrap (j = E-1) where it is 1.
        for (w, e) in [(9u64, 6u64), (12, 8), (16, 12), (20, 15)] {
            let d = gcd(w, e);
            if d < 2 {
                continue;
            }
            for j in 0..e as i64 {
                for ell in 0..d - 1 {
                    let a = *r_j_ell(j, ell, e, w).last().unwrap();
                    let jn = (j + 1).rem_euclid(e as i64);
                    let b = r_j_ell(jn, ell + 1, e, w)[0];
                    let expected = if j < e as i64 - 1 { e as i64 + 1 } else { 1 };
                    assert_eq!(b - a, expected, "w={w} E={e} j={j} ℓ={ell}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn r_j_ell_rejects_bad_partition() {
        let _ = r_j_ell(0, 3, 6, 9); // d = 3, ℓ must be < 3
    }
}
