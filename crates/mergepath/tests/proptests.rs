//! Property tests for the merge-path substrate.

use cfmerge_mergepath::cpu::{merge_sort_par, merge_sort_seq};
use cfmerge_mergepath::diagonal::{merge_path, merge_path_steps};
use cfmerge_mergepath::networks::{batcher_sort, oets_sort};
use cfmerge_mergepath::partition::partition_merge;
use cfmerge_mergepath::serial::{serial_merge, serial_merge_traced, Took};
use proptest::prelude::*;

fn two_sorted() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (proptest::collection::vec(0u32..100, 0..80), proptest::collection::vec(0u32..100, 0..80))
        .prop_map(|(mut a, mut b)| {
            a.sort_unstable();
            b.sort_unstable();
            (a, b)
        })
}

proptest! {
    /// Chunked merges concatenate to the full stable merge, for any chunk
    /// size.
    #[test]
    fn prop_partition_concatenates((a, b) in two_sorted(), chunk in 1usize..40) {
        let mut whole = Vec::new();
        serial_merge(&a, &b, &mut whole);
        let mut chunked = Vec::new();
        for c in partition_merge(&a, &b, chunk) {
            serial_merge(&a[c.a_begin..c.a_end], &b[c.b_begin..c.b_end], &mut chunked);
        }
        prop_assert_eq!(whole, chunked);
    }

    /// merge_path is monotone in the diagonal and bounded by it.
    #[test]
    fn prop_merge_path_monotone((a, b) in two_sorted()) {
        let mut prev = 0usize;
        for diag in 0..=a.len() + b.len() {
            let x = merge_path(&a, &b, diag);
            prop_assert!(x >= prev);
            prop_assert!(x <= diag && diag - x <= b.len());
            prop_assert!(x - prev <= 1, "split advances by at most one per diagonal");
            prev = x;
        }
    }

    /// The search predicate count never exceeds the advertised bound.
    #[test]
    fn prop_merge_path_steps_bound(a_len in 0usize..200, b_len in 0usize..200, diag_frac in 0.0f64..=1.0) {
        let diag = ((a_len + b_len) as f64 * diag_frac) as usize;
        let lo = diag.saturating_sub(b_len);
        let hi = diag.min(a_len);
        let mut range = hi - lo;
        let mut iters = 0u32;
        while range > 0 { range /= 2; iters += 1; }
        prop_assert_eq!(merge_path_steps(diag, a_len, b_len), iters);
    }

    /// The traced merge's consumption pattern reconstructs the output.
    #[test]
    fn prop_trace_reconstructs((a, b) in two_sorted()) {
        let (out, trace) = serial_merge_traced(&a, &b);
        let (mut i, mut j) = (0usize, 0usize);
        let mut rebuilt = Vec::with_capacity(out.len());
        for t in &trace {
            match t {
                Took::A => { rebuilt.push(a[i]); i += 1; }
                Took::B => { rebuilt.push(b[j]); j += 1; }
            }
        }
        prop_assert_eq!(rebuilt, out);
    }

    /// Networks and CPU sorts all agree with std.
    #[test]
    fn prop_all_sorts_agree(v in proptest::collection::vec(any::<u32>(), 0..300)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        let mut s1 = v.clone();
        merge_sort_seq(&mut s1);
        prop_assert_eq!(&s1, &expect);
        let mut s2 = v.clone();
        merge_sort_par(&mut s2, 32);
        prop_assert_eq!(&s2, &expect);
        if v.len() <= 64 {
            let mut s3 = v.clone();
            oets_sort(&mut s3);
            prop_assert_eq!(&s3, &expect);
            let mut s4 = v.clone();
            batcher_sort(&mut s4);
            prop_assert_eq!(&s4, &expect);
        }
    }

    /// Stability of the sequential mergesort, checked via key-tagged
    /// pairs ordered by key only.
    #[test]
    fn prop_seq_mergesort_is_stable(keys in proptest::collection::vec(0u8..8, 0..200)) {
        #[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
        struct Tagged(u8, u32);
        impl PartialOrd for Tagged {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> { Some(self.cmp(o)) }
        }
        impl Ord for Tagged {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering { self.0.cmp(&o.0) }
        }
        let v: Vec<Tagged> =
            keys.iter().enumerate().map(|(i, &k)| Tagged(k, i as u32)).collect();
        let mut sorted = v.clone();
        merge_sort_seq(&mut sorted);
        // Equal keys keep their original (tag) order.
        for w in sorted.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stability violated: {:?}", w);
            }
        }
    }
}
