//! The merge path diagonal search (Green, McColl & Bader, 2012).
//!
//! Given sorted sequences `a` and `b` and an output rank `diag`, the merge
//! path search finds the unique `x` such that the first `diag` elements of
//! the *stable* merge of `a` and `b` consist of `a[..x]` and
//! `b[..diag - x]`. Stability means ties take from `a` first.
//!
//! This is the textbook order statistic (CLRS Exercise 9.3-10) the paper
//! describes in Section 1: each of `t` threads finds its own split in
//! `O(log n)` by a mutual binary search, independently of the others.

/// Stable merge-path split: number of elements the first `diag` outputs of
/// `merge(a, b)` take from `a`.
///
/// Equal keys are taken from `a` first, which makes the overall merge
/// stable and the split unique.
///
/// # Panics
/// Panics if `diag > a.len() + b.len()`.
#[must_use]
pub fn merge_path<T: Ord>(a: &[T], b: &[T], diag: usize) -> usize {
    assert!(
        diag <= a.len() + b.len(),
        "diagonal {diag} beyond merged length {}",
        a.len() + b.len()
    );
    merge_path_by(diag, a.len(), b.len(), |i, j| a[i] <= b[j])
}

/// Generalized merge-path split over index-based comparison.
///
/// `a_le_b(i, j)` must return whether `a[i] <= b[j]` (the stable "take
/// from A" predicate). This form lets the simulator kernels run the same
/// search against shared memory while recording every access, and lets the
/// CF pipeline search through its permuted layout.
///
/// Returns `x ∈ [max(0, diag-b_len), min(diag, a_len)]`, the count taken
/// from `a`.
#[must_use]
pub fn merge_path_by<F: FnMut(usize, usize) -> bool>(
    diag: usize,
    a_len: usize,
    b_len: usize,
    mut a_le_b: F,
) -> usize {
    let mut lo = diag.saturating_sub(b_len);
    let mut hi = diag.min(a_len);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        // Take a[mid] into the prefix iff a[mid] <= b[diag-1-mid]
        // (strictly: iff NOT b[diag-1-mid] < a[mid]).
        if a_le_b(mid, diag - 1 - mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Number of comparison iterations `merge_path_by` performs for the given
/// bounds — the exact loop-trip count, used to charge the search phase in
/// the simulator (every lane runs the full `O(log)` loop, so warp lanes
/// stay aligned).
#[must_use]
pub fn merge_path_steps(diag: usize, a_len: usize, b_len: usize) -> u32 {
    let lo = diag.saturating_sub(b_len);
    let hi = diag.min(a_len);
    let mut range = hi - lo;
    let mut steps = 0;
    while range > 0 {
        range /= 2;
        steps += 1;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: stable-merge the two slices and count prefix A-elements.
    fn oracle(a: &[u32], b: &[u32], diag: usize) -> usize {
        let (mut i, mut j) = (0usize, 0usize);
        for _ in 0..diag {
            if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
                i += 1;
            } else {
                j += 1;
            }
        }
        i
    }

    #[test]
    fn empty_and_degenerate() {
        let e: [u32; 0] = [];
        assert_eq!(merge_path(&e, &e, 0), 0);
        assert_eq!(merge_path(&[1u32, 2], &e, 2), 2);
        assert_eq!(merge_path(&e, &[1u32, 2], 2), 0);
        assert_eq!(merge_path(&[5u32], &[5u32], 1), 1); // tie: A first
    }

    #[test]
    fn all_diagonals_match_oracle() {
        let a: Vec<u32> = vec![1, 3, 3, 5, 7, 9, 9, 9, 11];
        let b: Vec<u32> = vec![2, 3, 4, 9, 9, 10, 12, 12];
        for diag in 0..=a.len() + b.len() {
            assert_eq!(merge_path(&a, &b, diag), oracle(&a, &b, diag), "diag={diag}");
        }
    }

    #[test]
    fn randomized_against_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let la = rng.gen_range(0..40);
            let lb = rng.gen_range(0..40);
            let mut a: Vec<u32> = (0..la).map(|_| rng.gen_range(0..20)).collect();
            let mut b: Vec<u32> = (0..lb).map(|_| rng.gen_range(0..20)).collect();
            a.sort_unstable();
            b.sort_unstable();
            for diag in 0..=la + lb {
                assert_eq!(merge_path(&a, &b, diag), oracle(&a, &b, diag));
            }
        }
    }

    #[test]
    fn splits_are_monotone() {
        let a: Vec<u32> = (0..50).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..50).map(|i| i * 2 + 1).collect();
        let mut prev = 0;
        for diag in 0..=100 {
            let x = merge_path(&a, &b, diag);
            assert!(x >= prev && x <= diag);
            prev = x;
        }
    }

    #[test]
    #[should_panic(expected = "beyond merged length")]
    fn oversized_diagonal_panics() {
        let _ = merge_path(&[1u32], &[2u32], 3);
    }

    #[test]
    fn step_count_bounds_search() {
        // merge_path_by must never call the predicate more than
        // merge_path_steps times.
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (0..100).collect();
        for diag in 0..=200 {
            let mut calls = 0u32;
            let _ = merge_path_by(diag, a.len(), b.len(), |i, j| {
                calls += 1;
                a[i] <= b[j]
            });
            assert!(calls <= merge_path_steps(diag, a.len(), b.len()), "diag={diag}");
        }
    }
}
