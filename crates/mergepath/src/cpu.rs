//! CPU mergesorts built from the same primitives as the GPU pipelines.
//!
//! Two roles: a trusted *oracle* for the simulator pipelines' outputs, and
//! a host-side baseline for the benchmark suite. The parallel variant uses
//! exactly the GPU decomposition — merge-path partitioning into
//! equal-output chunks merged independently — expressed with rayon, per
//! this session's HPC guides.

use crate::partition::partition_merge;
use crate::serial::serial_merge_into;
use rayon::prelude::*;

/// Sequential bottom-up stable mergesort (two-buffer, no recursion).
pub fn merge_sort_seq<T: Ord + Copy + Default>(v: &mut [T]) {
    let n = v.len();
    if n < 2 {
        return;
    }
    let mut buf = vec![T::default(); n];
    let mut src_is_v = true;
    let mut width = 1usize;
    while width < n {
        {
            let (src, dst): (&[T], &mut [T]) = if src_is_v { (&*v, &mut buf) } else { (&buf, v) };
            let mut lo = 0;
            while lo < n {
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                serial_merge_into(&src[lo..mid], &src[mid..hi], &mut dst[lo..hi]);
                lo = hi;
            }
        }
        src_is_v = !src_is_v;
        width *= 2;
    }
    if !src_is_v {
        v.copy_from_slice(&buf);
    }
}

/// Parallel merge-path mergesort: sorts base chunks in parallel, then
/// merges pairs of runs level by level, each merge partitioned into
/// `chunk`-output pieces processed independently (the GPU decomposition,
/// on rayon).
pub fn merge_sort_par<T: Ord + Copy + Default + Send + Sync>(v: &mut [T], chunk: usize) {
    let n = v.len();
    let chunk = chunk.max(1);
    if n <= chunk {
        v.sort();
        return;
    }
    // Sort base runs of `chunk` elements in parallel.
    v.par_chunks_mut(chunk).for_each(<[T]>::sort);

    let mut buf = vec![T::default(); n];
    let mut src_is_v = true;
    let mut width = chunk;
    while width < n {
        {
            let (src, dst): (&[T], &mut [T]) = if src_is_v { (&*v, &mut buf) } else { (&buf, v) };
            // Each pair of runs merges independently; within a pair, each
            // `chunk`-output piece merges independently too.
            let pair = 2 * width;
            let tasks: Vec<(usize, usize, usize)> = (0..n)
                .step_by(pair)
                .map(|lo| (lo, (lo + width).min(n), (lo + pair).min(n)))
                .collect();
            // Fan out over (pair, piece) work items.
            let pieces: Vec<(usize, usize, usize, usize, usize, usize)> = tasks
                .iter()
                .flat_map(|&(lo, mid, hi)| {
                    partition_merge(&src[lo..mid], &src[mid..hi], chunk).into_iter().map(move |c| {
                        (
                            lo + c.a_begin,
                            lo + c.a_end,
                            mid + c.b_begin,
                            mid + c.b_end,
                            lo + c.out_begin,
                            c.len(),
                        )
                    })
                })
                .collect();
            // Safety-free parallel writes: split dst by disjoint ranges.
            // We process pieces in parallel by chunking the output slice.
            let mut slots: Vec<&mut [T]> = Vec::with_capacity(pieces.len());
            let mut rest = dst;
            let mut cursor = 0usize;
            for &(_, _, _, _, out_b, len) in &pieces {
                debug_assert_eq!(out_b, cursor);
                let (head, tail) = rest.split_at_mut(len);
                slots.push(head);
                rest = tail;
                cursor += len;
            }
            pieces.par_iter().zip(slots.into_par_iter()).for_each(
                |(&(a_b, a_e, b_b, b_e, _, _), slot)| {
                    serial_merge_into(&src[a_b..a_e], &src[b_b..b_e], slot);
                },
            );
        }
        src_is_v = !src_is_v;
        width = pair_width(width, n);
    }
    if !src_is_v {
        v.copy_from_slice(&buf);
    }
}

fn pair_width(width: usize, n: usize) -> usize {
    // Avoid overflow on pathological sizes.
    width.saturating_mul(2).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn seq_sorts() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(21);
        for n in [0usize, 1, 2, 3, 17, 100, 1023, 4096] {
            let mut v: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            merge_sort_seq(&mut v);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn par_sorts_many_shapes() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(22);
        for n in [0usize, 1, 5, 64, 100, 1000, 10_000] {
            for chunk in [1usize, 7, 64, 480] {
                let mut v: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
                let mut expect = v.clone();
                expect.sort_unstable();
                merge_sort_par(&mut v, chunk);
                assert_eq!(v, expect, "n={n} chunk={chunk}");
            }
        }
    }

    #[test]
    fn par_sorts_adversarial_patterns() {
        for n in [511usize, 512, 513] {
            // Already sorted, reversed, all-equal, sawtooth.
            let patterns: Vec<Vec<u32>> = vec![
                (0..n as u32).collect(),
                (0..n as u32).rev().collect(),
                vec![7; n],
                (0..n as u32).map(|i| i % 10).collect(),
            ];
            for mut v in patterns {
                let mut expect = v.clone();
                expect.sort_unstable();
                merge_sort_par(&mut v, 97);
                assert_eq!(v, expect);
            }
        }
    }
}
