//! Per-thread serial merges.
//!
//! After partitioning, each GPU thread merges its `(Aᵢ, Bᵢ)` pair with a
//! plain two-finger scan — `E` steps, one element consumed per step. This
//! module provides the pure version, plus an instrumented variant that
//! reports *which* list each step consumed from: the consumption pattern
//! is exactly the `(aᵢ, bᵢ)` tuple language of Section 4's worst-case
//! construction, so tests use it to verify constructed inputs realize
//! their intended patterns.

/// Which list a serial-merge step consumed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Took {
    /// The step consumed the next element of A.
    A,
    /// The step consumed the next element of B.
    B,
}

/// Stable two-finger merge of `a` and `b`, appended to `out`.
///
/// Ties take from `a` first (matching [`crate::merge_path`], so chunked
/// merges concatenate into the exact global merge).
pub fn serial_merge<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Stable merge writing into a pre-sized slice; `out.len()` must equal
/// `a.len() + b.len()`.
///
/// # Panics
/// Panics on length mismatch.
pub fn serial_merge_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(out.len(), a.len() + b.len(), "output slice has the wrong length");
    let (mut i, mut j) = (0usize, 0usize);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Instrumented stable merge: returns the merged output together with the
/// per-step consumption pattern.
#[must_use]
pub fn serial_merge_traced<T: Ord + Copy>(a: &[T], b: &[T]) -> (Vec<T>, Vec<Took>) {
    let n = a.len() + b.len();
    let mut out = Vec::with_capacity(n);
    let mut trace = Vec::with_capacity(n);
    let (mut i, mut j) = (0usize, 0usize);
    for _ in 0..n {
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            out.push(a[i]);
            trace.push(Took::A);
            i += 1;
        } else {
            out.push(b[j]);
            trace.push(Took::B);
            j += 1;
        }
    }
    (out, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_match_sort() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        for _ in 0..100 {
            let la = rng.gen_range(0..30);
            let lb = rng.gen_range(0..30);
            let mut a: Vec<u32> = (0..la).map(|_| rng.gen_range(0..15)).collect();
            let mut b: Vec<u32> = (0..lb).map(|_| rng.gen_range(0..15)).collect();
            a.sort_unstable();
            b.sort_unstable();
            let mut expect: Vec<u32> = a.iter().chain(&b).copied().collect();
            expect.sort_unstable();

            let mut out = Vec::new();
            serial_merge(&a, &b, &mut out);
            assert_eq!(out, expect);

            let mut out2 = vec![0u32; la + lb];
            serial_merge_into(&a, &b, &mut out2);
            assert_eq!(out2, expect);

            let (out3, trace) = serial_merge_traced(&a, &b);
            assert_eq!(out3, expect);
            assert_eq!(trace.iter().filter(|&&t| t == Took::A).count(), la);
        }
    }

    #[test]
    fn stability_ties_take_a_first() {
        let (_, trace) = serial_merge_traced(&[5u32, 5], &[5u32, 5]);
        assert_eq!(trace, vec![Took::A, Took::A, Took::B, Took::B]);
    }

    #[test]
    fn empty_sides() {
        let mut out = Vec::new();
        serial_merge::<u32>(&[], &[], &mut out);
        assert!(out.is_empty());
        serial_merge(&[1u32, 2], &[], &mut out);
        assert_eq!(out, vec![1, 2]);
        out.clear();
        serial_merge(&[], &[3u32], &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_output_length_panics() {
        let mut out = vec![0u32; 3];
        serial_merge_into(&[1u32], &[2u32], &mut out);
    }

    #[test]
    fn traced_pattern_reflects_interleaving() {
        let a = [0u32, 2, 4];
        let b = [1u32, 3, 5];
        let (_, trace) = serial_merge_traced(&a, &b);
        assert_eq!(trace, vec![Took::A, Took::B, Took::A, Took::B, Took::A, Took::B]);
    }
}
