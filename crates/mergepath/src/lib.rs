//! # cfmerge-mergepath — merge path partitioning and merge primitives
//!
//! The algorithmic substrate beneath both mergesort pipelines in this
//! repository:
//!
//! * [`diagonal`] — the *merge path* order-statistic search of Green,
//!   McColl & Bader (2012): given two sorted sequences and an output rank,
//!   a mutual binary search finds the unique stable split in `O(log n)`
//!   time. Thrust's mergesort uses it at two levels (global and shared);
//!   so do we.
//! * [`partition`] — equal-output-size partitioning of a merge into
//!   independent `(Aᵢ, Bᵢ)` chunks.
//! * [`serial`] — the per-thread stable serial merge, plus an instrumented
//!   variant that reports its consumption pattern (used to validate the
//!   worst-case construction of Section 4).
//! * [`networks`] — data-oblivious sorting/merging networks (odd-even
//!   transposition, Batcher odd-even merge) used for register-space
//!   processing, with exact compare-exchange counts for the timing model.
//! * [`cpu`] — sequential and rayon-parallel CPU mergesorts built from the
//!   same pieces: the correctness oracle and a CPU baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod diagonal;
pub mod networks;
pub mod partition;
pub mod serial;

pub use diagonal::merge_path;
pub use partition::{partition_merge, MergeChunk};
pub use serial::serial_merge;
