//! Partitioning a merge into equal-output chunks.
//!
//! Thrust's mergesort partitions every merge twice: once in global memory
//! (one chunk per thread block, `u·E` outputs each) and once in shared
//! memory (one chunk per thread, `E` outputs each). Both reduce to the
//! same operation: cut the merge path at every multiple of the chunk size.

use crate::diagonal::merge_path;

/// One chunk of a partitioned merge: the `i`-th chunk merges
/// `a[a_begin..a_end]` with `b[b_begin..b_end]` to produce outputs
/// `[out_begin, out_begin + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeChunk {
    /// First A index consumed by this chunk (the paper's `aᵢ`).
    pub a_begin: usize,
    /// One past the last A index.
    pub a_end: usize,
    /// First B index consumed (the paper's `bᵢ`).
    pub b_begin: usize,
    /// One past the last B index.
    pub b_end: usize,
    /// Output rank of the chunk's first element.
    pub out_begin: usize,
}

impl MergeChunk {
    /// Elements consumed from A (`|Aᵢ|`).
    #[must_use]
    pub fn a_len(&self) -> usize {
        self.a_end - self.a_begin
    }

    /// Elements consumed from B (`|Bᵢ|`).
    #[must_use]
    pub fn b_len(&self) -> usize {
        self.b_end - self.b_begin
    }

    /// Total outputs produced (`|Aᵢ| + |Bᵢ|`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.a_len() + self.b_len()
    }

    /// Whether the chunk is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Cut the stable merge of `a` and `b` into chunks of `chunk` outputs each
/// (the final chunk may be shorter).
///
/// # Panics
/// Panics if `chunk == 0`.
#[must_use]
pub fn partition_merge<T: Ord>(a: &[T], b: &[T], chunk: usize) -> Vec<MergeChunk> {
    assert!(chunk > 0, "chunk size must be positive");
    let total = a.len() + b.len();
    let chunks = total.div_ceil(chunk);
    let mut out = Vec::with_capacity(chunks);
    let mut prev_diag = 0usize;
    let mut prev_x = 0usize;
    for c in 1..=chunks {
        let diag = (c * chunk).min(total);
        let x = merge_path(a, b, diag);
        out.push(MergeChunk {
            a_begin: prev_x,
            a_end: x,
            b_begin: prev_diag - prev_x,
            b_end: diag - x,
            out_begin: prev_diag,
        });
        prev_diag = diag;
        prev_x = x;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_partition(a: &[u32], b: &[u32], chunk: usize) {
        let parts = partition_merge(a, b, chunk);
        let total = a.len() + b.len();
        assert_eq!(parts.len(), total.div_ceil(chunk));
        // Chunks tile both inputs exactly, in order, with full chunks of
        // the requested size except possibly the last.
        let mut a_pos = 0;
        let mut b_pos = 0;
        let mut out_pos = 0;
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.a_begin, a_pos);
            assert_eq!(p.b_begin, b_pos);
            assert_eq!(p.out_begin, out_pos);
            let expect = if i + 1 == parts.len() { total - out_pos } else { chunk };
            assert_eq!(p.len(), expect);
            a_pos = p.a_end;
            b_pos = p.b_end;
            out_pos += p.len();
        }
        assert_eq!(a_pos, a.len());
        assert_eq!(b_pos, b.len());
        // Merging the chunks independently reproduces the full merge.
        let mut merged = Vec::with_capacity(total);
        for p in &parts {
            crate::serial::serial_merge(
                &a[p.a_begin..p.a_end],
                &b[p.b_begin..p.b_end],
                &mut merged,
            );
        }
        let mut expect: Vec<u32> = a.iter().chain(b).copied().collect();
        expect.sort_unstable();
        assert_eq!(merged, expect);
    }

    #[test]
    fn partitions_tile_inputs() {
        let a: Vec<u32> = (0..37).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..23).map(|i| i * 5).collect();
        for chunk in [1, 2, 5, 15, 17, 60, 100] {
            check_partition(&a, &b, chunk);
        }
    }

    #[test]
    fn skewed_inputs() {
        let a: Vec<u32> = (0..64).collect();
        let b: Vec<u32> = (1000..1004).collect();
        check_partition(&a, &b, 16);
        check_partition(&b, &a, 16);
        check_partition(&a, &[], 16);
        check_partition(&[], &a, 16);
    }

    #[test]
    fn duplicate_heavy_inputs() {
        let a = vec![5u32; 40];
        let b = vec![5u32; 24];
        let parts = partition_merge(&a, &b, 8);
        // Stability: all of A must be consumed before any tie from B.
        assert_eq!(
            parts[0],
            MergeChunk { a_begin: 0, a_end: 8, b_begin: 0, b_end: 0, out_begin: 0 }
        );
        let x_total: usize = parts.iter().map(MergeChunk::a_len).sum();
        assert_eq!(x_total, 40);
        check_partition(&a, &b, 8);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        let _ = partition_merge::<u32>(&[], &[], 0);
    }
}
