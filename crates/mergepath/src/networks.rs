//! Data-oblivious sorting and merging networks.
//!
//! Once the dual subsequence gather has moved a thread's `E` elements into
//! registers, they must be processed *without data-dependent indexing* —
//! on real GPUs, dynamically indexed "register" arrays are spilled to
//! local memory by the compiler (Section 5 of the paper). The fix is a
//! fixed compare-exchange schedule. The paper adopts Thrust's **odd-even
//! transposition sort**; we implement it plus Batcher's odd-even
//! mergesort and the bitonic merger as ablations, each reporting its exact
//! compare-exchange count so the simulator can charge ALU time.

/// Odd-even transposition sort (Habermann 1972): `n` rounds of
/// alternating-parity adjacent compare-exchanges. Works for any `n` and
/// any input. Returns the number of compare-exchanges performed.
pub fn oets_sort<T: Ord>(v: &mut [T]) -> u64 {
    let n = v.len();
    let mut ops = 0u64;
    for round in 0..n {
        let start = round % 2;
        let mut i = start;
        while i + 1 < n {
            if v[i] > v[i + 1] {
                v.swap(i, i + 1);
            }
            ops += 1;
            i += 2;
        }
    }
    ops
}

/// Exact compare-exchange count of [`oets_sort`] on `n` elements
/// (independent of data — the network is oblivious).
#[must_use]
pub fn oets_ops(n: usize) -> u64 {
    let n = n as u64;
    let even_rounds = n.div_ceil(2); // rounds 0, 2, 4, …
    let odd_rounds = n / 2;
    even_rounds * (n / 2) + odd_rounds * ((n.saturating_sub(1)) / 2)
}

/// Batcher's odd-even mergesort for arbitrary `n` (via virtual padding to
/// the next power of two with +∞ sentinels; compare-exchanges touching a
/// sentinel are provably no-ops and are skipped). Returns the number of
/// compare-exchanges actually executed.
pub fn batcher_sort<T: Ord>(v: &mut [T]) -> u64 {
    let n = v.len();
    if n < 2 {
        return 0;
    }
    // Classic iterative formulation (valid for arbitrary n; exhaustively
    // verified below by the 0-1 principle).
    let mut ops = 0u64;
    let mut p = 1usize;
    while p < n {
        let mut k = p;
        loop {
            let mut j = k % p;
            while j + k < n {
                for i in 0..k {
                    let x = i + j;
                    let y = i + j + k;
                    if y < n && x / (2 * p) == y / (2 * p) {
                        if v[x] > v[y] {
                            v.swap(x, y);
                        }
                        ops += 1;
                    }
                }
                j += 2 * k;
            }
            if k == 1 {
                break;
            }
            k /= 2;
        }
        p *= 2;
    }
    ops
}

/// Bitonic merge: sorts any *bitonic* sequence (ascending then descending,
/// or any circular rotation thereof — exactly the shape the dual
/// subsequence gather leaves in registers). Length must be a power of
/// two. Returns compare-exchange count (`(n/2)·log₂n`).
///
/// # Panics
/// Panics if `v.len()` is not a power of two.
pub fn bitonic_merge<T: Ord>(v: &mut [T]) -> u64 {
    let n = v.len();
    assert!(n.is_power_of_two(), "bitonic merge requires a power-of-two length, got {n}");
    let mut ops = 0u64;
    let mut k = n / 2;
    while k >= 1 {
        for i in 0..n {
            let j = i | k;
            if j != i {
                if v[i] > v[j] {
                    v.swap(i, j);
                }
                ops += 1;
            }
        }
        k /= 2;
    }
    ops
}

/// Compare-exchange count of [`bitonic_merge`].
#[must_use]
pub fn bitonic_merge_ops(n: usize) -> u64 {
    assert!(n.is_power_of_two());
    (n as u64 / 2) * n.trailing_zeros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn oets_sorts_random_inputs() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        for n in 0..40 {
            let mut v: Vec<u32> = (0..n).map(|_| rng.gen_range(0..50)).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            let ops = oets_sort(&mut v);
            assert_eq!(v, expect, "n={n}");
            assert_eq!(ops, oets_ops(n as usize), "n={n}");
        }
    }

    #[test]
    fn oets_zero_one_principle() {
        // A comparison network sorts all inputs iff it sorts all 0-1
        // inputs (Knuth). Exhaustive for n ≤ 10.
        for n in 0..=10usize {
            for mask in 0u32..(1 << n) {
                let mut v: Vec<u32> = (0..n).map(|i| (mask >> i) & 1).collect();
                oets_sort(&mut v);
                assert!(v.is_sorted(), "n={n} mask={mask:b}");
            }
        }
    }

    #[test]
    fn oets_ops_paper_parameters() {
        // E = 15: 8 even rounds × 7 + 7 odd rounds × 7 = 105.
        assert_eq!(oets_ops(15), 105);
        // E = 17: 9 × 8 + 8 × 8 = 136.
        assert_eq!(oets_ops(17), 136);
        assert_eq!(oets_ops(0), 0);
        assert_eq!(oets_ops(1), 0);
        assert_eq!(oets_ops(2), 1);
    }

    #[test]
    fn batcher_zero_one_principle() {
        for n in 0..=12usize {
            for mask in 0u32..(1 << n) {
                let mut v: Vec<u32> = (0..n).map(|i| (mask >> i) & 1).collect();
                batcher_sort(&mut v);
                assert!(v.is_sorted(), "n={n} mask={mask:b}");
            }
        }
    }

    #[test]
    fn batcher_sorts_random_and_is_cheaper_than_oets() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        for n in [15usize, 17, 32, 100] {
            let mut v: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            let ops = batcher_sort(&mut v);
            assert_eq!(v, expect);
            if n >= 8 {
                // O(n log² n) < O(n²) for the sizes we care about.
                assert!(ops < oets_ops(n), "n={n} batcher={ops} oets={}", oets_ops(n));
            }
        }
    }

    #[test]
    fn bitonic_merge_handles_rotated_bitonic() {
        // Ascending-then-descending, plus every rotation of it, is
        // bitonic; the merger must sort them all.
        let base: Vec<u32> = vec![1, 3, 5, 7, 8, 6, 4, 2];
        for rot in 0..base.len() {
            let mut v: Vec<u32> = base[rot..].iter().chain(&base[..rot]).copied().collect();
            let ops = bitonic_merge(&mut v);
            assert!(v.is_sorted(), "rot={rot}");
            assert_eq!(ops, bitonic_merge_ops(8));
        }
    }

    #[test]
    fn bitonic_merge_is_exactly_the_gather_shape() {
        // A ascending followed by B descending — the register layout the
        // CF gather produces (before rotation).
        let a = [2u32, 9, 11, 12];
        let b = [10u32, 7, 3, 1];
        let mut v: Vec<u32> = a.iter().chain(&b).copied().collect();
        bitonic_merge(&mut v);
        assert_eq!(v, vec![1, 2, 3, 7, 9, 10, 11, 12]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bitonic_merge_rejects_non_power_of_two() {
        let mut v = vec![3u32, 1, 2];
        let _ = bitonic_merge(&mut v);
    }

    #[test]
    fn networks_are_oblivious_op_counts() {
        // Same length → same op count regardless of data.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        for n in [7usize, 15, 16, 17] {
            let mut v1: Vec<u32> = (0..n as u32).collect();
            let mut v2: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
            assert_eq!(oets_sort(&mut v1), oets_sort(&mut v2));
            let mut v1: Vec<u32> = (0..n as u32).rev().collect();
            let mut v2: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
            assert_eq!(batcher_sort(&mut v1), batcher_sort(&mut v2));
        }
    }
}
