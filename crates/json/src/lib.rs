//! Dependency-free JSON for run artifacts and trace export.
//!
//! The workspace builds offline, so instead of `serde`/`serde_json` it
//! carries this small crate: a [`Json`] value type with **insertion-ordered
//! objects** (artifact files diff cleanly), a strict parser, compact and
//! pretty writers, and the [`ToJson`]/[`FromJson`] conversion traits the
//! simulator's types implement.
//!
//! Numbers are stored as `f64`, which is exact for every integer the
//! simulator emits (counters fit in 53 bits; a counter overflowing 2^53
//! would mean ~9·10^15 simulated transactions). Writing uses Rust's
//! shortest-round-trip float formatting, so values survive
//! write → parse → write unchanged.

#![forbid(unsafe_code)]

use std::fmt;

/// A JSON document: the usual six value kinds, with objects kept in
/// insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (see crate docs on integer exactness).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order and may not repeat.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`] and the [`FromJson`] impls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description, with byte offset for parse errors.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// Build an error from anything displayable.
    pub fn new(message: impl fmt::Display) -> Self {
        Self { message: message.to_string() }
    }
}

/// Types that render themselves as a [`Json`] value.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types that reconstruct themselves from a [`Json`] value.
pub trait FromJson: Sized {
    /// Convert from a JSON value, validating shape.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Build an object from key/value pairs (keys keep this order).
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Member lookup on objects; `None` on other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required member lookup, with a path-bearing error.
    pub fn req(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError::new(format!("missing object key {key:?}")))
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(63) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a usize, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Typed required member: `self[key]` as `T`.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        T::from_json(self.req(key)?).map_err(|e| JsonError::new(format!("in key {key:?}: {e}")))
    }

    /// Typed optional member: `self[key]` as `Some(T)`, or `None` when the
    /// key is absent or `null`.
    pub fn field_opt<T: FromJson>(&self, key: &str) -> Result<Option<T>, JsonError> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => T::from_json(v)
                .map(Some)
                .map_err(|e| JsonError::new(format!("in key {key:?}: {e}"))),
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_string(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        // JSON has no Infinity/NaN; emitting null matches the common
        // lenient-writer convention and keeps documents parseable.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else if n != 0.0 && (n.abs() >= 1e16 || n.abs() < 1e-5) {
        // Display never uses an exponent; avoid hundred-digit expansions.
        let _ = write!(out, "{n:e}");
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: \uD800-\uDBFF must be
                            // followed by a low surrogate escape.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

macro_rules! impl_json_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(n: $t) -> Json { Json::Num(n as f64) }
        }
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::Num(*self as f64) }
        }
    )*};
}
impl_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_json_num_from {
    ($($t:ty => $conv:ident),*) => {$(
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                v.$conv()
                    .map(|n| n as $t)
                    .ok_or_else(|| JsonError::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_json_num_from!(u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64,
                    usize => as_u64, f32 => as_f64, f64 => as_f64);

impl FromJson for i64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(63) => Ok(*n as i64),
            _ => Err(JsonError::new("expected i64")),
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_owned).ok_or_else(|| JsonError::new("expected string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(t) => t.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compact_and_pretty() {
        let doc = Json::obj([
            ("name", Json::from("cf-merge")),
            ("n", Json::from(1u64 << 20)),
            ("ratio", Json::from(0.125)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            ("xs", Json::arr([Json::from(1), Json::from(2), Json::from(3)])),
            ("nested", Json::obj([("k", Json::from("v"))])),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"z": 1, "a": 2, "m": 3}"#;
        let keys: Vec<String> =
            Json::parse(text).unwrap().as_obj().unwrap().iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(42u64).to_string_compact(), "42");
        assert_eq!(Json::from(-7i64).to_string_compact(), "-7");
        assert_eq!(Json::from(2.5).to_string_compact(), "2.5");
        assert_eq!(Json::from(1e300).to_string_compact(), "1e300");
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        assert_eq!(Json::from(f64::INFINITY).to_string_compact(), "null");
        assert_eq!(Json::from(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}snowman\u{2603}";
        let text = Json::from(s).to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), Json::from(s));
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(
            Json::parse(r#""\u2603 \ud83d\ude00""#).unwrap(),
            Json::from("\u{2603} \u{1F600}")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01e",
            "\"\\x\"",
            "{\"a\":1,\"a\":2}",
            "[1] []",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn numbers_parse_all_forms() {
        for (text, val) in [("0", 0.0), ("-0.5", -0.5), ("1e3", 1000.0), ("2.5E-2", 0.025)] {
            assert_eq!(Json::parse(text).unwrap(), Json::Num(val));
        }
    }

    #[test]
    fn typed_field_access() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "xs": [1, 2], "maybe": null}"#).unwrap();
        assert_eq!(v.field::<u64>("n").unwrap(), 3);
        assert_eq!(v.field::<String>("s").unwrap(), "x");
        assert_eq!(v.field::<Vec<u32>>("xs").unwrap(), vec![1, 2]);
        assert_eq!(v.field_opt::<f64>("maybe").unwrap(), None);
        assert_eq!(v.field_opt::<f64>("absent").unwrap(), None);
        assert!(v.field::<u64>("s").is_err());
        assert!(v.field::<u64>("absent").is_err());
    }
}
