//! Property tests for the simulator's accounting invariants.

use cfmerge_gpu_sim::banks::BankModel;
use cfmerge_gpu_sim::block::BlockSim;
use cfmerge_gpu_sim::global::{efficiency, sectors_touched};
use cfmerge_gpu_sim::profiler::PhaseClass;
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    /// round_cost equals the brute-force definition: max over banks of
    /// the number of distinct words in that bank.
    #[test]
    fn prop_round_cost_matches_definition(
        w in 1u32..=64,
        addrs in proptest::collection::vec(0u32..512, 0..64),
    ) {
        let addrs: Vec<u32> = addrs.into_iter().take(w as usize).collect();
        let m = BankModel::new(w);
        let cost = m.round_cost(&addrs);
        let mut per_bank: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); w as usize];
        for &a in &addrs {
            per_bank[(a % w) as usize].insert(a);
        }
        let expect = per_bank.iter().map(|s| s.len() as u32).max().unwrap_or(0);
        prop_assert_eq!(cost.transactions, expect);
        prop_assert_eq!(cost.conflicts, expect.saturating_sub(1));
        prop_assert_eq!(cost.active_lanes as usize, addrs.len());
    }

    /// Transactions are invariant under lane permutation and under adding
    /// a duplicate of an existing address (broadcast).
    #[test]
    fn prop_round_cost_permutation_and_broadcast_invariance(
        mut addrs in proptest::collection::vec(0u32..256, 1..32),
    ) {
        let m = BankModel::nvidia();
        let base = m.round_cost(&addrs).transactions;
        addrs.reverse();
        prop_assert_eq!(m.round_cost(&addrs).transactions, base);
        let dup = addrs[0];
        let mut with_dup = addrs.clone();
        with_dup.push(dup);
        prop_assert_eq!(m.round_cost(&with_dup).transactions, base);
    }

    /// Strided access cost is gcd(stride, w) — the classical fact behind
    /// Thrust's coprime heuristic.
    #[test]
    fn prop_stride_cost_is_gcd(w in 1u32..=64, base in 0u32..128, stride in 1u32..=128) {
        let m = BankModel::new(w);
        let g = cfmerge_numtheory::gcd(u64::from(stride), u64::from(w)) as u32;
        prop_assert_eq!(m.strided_cost(base, stride).transactions, g);
    }

    /// Sector accounting: between ceil(lanes/8) (perfect coalescing) and
    /// lanes (fully scattered); efficiency in (0, 1].
    #[test]
    fn prop_sector_bounds(idx in proptest::collection::vec(0u64..(1 << 24), 1..32)) {
        let distinct: BTreeSet<u64> = idx.iter().copied().collect();
        let s = sectors_touched(&idx);
        prop_assert!(s >= 1);
        prop_assert!(s <= distinct.len() as u64);
        let e = efficiency(&idx);
        prop_assert!(e > 0.0 && e <= 1.0 + 1e-12);
    }

    /// The engine's ledger: a phase of per-lane unit-stride stores then
    /// loads always produces transactions == requests (no conflicts), and
    /// data round-trips.
    #[test]
    fn prop_unit_stride_phases_clean(warps in 1usize..=4, rounds in 1usize..=8) {
        let w = 32usize;
        let u = w * warps;
        let mut block = BlockSim::<u32>::new(BankModel::nvidia(), u, u * rounds);
        block.phase(PhaseClass::LoadTile, |tid, lane| {
            for r in 0..rounds {
                lane.st(r * u + tid, (r * u + tid) as u32);
            }
        });
        block.phase(PhaseClass::Merge, |tid, lane| {
            for r in 0..rounds {
                let v = lane.ld(r * u + tid);
                assert_eq!(v, (r * u + tid) as u32);
            }
        });
        let t = block.profile.total();
        prop_assert_eq!(t.shared_st_transactions, t.shared_st_requests);
        prop_assert_eq!(t.shared_ld_transactions, t.shared_ld_requests);
        prop_assert_eq!(t.shared_ld_requests as usize, rounds * warps);
    }
}
