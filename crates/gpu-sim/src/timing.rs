//! Cycle-level timing model: converts profiled access counts into
//! simulated kernel runtimes.
//!
//! Absolute GPU runtimes cannot be measured off-GPU, so the model prices a
//! kernel from its exact profiled counters via four throughput/latency
//! terms and a documented set of constants ([`TimingModel`]):
//!
//! ```text
//! global  = sector_bytes / (peak_bw · bw_eff · occupancy^γ)
//! shared  = shared_transactions · c_tx / (SMs_busy · clock)
//! latency = shared_requests · c_lat / (SMs_busy · resident_warps · clock)
//! alu     = alu_ops / (SMs_busy · ipc · clock)
//! time    = launch + max(terms) + β · (Σ other terms)
//! ```
//!
//! * `shared` is the bank/LSU pipe: one transaction per cycle per SM, so
//!   conflict replays consume pipe slots — this is the term the worst-case
//!   inputs inflate.
//! * `latency` charges the dependent-chain cost of serial merges (each
//!   step's address depends on the previous load); it is divided by the
//!   resident warp count because independent warps hide each other's
//!   latency — this is how occupancy (the `E=15,u=512` vs `E=17,u=256`
//!   difference) enters.
//! * `bw_eff < 1` reflects that latency-bound sorting kernels do not reach
//!   peak DRAM bandwidth; it degrades further at partial occupancy.
//! * `β` accounts for imperfect overlap between the memory pipes.
//!
//! The constants are calibrated **once**, against published anchors (see
//! DESIGN.md §5), and shared by every experiment in this repository; no
//! per-experiment tuning.

use crate::device::Device;
use crate::occupancy::{occupancy, BlockResources, Occupancy};
use crate::profiler::PhaseCounters;
use cfmerge_json::{FromJson, Json, JsonError, ToJson};

/// A kernel launch shape: grid size plus per-block resource demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub blocks: u64,
    /// Per-block resources (threads, shared bytes, registers).
    pub resources: BlockResources,
}

/// Timing-model constants. See module docs for the formula.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Fixed host-side launch overhead per kernel, seconds.
    pub launch_overhead_s: f64,
    /// Cycles one shared-memory transaction occupies an SM's LSU pipe.
    pub shared_tx_cycles: f64,
    /// Exposed latency cycles per dependent shared request (per warp).
    pub shared_req_latency_cycles: f64,
    /// Scalar ALU operations retired per cycle per SM.
    pub alu_per_cycle_per_sm: f64,
    /// Fraction of peak DRAM bandwidth achieved at 100% occupancy.
    pub bw_efficiency_full: f64,
    /// Bandwidth efficiency scales as `occupancy^γ`.
    pub bw_occupancy_exponent: f64,
    /// Fraction of the non-dominant terms *not* hidden behind the largest.
    pub overlap_exposure: f64,
}

impl TimingModel {
    /// Constants calibrated against the RTX 2080 Ti anchors in DESIGN.md
    /// §5 (Thrust-on-random throughput; the ≈1.4× worst-case slowdown at
    /// `E=15,u=512`; CF ≈ Thrust-on-random).
    #[must_use]
    pub fn rtx2080ti_like() -> Self {
        Self {
            launch_overhead_s: 3e-6,
            shared_tx_cycles: 6.8,
            shared_req_latency_cycles: 25.0,
            alu_per_cycle_per_sm: 20.0,
            bw_efficiency_full: 0.40,
            bw_occupancy_exponent: 1.3,
            overlap_exposure: 0.35,
        }
    }

    /// Price one kernel launch from its aggregated counters.
    ///
    /// # Errors
    /// Returns the [`occupancy`] error if `launch.resources` cannot launch
    /// on `dev` at all — a non-launchable configuration has no runtime.
    pub fn kernel_time(
        &self,
        dev: &Device,
        totals: &PhaseCounters,
        launch: &LaunchConfig,
    ) -> Result<TimeBreakdown, &'static str> {
        let occ = occupancy(dev, &launch.resources)?;
        let sms_busy = f64::from(dev.sm_count)
            .min(launch.blocks as f64 / f64::from(occ.blocks_per_sm.max(1)))
            .max(1.0);
        let clock = dev.clock_hz;

        let bytes = totals.global_sectors() as f64 * crate::global::SECTOR_BYTES as f64;
        let bw_eff = self.bw_efficiency_full * occ.fraction.powf(self.bw_occupancy_exponent);
        // Bandwidth also scales with the fraction of the chip occupied.
        let chip_fraction = sms_busy / f64::from(dev.sm_count);
        let global_s =
            if bytes == 0.0 { 0.0 } else { bytes / (dev.mem_bandwidth * bw_eff * chip_fraction) };

        let shared_s =
            totals.shared_transactions() as f64 * self.shared_tx_cycles / (sms_busy * clock);

        let resident = f64::from(occ.warps_per_sm.max(1));
        let latency_s = totals.shared_requests() as f64 * self.shared_req_latency_cycles
            / (sms_busy * resident * clock);

        let alu_s = totals.alu_ops as f64 / (sms_busy * self.alu_per_cycle_per_sm * clock);

        let terms = [global_s, shared_s, latency_s, alu_s];
        let dominant = terms.iter().cloned().fold(0.0, f64::max);
        let rest: f64 = terms.iter().sum::<f64>() - dominant;
        let seconds = self.launch_overhead_s + dominant + self.overlap_exposure * rest;

        Ok(TimeBreakdown {
            seconds,
            global_s,
            shared_s,
            latency_s,
            alu_s,
            launch_s: self.launch_overhead_s,
            occupancy: occ,
        })
    }

    /// Price an auxiliary launch — a hedged duplicate of straggling
    /// blocks or a circuit-breaker probe — enqueued device-side while the
    /// primary launch is still in flight. The work is priced in full by
    /// the same formula as [`TimingModel::kernel_time`]; only the fixed
    /// host-side launch overhead is waived, because the host never
    /// returns between the primary and the auxiliary launch.
    ///
    /// # Errors
    /// Same contract as [`TimingModel::kernel_time`].
    pub fn auxiliary_launch_time(
        &self,
        dev: &Device,
        totals: &PhaseCounters,
        launch: &LaunchConfig,
    ) -> Result<TimeBreakdown, &'static str> {
        let mut t = self.kernel_time(dev, totals, launch)?;
        t.seconds -= self.launch_overhead_s;
        t.launch_s = 0.0;
        Ok(t)
    }
}

/// Priced kernel launch, with the individual model terms for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Total modeled runtime in seconds.
    pub seconds: f64,
    /// DRAM bandwidth term.
    pub global_s: f64,
    /// Shared-memory pipe term (grows with bank conflicts).
    pub shared_s: f64,
    /// Dependent-chain latency term.
    pub latency_s: f64,
    /// ALU throughput term.
    pub alu_s: f64,
    /// Fixed launch overhead.
    pub launch_s: f64,
    /// Occupancy achieved by the launch.
    pub occupancy: Occupancy,
}

impl TimeBreakdown {
    /// Which term dominated this launch (for reports).
    #[must_use]
    pub fn dominant(&self) -> &'static str {
        let terms = [
            (self.global_s, "global"),
            (self.shared_s, "shared"),
            (self.latency_s, "latency"),
            (self.alu_s, "alu"),
        ];
        terms.iter().cloned().max_by(|a, b| a.0.total_cmp(&b.0)).map(|(_, n)| n).unwrap_or("none")
    }
}

impl ToJson for TimeBreakdown {
    /// `dominant` is derived on write for readability and ignored on read.
    fn to_json(&self) -> Json {
        Json::obj([
            ("seconds", Json::from(self.seconds)),
            ("global_s", Json::from(self.global_s)),
            ("shared_s", Json::from(self.shared_s)),
            ("latency_s", Json::from(self.latency_s)),
            ("alu_s", Json::from(self.alu_s)),
            ("launch_s", Json::from(self.launch_s)),
            ("dominant", Json::from(self.dominant())),
            ("occupancy", self.occupancy.to_json()),
        ])
    }
}

impl FromJson for TimeBreakdown {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            seconds: v.field("seconds")?,
            global_s: v.field("global_s")?,
            shared_s: v.field("shared_s")?,
            latency_s: v.field("latency_s")?,
            alu_s: v.field("alu_s")?,
            launch_s: v.field("launch_s")?,
            occupancy: v.field("occupancy")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch(blocks: u64, u: u32, e: u32) -> LaunchConfig {
        LaunchConfig {
            blocks,
            resources: BlockResources {
                threads: u,
                shared_bytes: u * e * 4,
                regs_per_thread: crate::occupancy::mergesort_regs_estimate(e),
            },
        }
    }

    fn counters(tx: u64, req: u64, sectors: u64, alu: u64) -> PhaseCounters {
        PhaseCounters {
            shared_ld_requests: req,
            shared_ld_transactions: tx,
            global_ld_sectors: sectors,
            alu_ops: alu,
            ..Default::default()
        }
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let tm = TimingModel::rtx2080ti_like();
        let dev = Device::rtx2080ti();
        let t = tm.kernel_time(&dev, &PhaseCounters::default(), &launch(100, 512, 15)).unwrap();
        assert!((t.seconds - tm.launch_overhead_s).abs() < 1e-12);
    }

    #[test]
    fn more_conflicts_more_time() {
        let tm = TimingModel::rtx2080ti_like();
        let dev = Device::rtx2080ti();
        let l = launch(10_000, 512, 15);
        let base = tm.kernel_time(&dev, &counters(1_000_000, 1_000_000, 500_000, 0), &l).unwrap();
        let conflicted =
            tm.kernel_time(&dev, &counters(5_000_000, 1_000_000, 500_000, 0), &l).unwrap();
        assert!(conflicted.seconds > base.seconds);
    }

    #[test]
    fn partial_occupancy_slows_bandwidth_bound_kernels() {
        let tm = TimingModel::rtx2080ti_like();
        let dev = Device::rtx2080ti();
        let c = counters(1_000_000, 1_000_000, 50_000_000, 0);
        let full = tm.kernel_time(&dev, &c, &launch(10_000, 512, 15)).unwrap(); // 100% occ
        let partial = tm.kernel_time(&dev, &c, &launch(10_000, 256, 17)).unwrap(); // 75% occ
        assert!(partial.seconds > full.seconds);
        assert_eq!(full.dominant(), "global");
    }

    #[test]
    fn small_grids_use_fewer_sms() {
        let tm = TimingModel::rtx2080ti_like();
        let dev = Device::rtx2080ti();
        let c = counters(1_000_000, 1_000_000, 1_000_000, 0);
        let small = tm.kernel_time(&dev, &c, &launch(2, 512, 15)).unwrap();
        let big = tm.kernel_time(&dev, &c, &launch(1000, 512, 15)).unwrap();
        assert!(small.seconds > big.seconds);
    }

    #[test]
    fn auxiliary_launch_waives_only_host_overhead() {
        let tm = TimingModel::rtx2080ti_like();
        let dev = Device::rtx2080ti();
        let l = launch(100, 512, 15);
        let c = counters(1_000_000, 1_000_000, 500_000, 1000);
        let full = tm.kernel_time(&dev, &c, &l).unwrap();
        let aux = tm.auxiliary_launch_time(&dev, &c, &l).unwrap();
        assert!((full.seconds - aux.seconds - tm.launch_overhead_s).abs() < 1e-15);
        assert_eq!(aux.launch_s, 0.0);
        assert_eq!(aux.shared_s, full.shared_s);
        assert_eq!(aux.global_s, full.global_s);
    }

    #[test]
    fn breakdown_terms_are_finite_and_nonnegative() {
        let tm = TimingModel::rtx2080ti_like();
        let dev = Device::rtx2080ti();
        let t = tm.kernel_time(&dev, &counters(10, 10, 10, 10), &launch(1, 32, 15)).unwrap();
        for v in [t.global_s, t.shared_s, t.latency_s, t.alu_s, t.seconds] {
            assert!(v.is_finite() && v >= 0.0);
        }
    }
}
