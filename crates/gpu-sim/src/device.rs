//! Device descriptors: the static resources of a simulated GPU.
//!
//! The default preset mirrors the paper's testbed, an NVIDIA RTX 2080 Ti
//! (Turing, compute capability 7.5): 68 SMs, 32-lane warps, 32 shared
//! banks, 64 KiB of shared memory per SM in the configuration the paper
//! uses, a 64K-register file per SM, and ~616 GB/s of DRAM bandwidth.

use crate::banks::BankModel;
use cfmerge_json::{FromJson, Json, JsonError, ToJson};

/// Static description of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Peak DRAM bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Warp width = shared-memory bank count (`w`).
    pub warp_width: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory per SM in bytes (as configured; Turing allows
    /// 32 KiB L1 + 64 KiB shared, the split the paper uses).
    pub shared_per_sm: u32,
    /// Shared-memory bank row width in 32-bit words: 1 on Turing/Ampere
    /// (4-byte banks), 2 on Kepler-class parts configured for 8-byte
    /// banks (`cudaSharedMemBankSizeEightByte`).
    pub bank_word_u32s: u32,
    /// 32-bit registers per SM.
    pub regfile_per_sm: u32,
    /// Maximum registers per thread.
    pub max_regs_per_thread: u32,
}

impl Device {
    /// The paper's testbed: NVIDIA GeForce RTX 2080 Ti (Turing, CC 7.5),
    /// shared memory carve-out configured to 64 KiB per SM.
    #[must_use]
    pub fn rtx2080ti() -> Self {
        Self {
            name: "NVIDIA GeForce RTX 2080 Ti (simulated)".into(),
            sm_count: 68,
            clock_hz: 1.545e9,
            mem_bandwidth: 616e9,
            warp_width: 32,
            max_threads_per_sm: 1024,
            max_warps_per_sm: 32,
            max_blocks_per_sm: 16,
            shared_per_sm: 64 * 1024,
            regfile_per_sm: 64 * 1024,
            max_regs_per_thread: 255,
            bank_word_u32s: 1,
        }
    }

    /// An A100-class data-center part (Ampere, CC 8.0): more SMs, HBM
    /// bandwidth, and a larger shared-memory carve-out. Used to show the
    /// reproduction's conclusions are not an artifact of one device's
    /// resource ratios.
    #[must_use]
    pub fn a100_like() -> Self {
        Self {
            name: "NVIDIA A100-class (simulated)".into(),
            sm_count: 108,
            clock_hz: 1.41e9,
            mem_bandwidth: 1555e9,
            warp_width: 32,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            shared_per_sm: 164 * 1024,
            regfile_per_sm: 64 * 1024,
            max_regs_per_thread: 255,
            bank_word_u32s: 1,
        }
    }

    /// A Kepler-class part in its 8-byte shared-memory bank mode
    /// (`cudaSharedMemBankSizeEightByte`): the configuration Afshani &
    /// Sitchinava analyze, where adjacent 32-bit words fuse into one
    /// 64-bit bank row and the conflict structure of every kernel changes
    /// qualitatively. Resources are K80/GK210-like (generous shared
    /// carve-out) so the paper's launch configs remain occupiable and the
    /// certification lattice exercises the width axis, not a resource
    /// limit.
    #[must_use]
    pub fn kepler_64bit_like() -> Self {
        Self {
            name: "NVIDIA Kepler-class, 64-bit banks (simulated)".into(),
            sm_count: 13,
            clock_hz: 0.875e9,
            mem_bandwidth: 240e9,
            warp_width: 32,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            shared_per_sm: 112 * 1024,
            regfile_per_sm: 128 * 1024,
            max_regs_per_thread: 255,
            bank_word_u32s: 2,
        }
    }

    /// A tiny teaching device matching the paper's small figure examples
    /// (`w = 12`): useful in unit tests where 32-lane warps would obscure
    /// the arithmetic.
    #[must_use]
    pub fn toy(warp_width: u32) -> Self {
        Self {
            name: format!("toy-{warp_width}"),
            sm_count: 2,
            clock_hz: 1e9,
            mem_bandwidth: 100e9,
            warp_width,
            max_threads_per_sm: 16 * warp_width,
            max_warps_per_sm: 16,
            max_blocks_per_sm: 8,
            shared_per_sm: 64 * 1024,
            regfile_per_sm: 64 * 1024,
            max_regs_per_thread: 255,
            bank_word_u32s: 1,
        }
    }

    /// Bank model implied by this device (bank count and row width).
    #[must_use]
    pub fn bank_model(&self) -> BankModel {
        BankModel::with_word(self.warp_width, self.bank_word_u32s)
    }
}

impl ToJson for Device {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::from(self.name.as_str())),
            ("sm_count", Json::from(self.sm_count)),
            ("clock_hz", Json::from(self.clock_hz)),
            ("mem_bandwidth", Json::from(self.mem_bandwidth)),
            ("warp_width", Json::from(self.warp_width)),
            ("max_threads_per_sm", Json::from(self.max_threads_per_sm)),
            ("max_warps_per_sm", Json::from(self.max_warps_per_sm)),
            ("max_blocks_per_sm", Json::from(self.max_blocks_per_sm)),
            ("shared_per_sm", Json::from(self.shared_per_sm)),
            ("regfile_per_sm", Json::from(self.regfile_per_sm)),
            ("max_regs_per_thread", Json::from(self.max_regs_per_thread)),
        ];
        // Emitted only in 64-bit-bank mode so every artifact written
        // before the field existed stays bit-identical.
        if self.bank_word_u32s != 1 {
            pairs.push(("bank_word_u32s", Json::from(self.bank_word_u32s)));
        }
        Json::obj(pairs)
    }
}

impl FromJson for Device {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: v.field("name")?,
            sm_count: v.field("sm_count")?,
            clock_hz: v.field("clock_hz")?,
            mem_bandwidth: v.field("mem_bandwidth")?,
            warp_width: v.field("warp_width")?,
            max_threads_per_sm: v.field("max_threads_per_sm")?,
            max_warps_per_sm: v.field("max_warps_per_sm")?,
            max_blocks_per_sm: v.field("max_blocks_per_sm")?,
            shared_per_sm: v.field("shared_per_sm")?,
            regfile_per_sm: v.field("regfile_per_sm")?,
            max_regs_per_thread: v.field("max_regs_per_thread")?,
            bank_word_u32s: v.field_opt("bank_word_u32s")?.unwrap_or(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_paper_testbed() {
        let d = Device::rtx2080ti();
        assert_eq!(d.warp_width, 32);
        assert_eq!(d.sm_count, 68);
        assert_eq!(d.shared_per_sm, 65536);
        assert_eq!(d.bank_model().num_banks, 32);
    }

    #[test]
    fn toy_device_scales_with_warp() {
        let d = Device::toy(12);
        assert_eq!(d.warp_width, 12);
        assert_eq!(d.max_threads_per_sm % d.warp_width, 0);
    }

    #[test]
    fn kepler_64bit_mode_fuses_banks() {
        let d = Device::kepler_64bit_like();
        assert_eq!(d.bank_word_u32s, 2);
        let m = d.bank_model();
        assert_eq!(m.num_banks, 32);
        assert_eq!(m.bank_word_u32s, 2);
        // Words 0 and 1 share a 64-bit row; words 0 and 64 conflict.
        assert_eq!(m.bank_of(0), m.bank_of(1));
        assert_eq!(m.round_cost(&[0, 64]).transactions, 2);
    }

    #[test]
    fn device_json_omits_default_bank_word() {
        let turing = Device::rtx2080ti();
        assert!(!turing.to_json().to_string_pretty().contains("bank_word_u32s"));
        assert_eq!(Device::from_json(&turing.to_json()).unwrap(), turing);
        let kepler = Device::kepler_64bit_like();
        let back = Device::from_json(&kepler.to_json()).unwrap();
        assert_eq!(back, kepler);
        assert_eq!(back.bank_word_u32s, 2);
    }

    #[test]
    fn a100_class_resources() {
        let d = Device::a100_like();
        assert_eq!(d.warp_width, 32);
        assert!(d.mem_bandwidth > Device::rtx2080ti().mem_bandwidth * 2.0);
        assert_eq!(d.max_warps_per_sm, 64);
        // On Ampere the paper's E=15,u=512 tile is no longer the
        // occupancy sweet spot (register file becomes the limiter first):
        // demonstrated in the cross-device test in crates/core.
        assert!(d.shared_per_sm > 128 * 1024);
    }
}
