//! Warp-synchronous thread-block execution engine.
//!
//! A kernel is expressed as a sequence of barrier-delimited **phases**; in
//! each phase every thread of the block runs the same per-lane closure.
//! Each lane's shared- and global-memory accesses are recorded as an
//! ordered trace, and traces are aligned *by access index* across the `w`
//! lanes of each warp: the `r`-th shared access of every lane forms the
//! warp's round `r`, exactly the lock-step model of the paper (Section 1,
//! footnote 2: conflict-free warps have no reason to diverge). Rounds are
//! priced by [`BankModel::round_cost`] and accumulated into a
//! [`KernelProfile`].
//!
//! ## Fidelity notes
//!
//! * Lanes of a warp execute *sequentially* inside the simulator but are
//!   costed as if lock-step. This is exact provided no lane reads a shared
//!   word written by a different lane **in the same phase** — which on a
//!   real GPU would equally require a `__syncthreads()`. The engine
//!   enforces this with a per-phase write-epoch race detector and panics
//!   on violation, so an un-barriered kernel cannot silently produce
//!   results the hardware would not.
//! * Every kernel in this repository issues the same number of accesses on
//!   every lane of a warp within a phase (serial merge: `E` loads; gather:
//!   `E` loads; searches: a fixed iteration count), so index alignment is
//!   not an approximation for them. Lanes that issue fewer accesses are
//!   treated as predicated off for the trailing rounds.

use crate::banks::{BankModel, RoundCost};
use crate::check::{MemCheck, NoCheck};
use crate::fault::{FaultInjector, FaultWord, NoFaults};
use crate::global::sectors_touched;
use crate::profiler::{KernelProfile, PhaseClass};
use crate::trace::{GlobalRoundEvent, NullTracer, SharedRoundEvent, Tracer};

/// One recorded shared-memory access.
#[derive(Debug, Clone, Copy)]
struct SharedAcc {
    addr: u32,
    store: bool,
}

/// One recorded global-memory access (element index within a flat space).
#[derive(Debug, Clone, Copy)]
struct GlobalAcc {
    idx: u64,
    store: bool,
}

/// Per-round detail kept when round logging is enabled (figure harness).
#[derive(Debug, Clone)]
pub struct LoggedRound {
    /// `(lane_in_warp, address)` pairs for loads in this round.
    pub loads: Vec<(u32, u32)>,
    /// `(lane_in_warp, address)` pairs for stores in this round.
    pub stores: Vec<(u32, u32)>,
    /// Cost of the load part (zero if no loads).
    pub ld_cost: RoundCost,
    /// Cost of the store part.
    pub st_cost: RoundCost,
}

/// Round-by-round log of one warp in one phase.
#[derive(Debug, Clone)]
pub struct WarpPhaseLog {
    /// Phase the rounds belong to.
    pub class: PhaseClass,
    /// Warp index within the block.
    pub warp: usize,
    /// The rounds, in execution order.
    pub rounds: Vec<LoggedRound>,
}

/// Simulated thread block: `u` threads over a shared-memory array of `T`.
///
/// The second type parameter is the [`Tracer`] observing execution; the
/// default [`NullTracer`] compiles its hooks away entirely, so untraced
/// blocks are identical to the pre-tracing engine. The third is the
/// [`MemCheck`] hazard checker (see [`crate::check`]); the default
/// [`NoCheck`] likewise vanishes at compile time, leaving the built-in
/// panic-on-race asserts in force. The fourth is the [`FaultInjector`]
/// corrupting execution (see [`crate::fault`]); the default [`NoFaults`]
/// also compiles away, so an un-injected block is bit-identical to the
/// pre-fault engine.
pub struct BlockSim<
    T: Copy,
    Tr: Tracer = NullTracer,
    Ck: MemCheck = NoCheck,
    Fi: FaultInjector = NoFaults,
> {
    banks: BankModel,
    /// Threads per block (`u` in the paper; must be a multiple of `w`).
    u: usize,
    shared: Vec<T>,
    write_epoch: Vec<u32>,
    write_lane: Vec<u32>,
    epoch: u32,
    /// Accumulated counters for this block.
    pub profile: KernelProfile,
    counting: bool,
    log_rounds: bool,
    /// Per-warp round logs of all phases run since construction (only
    /// populated when round logging is on).
    pub logs: Vec<WarpPhaseLog>,
    tracer: Tr,
    checker: Ck,
    injector: Fi,
    /// XOR-corruption applier: identity unless built via [`Self::with_faults`],
    /// which keeps `T: Copy + Default` users free of any bits-conversion
    /// bound while letting faulted blocks flip bits in any [`FaultWord`].
    flip: fn(T, u64) -> T,
    // Reusable scratch (one slot per lane of a warp).
    shared_traces: Vec<Vec<SharedAcc>>,
    global_traces: Vec<Vec<GlobalAcc>>,
}

impl<T: Copy + Default> BlockSim<T> {
    /// New untraced block: `u` threads, shared memory of `shared_len`
    /// words, warp width / bank count from `banks`.
    ///
    /// # Panics
    /// Panics if `u` is zero or not a multiple of the warp width.
    #[must_use]
    pub fn new(banks: BankModel, u: usize, shared_len: usize) -> Self {
        Self::with_tracer(banks, u, shared_len, NullTracer)
    }
}

impl<T: Copy + Default, Tr: Tracer> BlockSim<T, Tr> {
    /// New block observed by `tracer` (see [`crate::trace`]).
    ///
    /// # Panics
    /// Panics if `u` is zero or not a multiple of the warp width.
    #[must_use]
    pub fn with_tracer(banks: BankModel, u: usize, shared_len: usize, tracer: Tr) -> Self {
        Self::with_checker(banks, u, shared_len, tracer, NoCheck)
    }
}

impl<T: Copy + Default, Tr: Tracer, Ck: MemCheck> BlockSim<T, Tr, Ck> {
    /// New block observed by `tracer` and audited by `checker` (see
    /// [`crate::check`]). An *active* checker replaces the engine's
    /// panicking race asserts: hazards become recorded findings and the
    /// kernel runs to completion.
    ///
    /// # Panics
    /// Panics if `u` is zero or not a multiple of the warp width.
    #[must_use]
    pub fn with_checker(
        banks: BankModel,
        u: usize,
        shared_len: usize,
        tracer: Tr,
        checker: Ck,
    ) -> Self {
        Self::with_hooks(banks, u, shared_len, tracer, checker, NoFaults, |v, _| v)
    }
}

impl<T: Copy + Default + FaultWord, Tr: Tracer, Ck: MemCheck, Fi: FaultInjector>
    BlockSim<T, Tr, Ck, Fi>
{
    /// New block corrupted by `injector` (see [`crate::fault`]), observed
    /// by `tracer` and audited by `checker`. Requires `T: FaultWord` so
    /// the injector's XOR masks can be applied to stored/loaded values —
    /// the only constructor with that bound.
    ///
    /// # Panics
    /// Panics if `u` is zero or not a multiple of the warp width.
    #[must_use]
    pub fn with_faults(
        banks: BankModel,
        u: usize,
        shared_len: usize,
        tracer: Tr,
        checker: Ck,
        injector: Fi,
    ) -> Self {
        Self::with_hooks(banks, u, shared_len, tracer, checker, injector, |v, m| {
            if m == 0 {
                v
            } else {
                T::from_fault_bits(v.to_fault_bits() ^ m)
            }
        })
    }
}

impl<T: Copy + Default, Tr: Tracer, Ck: MemCheck, Fi: FaultInjector> BlockSim<T, Tr, Ck, Fi> {
    fn with_hooks(
        banks: BankModel,
        u: usize,
        shared_len: usize,
        tracer: Tr,
        mut checker: Ck,
        mut injector: Fi,
        flip: fn(T, u64) -> T,
    ) -> Self {
        let w = banks.num_banks as usize;
        assert!(u > 0 && u.is_multiple_of(w), "u={u} must be a positive multiple of w={w}");
        checker.begin_block(w, u, shared_len);
        injector.begin_block(w, u, shared_len);
        Self {
            banks,
            u,
            shared: vec![T::default(); shared_len],
            write_epoch: vec![0; shared_len],
            write_lane: vec![u32::MAX; shared_len],
            epoch: 0,
            profile: KernelProfile::new(),
            counting: true,
            log_rounds: false,
            logs: Vec::new(),
            tracer,
            checker,
            injector,
            flip,
            shared_traces: vec![Vec::new(); w],
            global_traces: vec![Vec::new(); w],
        }
    }
}

impl<T: Copy, Tr: Tracer, Ck: MemCheck, Fi: FaultInjector> BlockSim<T, Tr, Ck, Fi> {
    /// The tracer observing this block.
    #[must_use]
    pub fn tracer(&self) -> &Tr {
        &self.tracer
    }

    /// Consume the block and return its tracer (for recorders).
    #[must_use]
    pub fn into_tracer(self) -> Tr {
        self.tracer
    }

    /// The checker auditing this block.
    #[must_use]
    pub fn checker(&self) -> &Ck {
        &self.checker
    }

    /// Consume the block and return its checker (for its findings).
    #[must_use]
    pub fn into_checker(self) -> Ck {
        self.checker
    }

    /// The fault injector corrupting this block.
    #[must_use]
    pub fn injector(&self) -> &Fi {
        &self.injector
    }

    /// Consume the block and return its injector (for forensic records).
    #[must_use]
    pub fn into_injector(self) -> Fi {
        self.injector
    }

    /// Consume the block, returning its accumulated profile and tracer —
    /// the pair a traced kernel hands back to its launcher.
    #[must_use]
    pub fn finish(self) -> (KernelProfile, Tr) {
        (self.profile, self.tracer)
    }

    /// Consume the block, returning profile, tracer, and checker.
    #[must_use]
    pub fn finish_checked(self) -> (KernelProfile, Tr, Ck) {
        (self.profile, self.tracer, self.checker)
    }

    /// Consume the block, returning profile, tracer, checker, and
    /// injector — what a fault-injected kernel hands its recovery driver.
    #[must_use]
    pub fn finish_faulty(self) -> (KernelProfile, Tr, Ck, Fi) {
        (self.profile, self.tracer, self.checker, self.injector)
    }

    /// Warp width `w`.
    #[must_use]
    pub fn warp_width(&self) -> usize {
        self.banks.num_banks as usize
    }

    /// Threads per block `u`.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.u
    }

    /// Number of warps `u / w`.
    #[must_use]
    pub fn warps(&self) -> usize {
        self.u / self.warp_width()
    }

    /// Shared-memory size in words.
    #[must_use]
    pub fn shared_len(&self) -> usize {
        self.shared.len()
    }

    /// Read-only view of shared memory (host-side inspection in tests).
    #[must_use]
    pub fn shared(&self) -> &[T] {
        &self.shared
    }

    /// Disable access accounting (correctness-only fast path for very
    /// large inputs). The race detector stays on.
    pub fn set_counting(&mut self, on: bool) {
        self.counting = on;
    }

    /// Enable per-round logging (used by the figure harness; costly).
    pub fn set_round_logging(&mut self, on: bool) {
        self.log_rounds = on;
    }

    /// Run one barrier-delimited phase. `body(tid, lane)` is invoked once
    /// per thread; all its shared/global accesses are recorded and costed
    /// under `class`.
    pub fn phase<F>(&mut self, class: PhaseClass, mut body: F)
    where
        F: FnMut(usize, &mut LaneCtx<'_, T, Ck, Fi>),
    {
        self.epoch = self.epoch.wrapping_add(1);
        self.tracer.phase_begin(class);
        self.checker.phase_begin(class);
        if Fi::ACTIVE {
            self.injector.phase_begin(class);
        }
        let w = self.warp_width();
        let warps = self.warps();
        let mut alu_total = 0u64;

        for warp in 0..warps {
            self.checker.warp_begin(warp);
            for t in &mut self.shared_traces {
                t.clear();
            }
            for t in &mut self.global_traces {
                t.clear();
            }
            for lane in 0..w {
                let tid = warp * w + lane;
                let mut alu = 0u64;
                {
                    let mut ctx = LaneCtx {
                        shared: &mut self.shared,
                        write_epoch: &mut self.write_epoch,
                        write_lane: &mut self.write_lane,
                        epoch: self.epoch,
                        tid: tid as u32,
                        counting: self.counting,
                        shared_trace: &mut self.shared_traces[lane],
                        global_trace: &mut self.global_traces[lane],
                        alu: &mut alu,
                        checker: &mut self.checker,
                        injector: &mut self.injector,
                        flip: self.flip,
                    };
                    body(tid, &mut ctx);
                }
                alu_total += alu;
            }
            self.checker.warp_end(warp, class);
            if self.counting {
                self.account_warp(class, warp);
            }
        }
        self.profile.phase_mut(class).alu_ops += alu_total;
        if alu_total > 0 {
            self.tracer.alu(class, alu_total);
        }
        self.tracer.phase_end(class);
        self.checker.phase_end(class);
        if Fi::ACTIVE {
            self.injector.phase_end();
        }
    }

    /// Convenience: run a phase with no memory side effects, charging only
    /// `alu` operations per thread (e.g. register-space sorting networks).
    pub fn alu_phase(&mut self, class: PhaseClass, ops_per_thread: u64) {
        let ops = ops_per_thread * self.u as u64;
        self.profile.phase_mut(class).alu_ops += ops;
        self.tracer.phase_begin(class);
        self.checker.phase_begin(class);
        if Fi::ACTIVE {
            self.injector.phase_begin(class);
        }
        self.tracer.alu(class, ops);
        self.tracer.phase_end(class);
        self.checker.phase_end(class);
        if Fi::ACTIVE {
            self.injector.phase_end();
        }
    }

    fn account_warp(&mut self, class: PhaseClass, warp: usize) {
        let w = self.warp_width();
        // --- shared memory rounds ---
        let max_len = self.shared_traces.iter().map(Vec::len).max().unwrap_or(0);
        let mut log_rounds: Vec<LoggedRound> = Vec::new();
        let mut ld_buf: Vec<u32> = Vec::with_capacity(w);
        let mut st_buf: Vec<u32> = Vec::with_capacity(w);
        let mut ld_lanes: Vec<(u32, u32)> = Vec::new();
        let mut st_lanes: Vec<(u32, u32)> = Vec::new();
        for r in 0..max_len {
            ld_buf.clear();
            st_buf.clear();
            if self.log_rounds {
                ld_lanes.clear();
                st_lanes.clear();
            }
            for (lane, trace) in self.shared_traces.iter().enumerate() {
                if let Some(acc) = trace.get(r) {
                    if acc.store {
                        st_buf.push(acc.addr);
                        if self.log_rounds {
                            st_lanes.push((lane as u32, acc.addr));
                        }
                    } else {
                        ld_buf.push(acc.addr);
                        if self.log_rounds {
                            ld_lanes.push((lane as u32, acc.addr));
                        }
                    }
                }
            }
            let ld_cost = self.banks.round_cost(&ld_buf);
            let st_cost = self.banks.round_cost(&st_buf);
            self.tracer.shared_round(&SharedRoundEvent {
                class,
                warp,
                round: r,
                loads: &ld_buf,
                stores: &st_buf,
                ld_cost,
                st_cost,
            });
            if matches!(class, PhaseClass::Merge | PhaseClass::Gather) && ld_cost.active_lanes > 0 {
                self.profile.merge_degree_hist.record(ld_cost.transactions);
            }
            let c = self.profile.phase_mut(class);
            if ld_cost.active_lanes > 0 {
                c.shared_ld_requests += 1;
                c.shared_ld_transactions += u64::from(ld_cost.transactions);
            }
            if st_cost.active_lanes > 0 {
                c.shared_st_requests += 1;
                c.shared_st_transactions += u64::from(st_cost.transactions);
            }
            if self.log_rounds {
                log_rounds.push(LoggedRound {
                    loads: ld_lanes.clone(),
                    stores: st_lanes.clone(),
                    ld_cost,
                    st_cost,
                });
            }
        }
        if self.log_rounds && !log_rounds.is_empty() {
            self.logs.push(WarpPhaseLog { class, warp, rounds: log_rounds });
        }

        // --- global memory rounds ---
        let max_len = self.global_traces.iter().map(Vec::len).max().unwrap_or(0);
        let mut gld: Vec<u64> = Vec::with_capacity(w);
        let mut gst: Vec<u64> = Vec::with_capacity(w);
        for r in 0..max_len {
            gld.clear();
            gst.clear();
            for trace in &self.global_traces {
                if let Some(acc) = trace.get(r) {
                    if acc.store {
                        gst.push(acc.idx);
                    } else {
                        gld.push(acc.idx);
                    }
                }
            }
            let ld_sectors = sectors_touched(&gld);
            let st_sectors = sectors_touched(&gst);
            let c = self.profile.phase_mut(class);
            if !gld.is_empty() {
                c.global_ld_requests += 1;
                c.global_ld_sectors += ld_sectors;
            }
            if !gst.is_empty() {
                c.global_st_requests += 1;
                c.global_st_sectors += st_sectors;
            }
            self.tracer.global_round(&GlobalRoundEvent {
                class,
                warp,
                round: r,
                ld_lanes: gld.len() as u32,
                st_lanes: gst.len() as u32,
                ld_sectors,
                st_sectors,
            });
        }
    }
}

/// Per-lane handle passed to phase bodies: the only way kernel code can
/// touch memory, so every access is recorded.
///
/// With an *active* [`MemCheck`] attached, every access is routed through
/// the checker, which may suppress it (out-of-bounds accesses become
/// findings instead of panics; suppressed loads yield `T::default()`),
/// and the built-in panicking race asserts stand down in favor of the
/// checker's shadow-memory race detection.
///
/// With an *active* [`FaultInjector`] attached, loads and stores may be
/// corrupted (XOR masks) or dropped (lane drop-outs); the traffic is
/// recorded and costed either way — on real hardware a faulted store
/// still occupies its transaction.
pub struct LaneCtx<'a, T: Copy, Ck: MemCheck = NoCheck, Fi: FaultInjector = NoFaults> {
    shared: &'a mut [T],
    write_epoch: &'a mut [u32],
    write_lane: &'a mut [u32],
    epoch: u32,
    tid: u32,
    counting: bool,
    shared_trace: &'a mut Vec<SharedAcc>,
    global_trace: &'a mut Vec<GlobalAcc>,
    alu: &'a mut u64,
    checker: &'a mut Ck,
    injector: &'a mut Fi,
    flip: fn(T, u64) -> T,
}

impl<T: Copy + Default, Ck: MemCheck, Fi: FaultInjector> LaneCtx<'_, T, Ck, Fi> {
    /// This thread's id within the block.
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid as usize
    }

    /// Shared-memory load.
    ///
    /// # Panics
    /// Without an active checker, panics if the word was written by a
    /// *different* lane in the same phase (a missing-barrier race the
    /// hardware would not tolerate either), or on out-of-bounds access.
    /// With one, hazards are recorded as findings instead.
    #[must_use]
    pub fn ld(&mut self, idx: usize) -> T {
        if Ck::ACTIVE {
            if !self.checker.shared_access(self.tid, idx, false) {
                return T::default();
            }
        } else {
            assert!(
                self.write_epoch[idx] != self.epoch || self.write_lane[idx] == self.tid,
                "race: lane {} loads shared[{idx}] written by lane {} in the same phase \
                 (missing barrier)",
                self.tid,
                self.write_lane[idx],
            );
        }
        if self.counting {
            self.shared_trace.push(SharedAcc { addr: idx as u32, store: false });
        }
        if Fi::ACTIVE {
            let mask = self.injector.shared_ld_mask(self.tid, idx);
            return (self.flip)(self.shared[idx], mask);
        }
        self.shared[idx]
    }

    /// Shared-memory store.
    ///
    /// # Panics
    /// Without an active checker, panics if another lane already wrote
    /// this word in the same phase.
    pub fn st(&mut self, idx: usize, v: T) {
        if Ck::ACTIVE {
            if !self.checker.shared_access(self.tid, idx, true) {
                return;
            }
        } else {
            assert!(
                self.write_epoch[idx] != self.epoch || self.write_lane[idx] == self.tid,
                "race: lanes {} and {} both store shared[{idx}] in the same phase \
                 (missing barrier)",
                self.write_lane[idx],
                self.tid,
            );
            self.write_epoch[idx] = self.epoch;
            self.write_lane[idx] = self.tid;
        }
        if self.counting {
            self.shared_trace.push(SharedAcc { addr: idx as u32, store: true });
        }
        if Fi::ACTIVE {
            if self.injector.drops_store(self.tid) {
                return; // lane drop-out: traffic costed, data never commits
            }
            let mask = self.injector.shared_st_mask(self.tid, idx);
            self.shared[idx] = (self.flip)(v, mask);
            return;
        }
        self.shared[idx] = v;
    }

    /// Global-memory load from a caller-provided array. The element index
    /// `idx` is recorded for coalescing accounting.
    #[must_use]
    pub fn ld_global(&mut self, data: &[T], idx: usize) -> T {
        if Ck::ACTIVE && !self.checker.global_access(self.tid, idx, data.len(), false) {
            return T::default();
        }
        if self.counting {
            self.global_trace.push(GlobalAcc { idx: idx as u64, store: false });
        }
        data[idx]
    }

    /// Global-memory store into a caller-provided array.
    pub fn st_global(&mut self, data: &mut [T], idx: usize, v: T) {
        if Ck::ACTIVE && !self.checker.global_access(self.tid, idx, data.len(), true) {
            return;
        }
        if self.counting {
            self.global_trace.push(GlobalAcc { idx: idx as u64, store: true });
        }
        if Fi::ACTIVE {
            if self.injector.drops_store(self.tid) {
                return;
            }
            let mask = self.injector.global_st_mask(self.tid, idx);
            data[idx] = (self.flip)(v, mask);
            return;
        }
        data[idx] = v;
    }

    /// Record the *traffic* of a global load at `idx` without moving
    /// data — for kernels that stage their reads/writes outside the
    /// engine (e.g. scatter kernels whose output buffer cannot be
    /// mutably shared across concurrently simulated blocks). No bounds
    /// are known here, so a checker only counts the access.
    pub fn mark_global_ld(&mut self, idx: usize) {
        if Ck::ACTIVE {
            let _ = self.checker.global_access(self.tid, idx, usize::MAX, false);
        }
        if self.counting {
            self.global_trace.push(GlobalAcc { idx: idx as u64, store: false });
        }
    }

    /// Record the traffic of a global store at `idx` without writing.
    pub fn mark_global_st(&mut self, idx: usize) {
        if Ck::ACTIVE {
            let _ = self.checker.global_access(self.tid, idx, usize::MAX, true);
        }
        if self.counting {
            self.global_trace.push(GlobalAcc { idx: idx as u64, store: true });
        }
    }

    /// Whether this lane's stores are currently dropped by the fault
    /// injector. Kernels that commit their output *outside* the engine
    /// (the [`Self::mark_global_st`] pattern) must consult this
    /// themselves — `st`/`st_global` handle it automatically.
    pub fn store_dropped(&mut self) -> bool {
        Fi::ACTIVE && self.injector.drops_store(self.tid)
    }

    /// Apply the injector's global-store corruption to `v` destined for
    /// element `idx` — the data-path companion to
    /// [`Self::mark_global_st`] for kernels staging writes outside the
    /// engine. Identity when no injector is attached.
    #[must_use]
    pub fn corrupt_global_st(&mut self, idx: usize, v: T) -> T {
        if Fi::ACTIVE {
            let mask = self.injector.global_st_mask(self.tid, idx);
            (self.flip)(v, mask)
        } else {
            v
        }
    }

    /// Charge `n` scalar ALU operations to this lane.
    pub fn alu(&mut self, n: u64) {
        *self.alu += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(u: usize, w: u32, len: usize) -> BlockSim<u32> {
        BlockSim::new(BankModel::new(w), u, len)
    }

    #[test]
    fn unit_stride_store_then_load_is_conflict_free() {
        let mut b = block(8, 8, 64);
        b.phase(PhaseClass::LoadTile, |tid, lane| {
            for r in 0..4 {
                lane.st(r * 8 + tid, (r * 8 + tid) as u32);
            }
        });
        b.phase(PhaseClass::Merge, |tid, lane| {
            for r in 0..4 {
                let v = lane.ld(r * 8 + tid);
                assert_eq!(v, (r * 8 + tid) as u32);
            }
        });
        let p = b.profile.total();
        assert_eq!(p.shared_st_requests, 4);
        assert_eq!(p.shared_st_transactions, 4);
        assert_eq!(p.shared_ld_requests, 4);
        assert_eq!(p.shared_ld_transactions, 4);
        assert_eq!(b.profile.total_bank_conflicts(), 0);
    }

    #[test]
    fn same_bank_column_scan_serializes() {
        // All 8 lanes scan the same 8-element column (stride w) — the
        // worst case: every round is an 8-way conflict.
        let mut b = block(8, 8, 64);
        b.phase(PhaseClass::LoadTile, |tid, lane| {
            lane.st(tid, tid as u32); // seed something readable
        });
        b.phase(PhaseClass::Merge, |_tid, lane| {
            for r in 0..8usize {
                let _ = lane.ld(r * 8); // all lanes read word r*8 → same bank 0...
            }
        });
        // Careful: all lanes read the SAME word each round → broadcast,
        // zero conflicts. Use distinct words in one bank instead:
        let mut b2 = block(8, 8, 64);
        b2.phase(PhaseClass::Merge, |tid, lane| {
            for r in 0..4usize {
                let _ = lane.ld(((tid + r) % 8) * 8); // distinct words, all bank 0
            }
        });
        assert_eq!(b.profile.merge_bank_conflicts(), 0);
        let m = b2.profile.phase(PhaseClass::Merge);
        assert_eq!(m.shared_ld_requests, 4);
        assert_eq!(m.shared_ld_transactions, 32);
        assert_eq!(b2.profile.merge_bank_conflicts(), 28);
    }

    #[test]
    fn multi_warp_blocks_account_per_warp() {
        // 2 warps of 4; each warp does one conflict-free round.
        let mut b = block(8, 4, 32);
        b.phase(PhaseClass::Gather, |tid, lane| {
            let _ = lane.ld(tid % 4); // lanes of each warp read words 0..3
        });
        let g = b.profile.phase(PhaseClass::Gather);
        assert_eq!(g.shared_ld_requests, 2); // one request per warp
        assert_eq!(g.shared_ld_transactions, 2);
    }

    #[test]
    fn cross_warp_same_phase_rw_is_allowed_only_with_barrier() {
        // Writes in phase 1, reads in phase 2: fine even across warps.
        let mut b = block(8, 4, 32);
        b.phase(PhaseClass::LoadTile, |tid, lane| lane.st(tid, tid as u32 * 10));
        b.phase(PhaseClass::Merge, |tid, lane| {
            let v = lane.ld((tid + 4) % 8);
            assert_eq!(v, (((tid + 4) % 8) * 10) as u32);
        });
    }

    #[test]
    #[should_panic(expected = "missing barrier")]
    fn same_phase_race_detected() {
        let mut b = block(8, 8, 32);
        b.phase(PhaseClass::Other, |tid, lane| {
            lane.st(tid, 1);
            if tid == 3 {
                let _ = lane.ld(0); // written by lane 0 this phase
            }
        });
    }

    #[test]
    #[should_panic(expected = "missing barrier")]
    fn same_phase_write_write_race_detected() {
        let mut b = block(8, 8, 32);
        b.phase(PhaseClass::Other, |tid, lane| {
            lane.st(5, tid as u32);
        });
    }

    #[test]
    fn same_lane_rmw_in_phase_is_fine() {
        let mut b = block(8, 8, 32);
        b.phase(PhaseClass::Other, |tid, lane| {
            lane.st(tid, 7);
            let v = lane.ld(tid);
            lane.st(tid, v + 1);
        });
        assert_eq!(b.shared()[0], 8);
    }

    #[test]
    fn global_coalescing_counted() {
        let data: Vec<u32> = (0..256).collect();
        let mut out = vec![0u32; 256];
        let mut b = block(32, 32, 64);
        b.phase(PhaseClass::LoadTile, |tid, lane| {
            // Unit stride: 32 lanes × 2 rounds → 2 requests, 4 sectors each.
            for r in 0..2 {
                let v = lane.ld_global(&data, r * 32 + tid);
                lane.st_global(&mut out, r * 32 + tid, v + 1);
            }
        });
        let c = b.profile.phase(PhaseClass::LoadTile);
        assert_eq!(c.global_ld_requests, 2);
        assert_eq!(c.global_ld_sectors, 8);
        assert_eq!(c.global_st_requests, 2);
        assert_eq!(c.global_st_sectors, 8);
        assert_eq!(out[33], 34);
    }

    #[test]
    fn predicated_lanes_shorter_traces() {
        // Odd lanes issue 1 load, even lanes 2: round 1 has 4 lanes.
        let mut b = block(8, 8, 32);
        b.phase(PhaseClass::Search, |tid, lane| {
            let _ = lane.ld(tid);
            if tid % 2 == 0 {
                let _ = lane.ld(8 + tid);
            }
        });
        let c = b.profile.phase(PhaseClass::Search);
        assert_eq!(c.shared_ld_requests, 2);
        assert_eq!(c.shared_ld_transactions, 2);
    }

    #[test]
    fn counting_off_still_moves_data() {
        let mut b = block(8, 8, 32);
        b.set_counting(false);
        b.phase(PhaseClass::LoadTile, |tid, lane| lane.st(tid, 42));
        b.phase(PhaseClass::Merge, |tid, lane| {
            assert_eq!(lane.ld(tid), 42);
        });
        assert_eq!(b.profile.total().shared_requests(), 0);
    }

    #[test]
    fn round_log_captures_addresses() {
        let mut b = block(4, 4, 16);
        b.set_round_logging(true);
        b.phase(PhaseClass::Gather, |tid, lane| {
            let _ = lane.ld(tid);
        });
        assert_eq!(b.logs.len(), 1);
        let log = &b.logs[0];
        assert_eq!(log.rounds.len(), 1);
        assert_eq!(log.rounds[0].loads.len(), 4);
        assert_eq!(log.rounds[0].ld_cost.transactions, 1);
    }

    #[test]
    fn alu_phase_charges_ops() {
        let mut b = block(8, 8, 16);
        b.alu_phase(PhaseClass::RegisterOps, 10);
        assert_eq!(b.profile.phase(PhaseClass::RegisterOps).alu_ops, 80);
    }

    #[test]
    #[should_panic(expected = "multiple of w")]
    fn non_multiple_block_rejected() {
        let _ = block(10, 8, 16);
    }

    fn checked_block(u: usize, w: u32, len: usize) -> BlockSim<u32, NullTracer, Sanitizer> {
        BlockSim::with_checker(BankModel::new(w), u, len, NullTracer, Sanitizer::new())
    }

    use crate::check::{Hazard, Sanitizer};

    #[test]
    fn sanitizer_records_race_instead_of_panicking() {
        let mut b = checked_block(8, 8, 32);
        b.phase(PhaseClass::Other, |tid, lane| {
            lane.st(5, tid as u32); // all lanes store word 5
        });
        let ck = b.into_checker();
        assert!(!ck.is_clean());
        assert!(
            ck.findings().iter().any(|f| matches!(f.hazard, Hazard::WriteWriteRace { .. })),
            "{}",
            ck.report()
        );
    }

    #[test]
    fn sanitizer_suppresses_oob_and_keeps_running() {
        let mut b = checked_block(8, 8, 16);
        b.phase(PhaseClass::LoadTile, |tid, lane| lane.st(tid, 7));
        b.phase(PhaseClass::Merge, |tid, lane| {
            let v = lane.ld(if tid == 3 { 999 } else { tid });
            if tid == 3 {
                assert_eq!(v, 0, "suppressed OOB load yields the default value");
            }
        });
        let ck = b.into_checker();
        let oob: Vec<_> = ck
            .findings()
            .iter()
            .filter(|f| matches!(f.hazard, Hazard::SharedOutOfBounds { .. }))
            .collect();
        assert_eq!(oob.len(), 1);
        assert_eq!(oob[0].addr, Some(999));
    }

    #[test]
    fn sanitizer_clean_on_well_formed_kernel() {
        let mut b = checked_block(8, 8, 32);
        b.phase(PhaseClass::LoadTile, |tid, lane| {
            for r in 0..4 {
                lane.st(r * 8 + tid, tid as u32);
            }
        });
        b.phase(PhaseClass::Merge, |tid, lane| {
            for r in 0..4 {
                let _ = lane.ld(r * 8 + (tid + 1) % 8);
            }
        });
        assert!(b.checker().is_clean(), "{}", b.checker().report());
    }
}
