//! Shared-memory bank model and exact conflict accounting.
//!
//! On NVIDIA GPUs shared memory is divided into `w` banks; the word at
//! address `j` lives in bank `j mod w` (Section 2 of the paper). When the
//! `w` threads of a warp issue one lock-step access, the hardware splits it
//! into one *transaction* per distinct word per bank, replaying the
//! instruction until every bank's words are served. The access therefore
//! costs `max_b (# distinct words in bank b)` transactions; any count above
//! one is a **bank conflict**. Accesses by multiple lanes to the *same*
//! word are broadcast and cost nothing extra (footnote 4).
//!
//! Bank *word width* is a device property, not a constant: Kepler-class
//! parts (and the model analyzed by Afshani & Sitchinava, *Sorting and
//! Permuting without Bank Conflicts on GPUs*) serve **64-bit banks**, where
//! two adjacent 32-bit words share one bank row. [`BankModel`] carries the
//! width as `bank_word_u32s` (1 = classic 4-byte banks, 2 = 8-byte banks):
//! word `j` lives in bank `⌊j / bank_word_u32s⌋ mod w`, and two lanes
//! touching *different* 32-bit words inside the same fused row are served
//! by one transaction — so conflict structure changes qualitatively with
//! the width, which is exactly what the certification lattice quantifies.
//!
//! [`BankModel::round_cost`] implements this exactly, and is the single
//! function every conflict number in this repository flows through.

use cfmerge_json::{FromJson, Json, JsonError, ToJson};

/// Static description of a shared-memory bank layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankModel {
    /// Number of banks `w` (32 on all modern NVIDIA GPUs; the paper's
    /// figures use 12, 9, and 6 for legibility).
    pub num_banks: u32,
    /// Bank row width in 32-bit words: 1 for classic 4-byte banks (the
    /// paper's testbed), 2 for Kepler-style 8-byte banks where adjacent
    /// word addresses fuse into one row.
    pub bank_word_u32s: u32,
}

impl ToJson for BankModel {
    fn to_json(&self) -> Json {
        // The width is emitted only when non-default so artifacts written
        // before the field existed stay bit-identical.
        let mut pairs = vec![("num_banks", Json::from(self.num_banks))];
        if self.bank_word_u32s != 1 {
            pairs.push(("bank_word_u32s", Json::from(self.bank_word_u32s)));
        }
        Json::obj(pairs)
    }
}

impl FromJson for BankModel {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            num_banks: v.field("num_banks")?,
            bank_word_u32s: v.field_opt("bank_word_u32s")?.unwrap_or(1),
        })
    }
}

/// Cost of one warp-wide lock-step shared-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundCost {
    /// Number of transactions the access splits into
    /// (`max_b` distinct-words-in-bank-`b`; 0 if no lane was active).
    pub transactions: u32,
    /// Extra transactions beyond the first, i.e. `max(0, transactions - 1)`
    /// summed nowhere — this is the per-access figure nvprof calls a bank
    /// conflict.
    pub conflicts: u32,
    /// Number of lanes that participated.
    pub active_lanes: u32,
}

impl BankModel {
    /// A model with `w` classic 4-byte banks.
    ///
    /// # Panics
    /// Panics if `num_banks == 0`.
    #[must_use]
    pub fn new(num_banks: u32) -> Self {
        Self::with_word(num_banks, 1)
    }

    /// A model with `w` banks of `bank_word_u32s` 32-bit words each
    /// (1 = 4-byte banks, 2 = Kepler-style 8-byte banks).
    ///
    /// # Panics
    /// Panics if either argument is zero.
    #[must_use]
    pub fn with_word(num_banks: u32, bank_word_u32s: u32) -> Self {
        assert!(num_banks > 0, "a shared memory must have at least one bank");
        assert!(bank_word_u32s > 0, "a bank row must hold at least one word");
        Self { num_banks, bank_word_u32s }
    }

    /// The standard NVIDIA configuration: 32 banks of 4-byte words.
    #[must_use]
    pub fn nvidia() -> Self {
        Self::new(32)
    }

    /// The fused row a word address belongs to (`⌊addr / width⌋`): the
    /// unit of distinctness for conflict accounting. Two word addresses in
    /// the same row are served together.
    #[inline]
    #[must_use]
    pub fn row_of(&self, addr: u32) -> u32 {
        addr / self.bank_word_u32s
    }

    /// Bank holding word address `addr` (`⌊addr / width⌋ mod w`; with the
    /// default 4-byte banks this is the paper's `addr mod w`).
    #[inline]
    #[must_use]
    pub fn bank_of(&self, addr: u32) -> u32 {
        self.row_of(addr) % self.num_banks
    }

    /// Exact cost of one lock-step access by up to `w` lanes.
    ///
    /// `addrs` holds the word addresses issued this round, one entry per
    /// *active* lane (inactive/predicated-off lanes are simply omitted).
    /// Duplicated addresses are broadcast (counted once); distinct
    /// addresses mapping to the same bank serialize — unless they share a
    /// fused bank row (64-bit-bank mode), in which case one transaction
    /// serves both halves.
    ///
    /// The implementation is the hot inner loop of the whole simulator:
    /// per-bank distinct counting over at most `w` addresses using two
    /// small stack buffers, no allocation.
    #[must_use]
    pub fn round_cost(&self, addrs: &[u32]) -> RoundCost {
        if addrs.is_empty() {
            return RoundCost::default();
        }
        let w = self.num_banks as usize;
        debug_assert!(
            addrs.len() <= w,
            "a warp round cannot issue more lanes ({}) than banks/warp width ({w})",
            addrs.len()
        );
        // distinct[b] counts distinct rows seen in bank b so far; first[b]
        // caches the first row seen in bank b (the overwhelmingly common
        // bank population is 0 or 1, so this resolves most lanes without
        // touching the spill list). With the default 4-byte banks a row IS
        // the word address, so the accounting is unchanged from the paper.
        let mut distinct = [0u8; MAX_BANKS];
        let mut first = [0u32; MAX_BANKS];
        // Spill storage for banks with ≥2 distinct rows: (bank, row).
        let mut spill: [(u32, u32); MAX_BANKS] = [(0, 0); MAX_BANKS];
        let mut spill_len = 0usize;
        assert!(w <= MAX_BANKS, "BankModel supports at most {MAX_BANKS} banks, got {w}");

        let mut max_distinct = 0u8;
        for &addr in addrs {
            let row = addr / self.bank_word_u32s;
            let b = (row % self.num_banks) as usize;
            let seen = match distinct[b] {
                0 => {
                    first[b] = row;
                    false
                }
                1 => first[b] == row,
                _ => {
                    first[b] == row
                        || spill[..spill_len].iter().any(|&(sb, sr)| sb == b as u32 && sr == row)
                }
            };
            if !seen {
                if distinct[b] >= 1 {
                    spill[spill_len] = (b as u32, row);
                    spill_len += 1;
                }
                distinct[b] += 1;
                max_distinct = max_distinct.max(distinct[b]);
            }
        }
        let transactions = u32::from(max_distinct);
        RoundCost {
            transactions,
            conflicts: transactions.saturating_sub(1),
            active_lanes: addrs.len() as u32,
        }
    }

    /// Cost of a *strided* access: lane `k` touches `base + k*stride`
    /// (the pattern of the paper's Figure 1). Convenience for tests and
    /// the figure harness.
    #[must_use]
    pub fn strided_cost(&self, base: u32, stride: u32) -> RoundCost {
        let addrs: Vec<u32> = (0..self.num_banks).map(|k| base + k * stride).collect();
        self.round_cost(&addrs)
    }
}

/// Upper bound on supported bank counts (NVIDIA uses 32; 64 covers any
/// hypothetical double-width configuration and all paper figure examples).
pub const MAX_BANKS: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_is_free() {
        let m = BankModel::nvidia();
        let c = m.round_cost(&[]);
        assert_eq!(c.transactions, 0);
        assert_eq!(c.conflicts, 0);
        assert_eq!(c.active_lanes, 0);
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        let m = BankModel::nvidia();
        let addrs: Vec<u32> = (100..132).collect();
        let c = m.round_cost(&addrs);
        assert_eq!(c.transactions, 1);
        assert_eq!(c.conflicts, 0);
    }

    #[test]
    fn figure1_coprime_vs_noncoprime_stride() {
        // Figure 1: w = 12. Stride 5 (coprime) → 1 transaction; stride 6
        // (gcd 6) → 6 distinct words per used bank → 6 transactions.
        let m = BankModel::new(12);
        assert_eq!(m.strided_cost(0, 5).conflicts, 0);
        assert_eq!(m.strided_cost(0, 6).transactions, 6);
        assert_eq!(m.strided_cost(0, 6).conflicts, 5);
        // Worst case: stride w → all 12 words in bank 0.
        assert_eq!(m.strided_cost(0, 12).transactions, 12);
    }

    #[test]
    fn stride_cost_equals_gcd() {
        // Classical result: w lanes at stride s produce gcd(s, w)
        // transactions (each used bank receives gcd distinct words).
        for w in 1u32..=33 {
            let m = BankModel::new(w);
            for s in 1u32..=64 {
                let g = cfmerge_numtheory::gcd(u64::from(s), u64::from(w)) as u32;
                assert_eq!(m.strided_cost(7, s).transactions, g, "w={w} s={s}");
            }
        }
    }

    #[test]
    fn broadcast_is_free() {
        let m = BankModel::nvidia();
        // All 32 lanes read the same word: one transaction, no conflict.
        let addrs = [17u32; 32];
        let c = m.round_cost(&addrs);
        assert_eq!(c.transactions, 1);
        assert_eq!(c.conflicts, 0);
        // Two groups broadcasting two words in *different* banks: still 1.
        let mut addrs = [5u32; 32];
        addrs[16..].fill(6);
        assert_eq!(m.round_cost(&addrs).transactions, 1);
        // Two distinct words in the SAME bank: 2 transactions even with
        // broadcast within each group.
        let mut addrs = [5u32; 32];
        addrs[16..].fill(5 + 32);
        let c = m.round_cost(&addrs);
        assert_eq!(c.transactions, 2);
        assert_eq!(c.conflicts, 1);
    }

    #[test]
    fn partial_warp() {
        let m = BankModel::nvidia();
        let c = m.round_cost(&[0, 32, 64]);
        assert_eq!(c.transactions, 3);
        assert_eq!(c.active_lanes, 3);
    }

    #[test]
    fn mixed_pattern_matches_naive_count() {
        // Cross-check the fast implementation against a naive set-based
        // computation on many patterns.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xC0FFEE);
        for w in [4u32, 12, 32] {
            let m = BankModel::new(w);
            for _ in 0..500 {
                let lanes = rng.gen_range(1..=w as usize);
                let addrs: Vec<u32> = (0..lanes).map(|_| rng.gen_range(0..4 * w)).collect();
                let naive = {
                    let mut per_bank: Vec<std::collections::BTreeSet<u32>> =
                        vec![Default::default(); w as usize];
                    for &a in &addrs {
                        per_bank[(a % w) as usize].insert(a);
                    }
                    per_bank.iter().map(|s| s.len() as u32).max().unwrap_or(0)
                };
                assert_eq!(m.round_cost(&addrs).transactions, naive, "w={w} {addrs:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = BankModel::new(0);
    }

    #[test]
    fn fused_rows_merge_adjacent_words() {
        // 64-bit banks: words 2k and 2k+1 share a row, so a warp reading
        // both halves of 16 rows costs one transaction.
        let m = BankModel::with_word(32, 2);
        let addrs: Vec<u32> = (0..32).collect();
        assert_eq!(m.round_cost(&addrs).transactions, 1);
        // Two words one row apart in the same bank (64 words apart)
        // serialize exactly as in the classic model.
        let c = m.round_cost(&[0, 64]);
        assert_eq!(c.transactions, 2);
        // …but the same pair under 4-byte banks also serializes, while
        // the fused pair {0, 1} does not.
        assert_eq!(m.round_cost(&[0, 1]).transactions, 1);
        assert_eq!(BankModel::new(32).round_cost(&[0, 1]).transactions, 1);
    }

    #[test]
    fn fused_stride_costs() {
        // Even stride 2a on 64-bit banks degenerates to row stride a:
        // exactly gcd(a, w) transactions. Odd strides visit each residue
        // mod 2w once, so every bank holds ≤ 2 distinct rows.
        for w in [8u32, 16, 32] {
            let m = BankModel::with_word(w, 2);
            for a in 1..=w {
                let even = m.strided_cost(0, 2 * a);
                assert_eq!(
                    even.transactions,
                    cfmerge_numtheory::gcd(u64::from(a), u64::from(w)) as u32,
                    "w={w} stride={}",
                    2 * a
                );
            }
            for s in (1..2 * w).step_by(2) {
                for base in [0, 1] {
                    let c = m.strided_cost(base, s);
                    assert!(c.transactions <= 2, "w={w} s={s} base={base}: {}", c.transactions);
                }
            }
        }
        // The qualitative change the Afshani–Sitchinava analysis predicts:
        // stride 15 is conflict-free on 4-byte banks but not on 8-byte.
        assert_eq!(BankModel::new(32).strided_cost(0, 15).transactions, 1);
        assert_eq!(BankModel::with_word(32, 2).strided_cost(0, 15).transactions, 2);
    }

    #[test]
    fn bank_model_json_roundtrip_defaults_width() {
        // Default width is omitted from JSON (pre-existing artifacts stay
        // bit-identical) and parsed back as 1.
        let classic = BankModel::new(32);
        assert!(!classic.to_json().to_string_pretty().contains("bank_word_u32s"));
        assert_eq!(BankModel::from_json(&classic.to_json()).unwrap(), classic);
        let fused = BankModel::with_word(32, 2);
        let back = BankModel::from_json(&fused.to_json()).unwrap();
        assert_eq!(back, fused);
        assert_eq!(back.bank_word_u32s, 2);
    }
}
