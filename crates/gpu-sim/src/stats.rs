//! Small statistics helpers used by the experiment harness: running
//! summaries and conflict-degree histograms.

use cfmerge_json::{FromJson, Json, JsonError, ToJson};

/// Incremental min/max/mean/variance (Welford) over `f64` samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 for < 2 samples).
    #[must_use]
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample (`None` if empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl ToJson for RunningStats {
    /// `min`/`max` are emitted only when at least one sample was pushed:
    /// the empty summary's internal `+∞`/`−∞` sentinels have no JSON
    /// representation.
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("n".to_owned(), Json::from(self.n)),
            ("mean".to_owned(), Json::from(self.mean())),
            ("stddev".to_owned(), Json::from(self.stddev())),
            ("m2".to_owned(), Json::from(self.m2)),
        ];
        if let (Some(min), Some(max)) = (self.min(), self.max()) {
            pairs.push(("min".to_owned(), Json::from(min)));
            pairs.push(("max".to_owned(), Json::from(max)));
        }
        Json::Obj(pairs)
    }
}

impl FromJson for RunningStats {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let n: u64 = v.field("n")?;
        let min: Option<f64> = v.field_opt("min")?;
        let max: Option<f64> = v.field_opt("max")?;
        if (n == 0) != (min.is_none() && max.is_none()) {
            return Err(JsonError::new("RunningStats: min/max must be present exactly when n > 0"));
        }
        Ok(Self {
            n,
            mean: v.field("mean")?,
            m2: v.field("m2")?,
            min: min.unwrap_or(f64::INFINITY),
            max: max.unwrap_or(f64::NEG_INFINITY),
        })
    }
}

/// Histogram of per-round transaction degrees (1 = conflict-free round,
/// `w` = fully serialized). Used to reproduce Karsin et al.'s "2–3 bank
/// conflicts per step on random inputs" observation with full
/// distributional detail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegreeHistogram {
    counts: Vec<u64>,
}

impl DegreeHistogram {
    /// Histogram able to record degrees `0..=max_degree`.
    #[must_use]
    pub fn new(max_degree: u32) -> Self {
        Self { counts: vec![0; max_degree as usize + 1] }
    }

    /// Record one round with the given transaction degree.
    pub fn record(&mut self, degree: u32) {
        if self.counts.is_empty() {
            self.counts.resize(degree as usize + 1, 0);
        }
        if (degree as usize) >= self.counts.len() {
            self.counts.resize(degree as usize + 1, 0);
        }
        self.counts[degree as usize] += 1;
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &DegreeHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Total rounds recorded.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total conflicts (Σ (degree − 1) · count for degree ≥ 1).
    #[must_use]
    pub fn total_conflicts(&self) -> u64 {
        self.counts.iter().enumerate().skip(1).map(|(d, &c)| (d as u64 - 1) * c).sum()
    }

    /// Mean conflicts per round — the Karsin et al. statistic.
    #[must_use]
    pub fn mean_conflicts_per_round(&self) -> f64 {
        let rounds = self.total_rounds();
        if rounds == 0 {
            0.0
        } else {
            self.total_conflicts() as f64 / rounds as f64
        }
    }

    /// Fraction of rounds that were conflict-free (degree ≤ 1).
    #[must_use]
    pub fn conflict_free_fraction(&self) -> f64 {
        let rounds = self.total_rounds();
        if rounds == 0 {
            return 1.0;
        }
        let free =
            self.counts.first().copied().unwrap_or(0) + self.counts.get(1).copied().unwrap_or(0);
        free as f64 / rounds as f64
    }

    /// Raw bucket counts, index = degree.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Highest degree observed, if any round was recorded.
    #[must_use]
    pub fn max_degree(&self) -> Option<u32> {
        self.counts.iter().rposition(|&c| c > 0).map(|d| d as u32)
    }
}

impl ToJson for DegreeHistogram {
    fn to_json(&self) -> Json {
        // Trailing zero buckets carry no information; trimming them keeps
        // equal histograms textually equal regardless of capacity.
        let last = self.counts.iter().rposition(|&c| c > 0).map_or(0, |d| d + 1);
        Json::obj([("buckets", self.counts[..last].to_json())])
    }
}

impl FromJson for DegreeHistogram {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self { counts: v.field("buckets")? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn histogram_conflict_math() {
        let mut h = DegreeHistogram::new(32);
        // 10 conflict-free rounds, 5 rounds of degree 3, 1 round of 32.
        for _ in 0..10 {
            h.record(1);
        }
        for _ in 0..5 {
            h.record(3);
        }
        h.record(32);
        assert_eq!(h.total_rounds(), 16);
        assert_eq!(h.total_conflicts(), 5 * 2 + 31);
        assert!((h.mean_conflicts_per_round() - 41.0 / 16.0).abs() < 1e-12);
        assert!((h.conflict_free_fraction() - 10.0 / 16.0).abs() < 1e-12);
        assert_eq!(h.max_degree(), Some(32));
    }

    #[test]
    fn histogram_merge_and_growth() {
        let mut a = DegreeHistogram::new(4);
        a.record(2);
        let mut b = DegreeHistogram::new(8);
        b.record(8);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.total_rounds(), 3);
        assert_eq!(a.buckets()[2], 2);
        assert_eq!(a.buckets()[8], 1);
        // Recording past the current size grows the histogram.
        a.record(20);
        assert_eq!(a.max_degree(), Some(20));
    }

    #[test]
    fn empty_histogram_is_conflict_free() {
        let h = DegreeHistogram::new(32);
        assert_eq!(h.mean_conflicts_per_round(), 0.0);
        assert_eq!(h.conflict_free_fraction(), 1.0);
        assert_eq!(h.max_degree(), None);
    }

    #[test]
    fn running_stats_json_roundtrip() {
        let mut s = RunningStats::new();
        for x in [3.5, -1.0, 8.25, 0.0] {
            s.push(x);
        }
        let text = s.to_json().to_string_pretty();
        let back = RunningStats::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.min(), Some(-1.0));
        assert_eq!(back.max(), Some(8.25));
    }

    #[test]
    fn empty_running_stats_json_roundtrip() {
        // The empty summary's ±∞ sentinels must not leak into JSON (they
        // have no representation there); min/max are simply omitted.
        let s = RunningStats::new();
        let j = s.to_json();
        assert!(j.get("min").is_none());
        assert!(j.get("max").is_none());
        let text = j.to_string_compact();
        assert!(!text.contains("inf") && !text.contains("null"), "{text}");
        let back = RunningStats::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.min(), None);
        assert_eq!(back.max(), None);
        // Pushing into the deserialized copy behaves like a fresh one.
        let mut back = back;
        back.push(2.0);
        assert_eq!(back.min(), Some(2.0));
        assert_eq!(back.max(), Some(2.0));
    }

    #[test]
    fn inconsistent_running_stats_json_rejected() {
        let bad = Json::parse(r#"{"n": 0, "mean": 0, "m2": 0, "min": 1, "max": 2}"#).unwrap();
        assert!(RunningStats::from_json(&bad).is_err());
        let bad = Json::parse(r#"{"n": 3, "mean": 1, "m2": 0}"#).unwrap();
        assert!(RunningStats::from_json(&bad).is_err());
    }

    #[test]
    fn histogram_json_roundtrip() {
        let mut h = DegreeHistogram::new(8);
        h.record(1);
        h.record(3);
        h.record(8);
        let back =
            DegreeHistogram::from_json(&Json::parse(&h.to_json().to_string_compact()).unwrap())
                .unwrap();
        assert_eq!(back, h);
        // An empty histogram serializes to empty buckets regardless of
        // capacity (trailing zeros are trimmed).
        let empty = DegreeHistogram::new(32).to_json();
        assert_eq!(empty.to_string_compact(), r#"{"buckets":[]}"#);
    }
}
