//! Small statistics helpers used by the experiment harness: running
//! summaries and conflict-degree histograms.

use serde::{Deserialize, Serialize};

/// Incremental min/max/mean/variance (Welford) over `f64` samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 for < 2 samples).
    #[must_use]
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample (`None` if empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Histogram of per-round transaction degrees (1 = conflict-free round,
/// `w` = fully serialized). Used to reproduce Karsin et al.'s "2–3 bank
/// conflicts per step on random inputs" observation with full
/// distributional detail.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeHistogram {
    counts: Vec<u64>,
}

impl DegreeHistogram {
    /// Histogram able to record degrees `0..=max_degree`.
    #[must_use]
    pub fn new(max_degree: u32) -> Self {
        Self { counts: vec![0; max_degree as usize + 1] }
    }

    /// Record one round with the given transaction degree.
    pub fn record(&mut self, degree: u32) {
        if self.counts.is_empty() {
            self.counts.resize(degree as usize + 1, 0);
        }
        if (degree as usize) >= self.counts.len() {
            self.counts.resize(degree as usize + 1, 0);
        }
        self.counts[degree as usize] += 1;
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &DegreeHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Total rounds recorded.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total conflicts (Σ (degree − 1) · count for degree ≥ 1).
    #[must_use]
    pub fn total_conflicts(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .skip(1)
            .map(|(d, &c)| (d as u64 - 1) * c)
            .sum()
    }

    /// Mean conflicts per round — the Karsin et al. statistic.
    #[must_use]
    pub fn mean_conflicts_per_round(&self) -> f64 {
        let rounds = self.total_rounds();
        if rounds == 0 {
            0.0
        } else {
            self.total_conflicts() as f64 / rounds as f64
        }
    }

    /// Fraction of rounds that were conflict-free (degree ≤ 1).
    #[must_use]
    pub fn conflict_free_fraction(&self) -> f64 {
        let rounds = self.total_rounds();
        if rounds == 0 {
            return 1.0;
        }
        let free = self.counts.first().copied().unwrap_or(0)
            + self.counts.get(1).copied().unwrap_or(0);
        free as f64 / rounds as f64
    }

    /// Raw bucket counts, index = degree.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Highest degree observed, if any round was recorded.
    #[must_use]
    pub fn max_degree(&self) -> Option<u32> {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|d| d as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn histogram_conflict_math() {
        let mut h = DegreeHistogram::new(32);
        // 10 conflict-free rounds, 5 rounds of degree 3, 1 round of 32.
        for _ in 0..10 {
            h.record(1);
        }
        for _ in 0..5 {
            h.record(3);
        }
        h.record(32);
        assert_eq!(h.total_rounds(), 16);
        assert_eq!(h.total_conflicts(), 5 * 2 + 31);
        assert!((h.mean_conflicts_per_round() - 41.0 / 16.0).abs() < 1e-12);
        assert!((h.conflict_free_fraction() - 10.0 / 16.0).abs() < 1e-12);
        assert_eq!(h.max_degree(), Some(32));
    }

    #[test]
    fn histogram_merge_and_growth() {
        let mut a = DegreeHistogram::new(4);
        a.record(2);
        let mut b = DegreeHistogram::new(8);
        b.record(8);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.total_rounds(), 3);
        assert_eq!(a.buckets()[2], 2);
        assert_eq!(a.buckets()[8], 1);
        // Recording past the current size grows the histogram.
        a.record(20);
        assert_eq!(a.max_degree(), Some(20));
    }

    #[test]
    fn empty_histogram_is_conflict_free() {
        let h = DegreeHistogram::new(32);
        assert_eq!(h.mean_conflicts_per_round(), 0.0);
        assert_eq!(h.conflict_free_fraction(), 1.0);
        assert_eq!(h.max_degree(), None);
    }
}
