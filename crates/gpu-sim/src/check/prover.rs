//! Symbolic conflict-freedom prover over [`Pattern`]s.
//!
//! Each rule eliminates the free variables of a schedule (lane id, round
//! number, warp index, merge-path split, A/B boundary) with a
//! number-theoretic argument, so a [`Verdict::ConflictFree`] holds for
//! **all** inputs — unlike the profiler, which only observes the inputs it
//! is fed. See `docs/ANALYSIS.md` for the proofs the certificates cite.

use super::affine::{rho, Pattern};
use super::shape::BankShape;
use crate::banks::BankModel;
use cfmerge_numtheory::{corollary17_holds, corollary18_holds, gcd};

/// Why a verdict holds: the rule that fired and its side conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Short rule name (`affine-gcd`, `gather-rho`, …).
    pub rule: &'static str,
    /// Human-readable side conditions and the argument they support.
    pub detail: String,
}

/// The prover's answer for one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Certified conflict-free for every round, warp, and input.
    ConflictFree(Certificate),
    /// Certified to conflict: every full-warp round splits into exactly
    /// `transactions` transactions.
    Conflicting {
        /// Transactions per round (`degree`; conflicts = degree − 1).
        transactions: u32,
        /// Why.
        certificate: Certificate,
    },
    /// No schedule-level argument applies (addresses are data-dependent).
    NotCertifiable {
        /// Why not.
        reason: String,
    },
}

impl Verdict {
    /// `true` for [`Verdict::ConflictFree`].
    #[must_use]
    pub fn is_conflict_free(&self) -> bool {
        matches!(self, Verdict::ConflictFree(_))
    }

    /// One-line summary for reports.
    #[must_use]
    pub fn summary(&self) -> String {
        match self {
            Verdict::ConflictFree(c) => format!("conflict-free [{}]", c.rule),
            Verdict::Conflicting { transactions, certificate } => {
                format!("{transactions}-way conflict [{}]", certificate.rule)
            }
            Verdict::NotCertifiable { reason } => format!("not certifiable: {reason}"),
        }
    }
}

/// Certify `pattern` on a `w`-bank device, for all lane/round/input
/// values. Purely symbolic: the only finite evaluation is over the
/// schedule's own static structure (never over key values).
#[must_use]
pub fn prove(pattern: &Pattern, w: usize) -> Verdict {
    match *pattern {
        Pattern::Affine { form, .. } => prove_affine(form.lane, w),
        Pattern::GatherCf { e } => prove_gather_cf(e, w),
        Pattern::GatherReversal { e } => prove_gather_reversal(e, w),
        Pattern::Reflected { e, run_w, warps } => prove_reflected(e, run_w, warps, w),
        Pattern::PermutedLoad { e } => prove_permuted_load(e, w),
        Pattern::DataDependent(why) => Verdict::NotCertifiable { reason: why.to_string() },
    }
}

/// Certify `pattern` on an explicit device [`BankShape`], for all
/// lane/round/input values and `warps` resident warps.
///
/// * Shapes **outside the supported lattice** (degenerate or oversized
///   bank counts, row widths other than 32/64-bit) get a fail-closed
///   [`Verdict::NotCertifiable`] — never an optimistic answer.
/// * 32-bit rows delegate to the symbolic rules of [`prove`].
/// * 64-bit rows (Kepler's `cudaSharedMemBankSizeEightByte`, the mode
///   Afshani & Sitchinava analyze) are decided by **complete enumeration**
///   of [`Pattern::exhaustive_rounds`]: every free variable a symbolic
///   rule would eliminate (base parity, window alignment, merge boundary)
///   is finite once addresses are reduced modulo the fused row structure,
///   so the evaluation is exact, not sampled.
#[must_use]
pub fn prove_on(pattern: &Pattern, shape: BankShape, warps: usize) -> Verdict {
    if !shape.supported() {
        return Verdict::NotCertifiable {
            reason: format!(
                "device shape {} is outside the supported lattice (1 ≤ banks ≤ {}, 32/64-bit \
                 rows) — failing closed",
                shape.label(),
                crate::banks::MAX_BANKS
            ),
        };
    }
    if shape.word_u32s == 1 {
        return prove(pattern, shape.banks);
    }
    match *pattern {
        Pattern::DataDependent(why) => Verdict::NotCertifiable { reason: why.to_string() },
        Pattern::PermutedLoad { e } if gcd(e as u64, shape.banks as u64) != 1 => {
            Verdict::NotCertifiable {
                reason: format!(
                    "d = gcd({e}, {}) > 1: the permuting load's layout applies ρ on top of \
                     the split schedule, which the IR models only for d = 1",
                    shape.banks
                ),
            }
        }
        _ => prove_fused_exhaustive(pattern, shape, warps),
    }
}

/// Exact evaluation of a schedule's complete round enumeration under a
/// fused (64-bit) bank row. Soundness rests on the coverage lemmas
/// documented on [`Pattern::exhaustive_rounds`]: base parity for affine
/// schedules (a base shift of 2 moves all rows equally), window alignment
/// mod `2w` for the gathers (`ρ(c + d·partition) = ρ(c) + w·E`), and the
/// two extremes plus every crossing round for the boundary permutation.
fn prove_fused_exhaustive(pattern: &Pattern, shape: BankShape, warps: usize) -> Verdict {
    let rule = match pattern {
        Pattern::Affine { .. } => "fused-affine-parity",
        Pattern::GatherCf { .. } | Pattern::GatherReversal { .. } => "fused-window-exhaustive",
        Pattern::Reflected { .. } => "fused-static-exhaustive",
        Pattern::PermutedLoad { .. } => "fused-boundary-exhaustive",
        Pattern::DataDependent(_) => unreachable!("handled by prove_on"),
    };
    let rounds = pattern.exhaustive_rounds(shape.banks, warps);
    if rounds.is_empty() {
        return Verdict::NotCertifiable {
            reason: format!("{rule}: schedule has no enumerable rounds"),
        };
    }
    let model = shape.bank_model();
    let mut worst = 0u32;
    for round in &rounds {
        worst = worst.max(model.round_cost(round).transactions);
    }
    let detail = format!(
        "complete enumeration of {} rounds on {} (free variables reduced to a finite cover \
         by parity/alignment/boundary lemmas); worst round = {worst} transaction(s)",
        rounds.len(),
        shape.label()
    );
    if worst <= 1 {
        Verdict::ConflictFree(Certificate { rule, detail })
    } else {
        Verdict::Conflicting { transactions: worst, certificate: Certificate { rule, detail } }
    }
}

/// Affine `base + a·tid + b·round`: within a warp the `w` addresses form
/// an arithmetic progression with common difference `a`. Adding the same
/// `base + b·round + a·w·warp` to every lane shifts all banks equally, so
/// the round and warp variables vanish, and the bank multiset is
/// `{k·a mod w}` — each of the `w/gcd(a,w)` banks of the subgroup
/// `⟨a⟩ ⊆ Z_w` hit exactly `gcd(a,w)` times.
fn prove_affine(a: i64, w: usize) -> Verdict {
    if a == 0 {
        return Verdict::ConflictFree(Certificate {
            rule: "broadcast",
            detail: "lane coefficient 0: all lanes address one word, served by a single \
                     broadcast transaction"
                .into(),
        });
    }
    let a = a.unsigned_abs();
    let wu = w as u64;
    // Corollary 17 justifies reducing the stride mod w before the gcd.
    debug_assert!(corollary17_holds(a, wu));
    let g = gcd(a, wu);
    let detail = format!(
        "lane stride {a}: banks form the subgroup ⟨{a} mod {w}⟩ of order {}, each hit \
         gcd({a}, {w}) = {g} times; base/round/warp terms shift all lanes equally \
         (Corollary 17 reduces the stride mod w)",
        wu / g
    );
    if g == 1 {
        Verdict::ConflictFree(Certificate { rule: "affine-gcd", detail })
    } else {
        Verdict::Conflicting {
            transactions: g as u32,
            certificate: Certificate { rule: "affine-gcd", detail },
        }
    }
}

/// The CF-Merge gather (Theorem of §3.1–3.3): certified by the chain
///
/// 1. *Ownership*: merge-path splits give each thread exactly one element
///    of each residue class mod E, so round `j`'s read *set* is all
///    class-`j` elements of the warp's window — which lane reads which is
///    data-dependent, the set is not.
/// 2. *Window shape*: with `w | u`, a warp's threads cover `w` consecutive
///    `q = ⌊c/E⌋` values (as two runs with `q_A ≡ q_B_end + 1 (mod w)`),
///    so the logical reads are `{q·E + j}` over `w` consecutive `q`.
/// 3. *ρ bijectivity per round*: banks of `ρ(q·E + j)` over any `w`
///    consecutive `q` form a complete residue system mod `w`: within an
///    aligned window each partition's `w/d` values hit one coset of
///    `d·Z_w` exactly once (`⟨E⟩` has order `w/d` since
///    `gcd(E/d, w/d) = 1`, Corollary 18), and the `d` partitions hit the
///    `d` distinct cosets.
fn prove_gather_cf(e: usize, w: usize) -> Verdict {
    if e == 0 || w == 0 {
        return Verdict::NotCertifiable { reason: "degenerate E or w".into() };
    }
    let d = gcd(w as u64, e as u64) as usize;
    // Side condition (Corollary 18): E/d and w/d coprime — the subgroup
    // ⟨E⟩ ⊆ Z_w has order exactly w/d.
    if !corollary18_holds(e as u64, w as u64) {
        return Verdict::NotCertifiable { reason: "Corollary 18 side condition failed".into() };
    }
    let order = (1..=w).find(|t| (t * e).is_multiple_of(w)).unwrap_or(0);
    if order != w / d {
        return Verdict::NotCertifiable {
            reason: format!("⟨E⟩ has order {order}, expected w/d = {}", w / d),
        };
    }
    // Structural guard for step 3: verify ρ's per-round bank bijectivity
    // on one period of the schedule (q ∈ [0, w), all E rounds). This
    // evaluates the *static* permutation ρ only — no input is involved —
    // and protects the certificate against drift between this replica of
    // ρ and the layout's.
    let partition = w * e / d;
    debug_assert_eq!(partition % w, 0, "partition w·E/d is a multiple of w since d | E");
    for j in 0..e {
        let mut seen = vec![false; w];
        for q in 0..w {
            let bank = rho(q * e + j, partition, d) % w;
            if seen[bank] {
                return Verdict::NotCertifiable {
                    reason: format!("ρ bank bijectivity failed in round {j} at q = {q}"),
                };
            }
            seen[bank] = true;
        }
    }
    Verdict::ConflictFree(Certificate {
        rule: "gather-rho",
        detail: format!(
            "d = gcd({w}, {e}) = {d}; gcd(E/d, w/d) = 1 (Corollary 18) gives ⟨E⟩ order \
             w/d = {}; each round reads ρ(q·E + j) over w consecutive q (ownership + \
             w | u window lemma), whose banks are a complete residue system mod {w} — \
             for every input, split, and round",
            w / d
        ),
    })
}

/// The blocksort gather over a reversal-only layout (ρ = identity): round
/// `j` reads `{q·E + j}` over `w` consecutive `q`, whose banks are
/// `{q·E + j mod w}` — exactly `gcd(E, w)` transactions, so conflict-free
/// iff `E ⊥ w`.
fn prove_gather_reversal(e: usize, w: usize) -> Verdict {
    if e == 0 || w == 0 {
        return Verdict::NotCertifiable { reason: "degenerate E or w".into() };
    }
    let d = gcd(e as u64, w as u64) as u32;
    let detail = format!(
        "round set is q·E + j over w consecutive q; banks repeat with period \
         w/gcd(E, w), giving gcd({e}, {w}) = {d} transactions per round"
    );
    if d == 1 {
        Verdict::ConflictFree(Certificate { rule: "gather-reversal-gcd", detail })
    } else {
        Verdict::Conflicting {
            transactions: d,
            certificate: Certificate { rule: "gather-reversal-gcd", detail },
        }
    }
}

/// The blocksort CF writeback (`cf_rank_slot`) is a *static* schedule —
/// lane and round determine the slot with no input anywhere — so the
/// certificate is a complete evaluation of its finite structure: every
/// (warp, round) pair's slot vector is costed exactly. No input
/// quantifier exists to eliminate.
fn prove_reflected(e: usize, run_w: usize, warps: usize, w: usize) -> Verdict {
    let pattern = Pattern::Reflected { e, run_w, warps };
    let model = BankModel::new(w as u32);
    let mut worst = 0u32;
    for round in pattern.sample_rounds(w, warps) {
        worst = worst.max(model.round_cost(&round).transactions);
    }
    let detail = format!(
        "static input-independent schedule; complete evaluation over all \
         {warps}×{e} (warp, round) pairs, worst round = {worst} transaction(s)"
    );
    if worst <= 1 {
        Verdict::ConflictFree(Certificate { rule: "reflected-exhaustive", detail })
    } else {
        Verdict::Conflicting {
            transactions: worst,
            certificate: Certificate { rule: "reflected-exhaustive", detail },
        }
    }
}

/// The merge-pass CF tile load's permuting store, `d = 1` case: round
/// `r`, lane `k` of warp `v` stores flat index `s = s₀ + k` with warp
/// base `s₀ = r·u + v·w ≡ 0 (mod w)` (since `w | u`). Indices below the
/// data-dependent boundary `a_len` store to slot `s` (bank `≡ k`), the
/// rest to `total − 1 − (s − a_len)` (bank `≡ k_b − 1 − k (mod w)` where
/// `k_b = a_len − s₀` is the boundary lane). A collision needs
/// `k₁ + k₂ ≡ k_b − 1 (mod w)` with `k₁ < k_b ≤ k₂ < w`, but then
/// `k₁ + k₂ ≥ k_b` and the next representative `k_b − 1 + w` forces
/// `k₁ ≥ k_b` — impossible. The boundary `a_len` is universally
/// quantified away: the argument holds for every value.
fn prove_permuted_load(e: usize, w: usize) -> Verdict {
    if e == 0 || w == 0 {
        return Verdict::NotCertifiable { reason: "degenerate E or w".into() };
    }
    let d = gcd(e as u64, w as u64);
    if d != 1 {
        return Verdict::NotCertifiable {
            reason: format!(
                "d = gcd({e}, {w}) = {d} > 1: ρ shifts the two pieces by different \
                 partition offsets at a data-dependent round; conflicts are bounded \
                 (≤ w − 1 per block) but not zero"
            ),
        };
    }
    Verdict::ConflictFree(Certificate {
        rule: "split-unit-stride",
        detail: format!(
            "d = gcd({e}, {w}) = 1 so ρ is the identity; ascending piece has bank ≡ k, \
             descending piece bank ≡ k_b − 1 − k (mod w) with warp base ≡ 0 (mod w); \
             k₁ + k₂ ≡ k_b − 1 (mod w) has no solution with k₁ < k_b ≤ k₂ < w, for \
             every boundary a_len"
        ),
    })
}

/// Cross-validate a verdict against [`BankModel::round_cost`] on sampled
/// concretizations of the pattern (the issue's belt-and-braces check that
/// the symbolic rules and the cost model agree).
///
/// # Errors
/// Returns a description of the first disagreement found.
pub fn cross_validate(
    pattern: &Pattern,
    verdict: &Verdict,
    w: usize,
    warps: usize,
) -> Result<(), String> {
    let rounds = pattern.sample_rounds(w, warps);
    let model = BankModel::new(w as u32);
    let mut worst = 0u32;
    for (i, round) in rounds.iter().enumerate() {
        let t = model.round_cost(round).transactions;
        if matches!(verdict, Verdict::ConflictFree(_)) && t > 1 {
            return Err(format!(
                "certified conflict-free, but sampled round {i} costs {t} transactions \
                 (addrs {round:?})"
            ));
        }
        worst = worst.max(t);
    }
    if let Verdict::Conflicting { transactions, .. } = verdict {
        if rounds.is_empty() {
            return Err("conflicting verdict but the pattern yields no sample rounds".into());
        }
        if worst != *transactions {
            return Err(format!(
                "verdict claims {transactions} transactions, sampling observed {worst}"
            ));
        }
    }
    Ok(())
}

/// Cross-validate a device-parametric verdict against the shape's own
/// [`BankModel`] on the pattern's sampled concretizations.
///
/// A [`Verdict::ConflictFree`] must never be contradicted by a sampled
/// round. A [`Verdict::Conflicting`] claim is an exact worst case over the
/// *complete* schedule, so sampling must observe `worst ≤ claimed`; exact
/// equality is additionally required for fully static patterns
/// ([`Pattern::Affine`], [`Pattern::Reflected`]) whose samples already
/// enumerate every round — but not for the alignment/boundary-dependent
/// patterns, whose samples fix one data-dependent choice.
///
/// # Errors
/// Returns a description of the first disagreement found.
pub fn cross_validate_on(
    pattern: &Pattern,
    verdict: &Verdict,
    shape: BankShape,
    warps: usize,
) -> Result<(), String> {
    if !shape.supported() {
        return match verdict {
            Verdict::NotCertifiable { .. } => Ok(()),
            v => Err(format!(
                "unsupported shape {} must fail closed, got {}",
                shape.label(),
                v.summary()
            )),
        };
    }
    let rounds = pattern.sample_rounds(shape.banks, warps);
    let model = shape.bank_model();
    let mut worst = 0u32;
    for (i, round) in rounds.iter().enumerate() {
        let t = model.round_cost(round).transactions;
        if matches!(verdict, Verdict::ConflictFree(_)) && t > 1 {
            return Err(format!(
                "certified conflict-free on {}, but sampled round {i} costs {t} transactions \
                 (addrs {round:?})",
                shape.label()
            ));
        }
        worst = worst.max(t);
    }
    if let Verdict::Conflicting { transactions, .. } = verdict {
        if rounds.is_empty() {
            return Err("conflicting verdict but the pattern yields no sample rounds".into());
        }
        if worst > *transactions {
            return Err(format!(
                "verdict claims {transactions} transactions on {}, sampling observed {worst}",
                shape.label()
            ));
        }
        // Exact equality is demanded only where the sample enumerates the
        // same set the verdict was proved over: the reflected writeback
        // (static, width-independent enumeration) and affine schedules on
        // 32-bit rows. The fused affine rule quantifies over both base
        // parities — a sound superset of the one parity the sample
        // realizes — and the gather/boundary patterns fix one
        // data-dependent choice per sample.
        let requires_exact = match pattern {
            Pattern::Reflected { .. } => true,
            Pattern::Affine { .. } => shape.word_u32s == 1,
            _ => false,
        };
        if requires_exact && worst != *transactions {
            return Err(format!(
                "static schedule claims exactly {transactions} transactions on {}, complete \
                 sample observed {worst}",
                shape.label()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::AffineForm;

    fn affine(lane: i64, rounds: usize) -> Pattern {
        Pattern::Affine { form: AffineForm { base: 0, lane, step: 1 }, rounds }
    }

    #[test]
    fn affine_coprime_stride_is_conflict_free() {
        for (lane, w) in [(15, 32), (17, 32), (1, 32), (31, 32), (5, 8)] {
            let v = prove(&affine(lane, 4), w);
            assert!(v.is_conflict_free(), "stride {lane} vs w={w}: {}", v.summary());
            cross_validate(&affine(lane, 4), &v, w, 2).unwrap();
        }
    }

    #[test]
    fn affine_shared_factor_degree_is_gcd() {
        let p = affine(16, 4);
        match prove(&p, 32) {
            Verdict::Conflicting { transactions, .. } => assert_eq!(transactions, 16),
            v => panic!("expected conflict, got {}", v.summary()),
        }
        cross_validate(&p, &prove(&p, 32), 32, 2).unwrap();
    }

    #[test]
    fn broadcast_is_free() {
        let p = affine(0, 3);
        assert!(prove(&p, 32).is_conflict_free());
        cross_validate(&p, &prove(&p, 32), 32, 1).unwrap();
    }

    #[test]
    fn gather_cf_certified_for_coprime_and_noncoprime_e() {
        for (e, w) in [(15, 32), (17, 32), (16, 32), (12, 32), (6, 8), (4, 32)] {
            let p = Pattern::GatherCf { e };
            let v = prove(&p, w);
            assert!(v.is_conflict_free(), "E={e} w={w}: {}", v.summary());
            cross_validate(&p, &v, w, 3).unwrap();
        }
    }

    #[test]
    fn gather_reversal_certified_iff_coprime() {
        let v = prove(&Pattern::GatherReversal { e: 15 }, 32);
        assert!(v.is_conflict_free());
        match prove(&Pattern::GatherReversal { e: 16 }, 32) {
            Verdict::Conflicting { transactions, .. } => assert_eq!(transactions, 16),
            v => panic!("expected conflict, got {}", v.summary()),
        }
        for e in [15, 16] {
            let p = Pattern::GatherReversal { e };
            cross_validate(&p, &prove(&p, 32), 32, 2).unwrap();
        }
    }

    #[test]
    fn reflected_writeback_exactly_evaluated() {
        // The initial writeback (run_w = E) interleaves one ascending and
        // one descending sub-run of opposite parity: conflict-free.
        let p = Pattern::Reflected { e: 15, run_w: 15, warps: 4 };
        let v = prove(&p, 32);
        assert!(v.is_conflict_free(), "{}", v.summary());
        cross_validate(&p, &v, 32, 4).unwrap();
        // Wider inter-round writebacks mix ascending (stride E) and
        // descending (stride −E) pieces that can meet in a bank — but
        // never worse than 2 transactions for coprime E (each piece is
        // conflict-free by itself). The exact evaluation pins this down.
        for run_w in [30, 60, 120, 240] {
            let p = Pattern::Reflected { e: 15, run_w, warps: 4 };
            let v = prove(&p, 32);
            match &v {
                Verdict::Conflicting { transactions: 2, .. } => {}
                other => panic!("run_w={run_w}: {}", other.summary()),
            }
            cross_validate(&p, &v, 32, 4).unwrap();
        }
        // At run widths spanning many warps the pieces realign: free again.
        for run_w in [480, 960] {
            let p = Pattern::Reflected { e: 15, run_w, warps: 4 };
            assert!(prove(&p, 32).is_conflict_free(), "run_w={run_w}");
        }
    }

    #[test]
    fn permuted_load_certified_only_for_coprime_e() {
        let p = Pattern::PermutedLoad { e: 15 };
        let v = prove(&p, 32);
        assert!(v.is_conflict_free(), "{}", v.summary());
        cross_validate(&p, &v, 32, 4).unwrap();
        assert!(!prove(&Pattern::PermutedLoad { e: 16 }, 32).is_conflict_free());
    }

    #[test]
    fn data_dependent_is_not_certifiable() {
        match prove(&Pattern::DataDependent("serial merge"), 32) {
            Verdict::NotCertifiable { reason } => assert!(reason.contains("serial merge")),
            v => panic!("unexpected {}", v.summary()),
        }
    }

    #[test]
    fn prove_on_word32_agrees_with_point_prover() {
        let shape = BankShape::word32(32);
        for p in [
            affine(15, 4),
            affine(16, 4),
            Pattern::GatherCf { e: 15 },
            Pattern::GatherReversal { e: 16 },
            Pattern::Reflected { e: 15, run_w: 30, warps: 4 },
            Pattern::PermutedLoad { e: 17 },
            Pattern::DataDependent("serial merge"),
        ] {
            assert_eq!(prove_on(&p, shape, 4).summary(), prove(&p, 32).summary());
        }
    }

    #[test]
    fn prove_on_unsupported_shape_fails_closed() {
        for shape in [
            BankShape::word32(0),
            BankShape::word32(crate::banks::MAX_BANKS + 1),
            BankShape { banks: 32, word_u32s: 4 },
        ] {
            let v = prove_on(&affine(1, 2), shape, 2);
            match &v {
                Verdict::NotCertifiable { reason } => {
                    assert!(reason.contains("failing closed"), "{reason}");
                }
                other => panic!("expected refusal, got {}", other.summary()),
            }
            cross_validate_on(&affine(1, 2), &v, shape, 2).unwrap();
        }
    }

    #[test]
    fn fused_affine_even_stride_matches_gcd_of_half() {
        // On 64-bit rows an even stride 2a walks rows with stride a, so
        // the degree is gcd(a, w); the exhaustive rule must agree with
        // this independent analysis.
        let shape = BankShape::word64(32);
        for (lane, expect) in [(2i64, 1u32), (30, 1), (4, 2), (16, 8), (64, 32)] {
            let p = affine(lane, 4);
            let v = prove_on(&p, shape, 4);
            match &v {
                Verdict::ConflictFree(c) => {
                    assert_eq!(expect, 1, "stride {lane}: {}", c.rule);
                }
                Verdict::Conflicting { transactions, .. } => {
                    assert_eq!(*transactions, expect, "stride {lane}");
                }
                other => panic!("stride {lane}: {}", other.summary()),
            }
            cross_validate_on(&p, &v, shape, 4).unwrap();
        }
    }

    #[test]
    fn fused_odd_strides_bounded_by_two() {
        // Odd strides keep addresses distinct mod 2w, so each bank serves
        // at most 2 distinct fused rows: the paper's coprime strides lose
        // conflict-freedom on 64-bit banks but stay within degree 2.
        let shape = BankShape::word64(32);
        for lane in [1i64, 5, 15, 17, 31] {
            let p = affine(lane, 4);
            let v = prove_on(&p, shape, 4);
            match &v {
                Verdict::ConflictFree(_) => {}
                Verdict::Conflicting { transactions, .. } => {
                    assert!(*transactions <= 2, "stride {lane}: degree {transactions}");
                }
                other => panic!("stride {lane}: {}", other.summary()),
            }
            cross_validate_on(&p, &v, shape, 4).unwrap();
        }
        // Unit stride pairs lanes into shared rows: still conflict-free.
        assert!(prove_on(&affine(1, 4), shape, 4).is_conflict_free());
    }

    #[test]
    fn fused_gather_and_boundary_patterns_cross_validate() {
        let shape = BankShape::word64(32);
        for p in [
            Pattern::GatherCf { e: 15 },
            Pattern::GatherCf { e: 16 },
            Pattern::GatherReversal { e: 15 },
            Pattern::Reflected { e: 15, run_w: 30, warps: 4 },
            Pattern::PermutedLoad { e: 15 },
            Pattern::PermutedLoad { e: 17 },
        ] {
            let v = prove_on(&p, shape, 4);
            assert!(
                !matches!(v, Verdict::NotCertifiable { .. }),
                "{p:?} should be decidable on {}: {}",
                shape.label(),
                v.summary()
            );
            if let Verdict::Conflicting { transactions, .. } = &v {
                assert!(*transactions <= 32, "{p:?}: degree {transactions}");
            }
            cross_validate_on(&p, &v, shape, 4).unwrap();
        }
        // The permuting load's unit-stride pieces pair adjacent lanes
        // into shared 64-bit rows: degree stays ≤ 2 for every boundary.
        for e in [15, 17] {
            match prove_on(&Pattern::PermutedLoad { e }, shape, 4) {
                Verdict::ConflictFree(_) => {}
                Verdict::Conflicting { transactions, .. } => assert!(transactions <= 2),
                v => panic!("E={e}: {}", v.summary()),
            }
        }
    }
}
