//! Static lints over the address-schedule IR.
//!
//! The dynamic [`Sanitizer`](super::Sanitizer) checks one concrete
//! execution; these lints decide the same hazard classes **statically**,
//! over the symbolic schedules the certification pipeline already carries:
//!
//! * **`store-overlap`** — barrier-placement safety. The IR's phases are
//!   barrier-delimited single-direction schedules, so the only intra-phase
//!   hazard a barrier cannot order is two lanes (or two rounds of one
//!   lane) storing the same word. Each store schedule is enumerated per
//!   concretization and checked for duplicate addresses.
//! * **`smem-capacity`** / **`footprint-oob`** — the tile must fit the
//!   device's shared-memory budget, and no phase's static footprint may
//!   escape the tile.
//! * **`uninit-read`** — a load phase's footprint must be covered by the
//!   union of earlier store phases' footprints. Data-dependent loads are
//!   conservatively required to find the whole tile initialized;
//!   data-dependent stores conservatively initialize nothing (the dynamic
//!   sanitizer remains the authority for what they actually wrote).
//!
//! Findings are facts about the *schedule*, independent of input data, so
//! a clean lint pass holds for every run the certificate covers.

use super::affine::{reflected_slot, Pattern};
use std::collections::HashSet;
use std::fmt;

/// Direction of a phase's shared-memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The phase reads shared memory.
    Load,
    /// The phase writes shared memory.
    Store,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Access::Load => "ld",
            Access::Store => "st",
        })
    }
}

/// One barrier-delimited phase of a kernel, as the lint pass sees it:
/// the schedules of [`kernel_registry`](../../..) lowered to (direction,
/// pattern) pairs in execution order.
#[derive(Debug, Clone)]
pub struct PhaseIr {
    /// Kernel the phase belongs to (`blocksort`, `merge-pass`, …).
    pub kernel: String,
    /// Phase name (`load-tile`, `dual-gather`, …).
    pub phase: String,
    /// Traffic direction.
    pub access: Access,
    /// Symbolic address schedule.
    pub pattern: Pattern,
}

/// One lint finding: a static hazard in a kernel's schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Lint name (`store-overlap`, `smem-capacity`, `footprint-oob`,
    /// `uninit-read`).
    pub lint: &'static str,
    /// Kernel the finding is against.
    pub kernel: String,
    /// Phase the finding is against (empty for kernel-level findings).
    pub phase: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}/{}: {}", self.lint, self.kernel, self.phase, self.message)
    }
}

/// Run every lint over one kernel's phases (in execution order) for a
/// launch of `warps` warps of `w` lanes on a tile of `tile_words` shared
/// words and a device budget of `smem_budget_bytes`.
#[must_use]
pub fn lint_phases(
    phases: &[PhaseIr],
    w: usize,
    warps: usize,
    tile_words: usize,
    smem_budget_bytes: usize,
) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let kernel = phases.first().map_or_else(String::new, |p| p.kernel.clone());

    // smem-capacity: the tile itself must fit the device.
    if tile_words * 4 > smem_budget_bytes {
        findings.push(LintFinding {
            lint: "smem-capacity",
            kernel: kernel.clone(),
            phase: String::new(),
            message: format!(
                "tile of {tile_words} words ({} B) exceeds the device's shared budget of \
                 {smem_budget_bytes} B",
                tile_words * 4
            ),
        });
    }

    let mut written = vec![false; tile_words];
    for p in phases {
        let footprint = p.pattern.footprint_words(w, warps);

        // footprint-oob: the static footprint stays inside the tile.
        if let Some(words) = &footprint {
            if let Some(&max) = words.last() {
                if max as usize >= tile_words {
                    findings.push(LintFinding {
                        lint: "footprint-oob",
                        kernel: p.kernel.clone(),
                        phase: p.phase.clone(),
                        message: format!(
                            "schedule touches word {max}, beyond the {tile_words}-word tile"
                        ),
                    });
                }
            }
        }

        match p.access {
            Access::Store => {
                // store-overlap: no two stores of one barrier-delimited
                // phase may target the same word.
                if let Some(msg) = store_overlap(&p.pattern, w, warps) {
                    findings.push(LintFinding {
                        lint: "store-overlap",
                        kernel: p.kernel.clone(),
                        phase: p.phase.clone(),
                        message: msg,
                    });
                }
                if let Some(words) = &footprint {
                    for &a in words {
                        if (a as usize) < tile_words {
                            written[a as usize] = true;
                        }
                    }
                }
                // A data-dependent store initializes nothing, statically.
            }
            Access::Load => {
                // uninit-read: the load's footprint (the whole tile, for
                // data-dependent reads) must already be written.
                let required: Vec<u32> = footprint
                    .unwrap_or_else(|| (0..tile_words as u32).collect())
                    .into_iter()
                    .filter(|&a| (a as usize) < tile_words)
                    .collect();
                if let Some(&first) = required.iter().find(|&&a| !written[a as usize]) {
                    findings.push(LintFinding {
                        lint: "uninit-read",
                        kernel: p.kernel.clone(),
                        phase: p.phase.clone(),
                        message: format!(
                            "reads word {first} before any earlier phase statically wrote it"
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Duplicate-address check over a store schedule's concretizations.
/// Returns a description of the first collision, or `None` when every
/// concretization stores each word at most once.
fn store_overlap(pattern: &Pattern, w: usize, warps: usize) -> Option<String> {
    match *pattern {
        Pattern::Affine { form, rounds } => {
            // One fully static concretization: all (tid, round) pairs.
            let mut seen = HashSet::new();
            for tid in 0..warps * w {
                for t in 0..rounds {
                    let a = form.addr(tid, t);
                    if !seen.insert(a) {
                        return Some(format!(
                            "lane {tid} round {t} stores word {a}, already stored this phase \
                             (no barrier separates them)"
                        ));
                    }
                }
            }
            None
        }
        Pattern::Reflected { e, run_w, warps: pw } => {
            let total = pw * w * e;
            let mut seen = vec![false; total];
            for rank in 0..total {
                let slot = reflected_slot(rank, run_w);
                if slot >= total || seen[slot] {
                    return Some(format!("rank {rank} stores slot {slot}, not a bijection"));
                }
                seen[slot] = true;
            }
            None
        }
        Pattern::PermutedLoad { e } => {
            // One concretization per boundary; each must be a bijection
            // of [0, total). Representative boundaries cover the edge
            // cases (empty/full runs, warp-interior, warp-aligned).
            let total = warps * w * e;
            for a_len in [0, 1, w - 1, w, total / 2, total - 1, total] {
                let mut seen = vec![false; total];
                for s in 0..total {
                    let slot = if s < a_len { s } else { total - 1 - (s - a_len) };
                    if seen[slot] {
                        return Some(format!(
                            "boundary a_len={a_len}: flat index {s} stores slot {slot} twice"
                        ));
                    }
                    seen[slot] = true;
                }
            }
            None
        }
        // The gathers are load-shaped; if a registry ever marks one as a
        // store, its address map is a bijection of the tile — verify it.
        Pattern::GatherCf { .. } | Pattern::GatherReversal { .. } => {
            let words = pattern.footprint_words(w, warps)?;
            let tile = warps
                * w
                * (match *pattern {
                    Pattern::GatherCf { e } | Pattern::GatherReversal { e } => e,
                    _ => unreachable!(),
                });
            (words.len() != tile)
                .then(|| format!("gather store covers {} of {tile} tile words", words.len()))
        }
        // The dynamic sanitizer owns data-dependent stores.
        Pattern::DataDependent(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::AffineForm;

    fn coalesced(e: usize, u: usize) -> Pattern {
        Pattern::Affine { form: AffineForm { base: 0, lane: 1, step: u as i64 }, rounds: e }
    }

    fn strided(e: usize) -> Pattern {
        Pattern::Affine { form: AffineForm { base: 0, lane: e as i64, step: 1 }, rounds: e }
    }

    fn phase(kernel: &str, name: &str, access: Access, pattern: Pattern) -> PhaseIr {
        PhaseIr { kernel: kernel.into(), phase: name.into(), access, pattern }
    }

    #[test]
    fn clean_blocksort_shape_has_no_findings() {
        let (e, w, warps) = (15, 32, 16);
        let u = w * warps;
        let phases = vec![
            phase("blocksort", "load-tile", Access::Store, coalesced(e, u)),
            phase("blocksort", "register-pull", Access::Load, strided(e)),
            phase("blocksort", "sort-writeback", Access::Store, strided(e)),
            phase("blocksort", "dual-gather", Access::Load, Pattern::GatherCf { e }),
        ];
        let findings = lint_phases(&phases, w, warps, u * e, 64 * 1024);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn capacity_violation_is_reported() {
        let phases = vec![phase("blocksort", "load-tile", Access::Store, coalesced(15, 512))];
        let findings = lint_phases(&phases, 32, 16, 512 * 15, 1024);
        assert!(findings.iter().any(|f| f.lint == "smem-capacity"), "{findings:?}");
    }

    #[test]
    fn uninitialized_read_is_reported() {
        // A strided read with no store before it.
        let phases = vec![phase("blocksort", "register-pull", Access::Load, strided(15))];
        let findings = lint_phases(&phases, 32, 16, 512 * 15, 64 * 1024);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].lint, "uninit-read");
    }

    #[test]
    fn data_dependent_read_requires_full_tile_init() {
        // A partial store (half the rounds) followed by a data-dependent
        // read must be flagged: the read may touch any tile word.
        let half = Pattern::Affine { form: AffineForm { base: 0, lane: 1, step: 512 }, rounds: 7 };
        let phases = vec![
            phase("merge-pass", "load-tile", Access::Store, half),
            phase("merge-pass", "serial-merge", Access::Load, Pattern::DataDependent("merge")),
        ];
        let findings = lint_phases(&phases, 32, 16, 512 * 15, 64 * 1024);
        assert!(findings.iter().any(|f| f.lint == "uninit-read"), "{findings:?}");
    }

    #[test]
    fn overlapping_store_is_reported() {
        // Broadcast store: every lane stores word 0 — a WAW hazard no
        // barrier placement can order.
        let bad = Pattern::Affine { form: AffineForm { base: 0, lane: 0, step: 0 }, rounds: 1 };
        let phases = vec![phase("k", "bad-store", Access::Store, bad)];
        let findings = lint_phases(&phases, 32, 2, 64, 64 * 1024);
        assert!(findings.iter().any(|f| f.lint == "store-overlap"), "{findings:?}");
    }

    #[test]
    fn oob_footprint_is_reported() {
        let phases = vec![phase("k", "store", Access::Store, coalesced(15, 512))];
        // Tile declared smaller than the schedule's reach.
        let findings = lint_phases(&phases, 32, 16, 512 * 15 - 1, 64 * 1024);
        assert!(findings.iter().any(|f| f.lint == "footprint-oob"), "{findings:?}");
    }

    #[test]
    fn permuted_and_reflected_stores_are_bijections() {
        let (e, w, warps) = (15, 32, 4);
        let u = w * warps;
        let phases = vec![
            phase("merge-pass", "permuting-load", Access::Store, Pattern::PermutedLoad { e }),
            phase(
                "merge-pass",
                "stage-store",
                Access::Store,
                Pattern::Reflected { e, run_w: e, warps },
            ),
        ];
        let findings = lint_phases(&phases, w, warps, u * e, 64 * 1024);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
