//! Kernel analysis: a dynamic hazard sanitizer and a symbolic
//! conflict-freedom prover.
//!
//! Two cooperating layers examine kernels from opposite directions:
//!
//! * **Dynamic sanitizer** ([`Sanitizer`]): shadow memory woven into
//!   [`BlockSim`](crate::BlockSim) behind the zero-cost [`MemCheck`] hook
//!   (the same pattern as [`Tracer`](crate::Tracer)/
//!   [`NullTracer`](crate::NullTracer)). It watches one concrete execution
//!   and flags inter-lane races between barriers, out-of-bounds and
//!   uninitialized shared reads, and lock-step divergence — with forensic
//!   reports naming phase, warp, lanes, and addresses.
//! * **Symbolic prover** ([`prove`]): an affine address-expression IR
//!   ([`Pattern`]) describing each kernel phase's shared-memory schedule,
//!   plus number-theoretic certification (via `cfmerge-numtheory`'s gcd
//!   and Corollary 17/18 predicates) that a schedule is bank-conflict-free
//!   for **all** inputs, lane values, and rounds — not just the inputs a
//!   profiler happened to see.
//!
//! The default checker is [`NoCheck`], a zero-sized type whose hooks are
//! empty `#[inline]` bodies: untraced, unchecked simulations compile to
//! exactly the code they ran before this module existed.

mod affine;
mod lint;
mod prover;
mod sanitizer;
mod shape;

pub use affine::{AffineForm, Pattern};
pub use lint::{lint_phases, Access, LintFinding, PhaseIr};
pub use prover::{cross_validate, cross_validate_on, prove, prove_on, Certificate, Verdict};
pub use sanitizer::{Finding, Hazard, Sanitizer};
pub use shape::BankShape;

use crate::profiler::PhaseClass;

/// Observation hooks for a dynamic memory checker attached to a
/// [`BlockSim`](crate::BlockSim).
///
/// All hooks default to empty inlined bodies and `ACTIVE = false`, so the
/// no-op implementation ([`NoCheck`]) vanishes entirely at compile time.
/// When `ACTIVE` is `true`, [`LaneCtx`](crate::LaneCtx) routes every
/// shared/global access through the checker *instead of* its built-in
/// panicking race asserts: the checker owns hazard detection and decides
/// (via the `bool` return) whether the access proceeds, so hazardous
/// kernels can be examined to completion instead of aborting the process.
pub trait MemCheck {
    /// Whether this checker wants accesses routed through it. `false`
    /// keeps the simulator's legacy panic-on-race asserts in place.
    const ACTIVE: bool = false;

    /// A block simulation starts: `w` lanes per warp, `u` threads, and a
    /// shared-memory extent of `shared_len` words.
    #[inline]
    fn begin_block(&mut self, w: usize, u: usize, shared_len: usize) {
        let _ = (w, u, shared_len);
    }

    /// A barrier-delimited phase opens.
    #[inline]
    fn phase_begin(&mut self, class: PhaseClass) {
        let _ = class;
    }

    /// The phase closes (implicit barrier).
    #[inline]
    fn phase_end(&mut self, class: PhaseClass) {
        let _ = class;
    }

    /// Warp `warp` starts executing the current phase.
    #[inline]
    fn warp_begin(&mut self, warp: usize) {
        let _ = warp;
    }

    /// Warp `warp` finished the current phase (divergence checkpoint).
    #[inline]
    fn warp_end(&mut self, warp: usize, class: PhaseClass) {
        let _ = (warp, class);
    }

    /// Lane `tid` touches shared word `idx` (`store` distinguishes write
    /// from read). Return `false` to suppress the access (e.g. it is out
    /// of bounds); suppressed loads yield `T::default()`.
    #[inline]
    fn shared_access(&mut self, tid: u32, idx: usize, store: bool) -> bool {
        let _ = (tid, idx, store);
        true
    }

    /// Lane `tid` touches global word `idx` of an array of `len` words.
    /// Return `false` to suppress the access.
    #[inline]
    fn global_access(&mut self, tid: u32, idx: usize, len: usize, store: bool) -> bool {
        let _ = (tid, idx, len, store);
        true
    }
}

/// The do-nothing checker: a zero-sized type whose hooks compile away,
/// leaving the simulator's original panicking race asserts in force.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoCheck;

impl MemCheck for NoCheck {}
