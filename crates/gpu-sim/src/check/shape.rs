//! Device shape for certification: the axes of the (E, u, w, bank-width)
//! lattice the prover quantifies over.
//!
//! The point prover of the original `check` module certified schedules on
//! one implicit device — `w` 4-byte banks. [`BankShape`] makes the device
//! explicit: bank count **and** bank row width (Kepler-class 8-byte banks
//! fuse adjacent 32-bit words into one row; Afshani & Sitchinava analyze
//! exactly how conflict structure changes with this width). Every prover
//! strategy is parameterized over a shape, and shapes outside the
//! supported lattice fail **closed**: the verdict is a refusal, never an
//! optimistic `ConflictFree`.

use crate::banks::{BankModel, MAX_BANKS};
use cfmerge_json::{FromJson, Json, JsonError, ToJson};

/// The shared-memory shape a certificate is proved against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankShape {
    /// Number of banks `w`.
    pub banks: usize,
    /// Bank row width in 32-bit words (1 = 4-byte banks, 2 = 8-byte).
    pub word_u32s: u32,
}

impl BankShape {
    /// Classic 4-byte banks — the shape the paper's proofs address.
    #[must_use]
    pub fn word32(banks: usize) -> Self {
        Self { banks, word_u32s: 1 }
    }

    /// Kepler-style 8-byte banks.
    #[must_use]
    pub fn word64(banks: usize) -> Self {
        Self { banks, word_u32s: 2 }
    }

    /// The shape of a [`Device`](crate::Device).
    #[must_use]
    pub fn of_device(device: &crate::Device) -> Self {
        Self { banks: device.warp_width as usize, word_u32s: device.bank_word_u32s }
    }

    /// The cost model this shape induces.
    ///
    /// # Panics
    /// Panics on a degenerate shape (`banks == 0` or `word_u32s == 0`).
    #[must_use]
    pub fn bank_model(&self) -> BankModel {
        BankModel::with_word(self.banks as u32, self.word_u32s)
    }

    /// Whether this shape is inside the lattice the prover's strategies
    /// cover: a positive bank count within [`MAX_BANKS`] and a 32- or
    /// 64-bit row. Anything else gets a fail-closed refusal.
    #[must_use]
    pub fn supported(&self) -> bool {
        self.banks > 0 && self.banks <= MAX_BANKS && (self.word_u32s == 1 || self.word_u32s == 2)
    }

    /// Short label for certificates and reports (`w=32/b32`, `w=32/b64`).
    #[must_use]
    pub fn label(&self) -> String {
        format!("w={}/b{}", self.banks, 32 * self.word_u32s)
    }
}

impl ToJson for BankShape {
    fn to_json(&self) -> Json {
        Json::obj([("banks", Json::from(self.banks)), ("word_u32s", Json::from(self.word_u32s))])
    }
}

impl FromJson for BankShape {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self { banks: v.field("banks")?, word_u32s: v.field("word_u32s")? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_labels_and_support() {
        assert_eq!(BankShape::word32(32).label(), "w=32/b32");
        assert_eq!(BankShape::word64(32).label(), "w=32/b64");
        assert!(BankShape::word32(32).supported());
        assert!(BankShape::word64(16).supported());
        assert!(!BankShape::word32(0).supported());
        assert!(!BankShape { banks: 32, word_u32s: 4 }.supported());
        assert!(!BankShape::word32(MAX_BANKS + 1).supported());
    }

    #[test]
    fn shape_of_device_tracks_bank_word() {
        let t = BankShape::of_device(&crate::Device::rtx2080ti());
        assert_eq!(t, BankShape::word32(32));
        let k = BankShape::of_device(&crate::Device::kepler_64bit_like());
        assert_eq!(k, BankShape::word64(32));
        assert_eq!(k.bank_model().bank_word_u32s, 2);
    }

    #[test]
    fn shape_json_roundtrip() {
        for s in [BankShape::word32(32), BankShape::word64(12)] {
            assert_eq!(BankShape::from_json(&s.to_json()).unwrap(), s);
        }
    }
}
