//! Dynamic hazard sanitizer: shadow memory + lock-step auditing for one
//! simulated block.

use super::MemCheck;
use crate::profiler::PhaseClass;
use std::fmt;

/// Lane sentinel meaning "no lane recorded".
const NONE: u32 = u32::MAX;

/// Findings retained before further ones are only counted, not stored.
const FINDING_CAP: usize = 256;

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hazard {
    /// Two lanes stored the same shared word inside one phase.
    WriteWriteRace {
        /// The earlier writer.
        other: u32,
    },
    /// One lane read and another wrote the same shared word inside one
    /// phase (either order — both need a barrier).
    ReadWriteRace {
        /// The conflicting lane.
        other: u32,
    },
    /// Shared access past the tile (`idx >= shared_len`).
    SharedOutOfBounds {
        /// Shared extent in words.
        len: usize,
        /// Write (`true`) or read.
        store: bool,
    },
    /// Global access past the array.
    GlobalOutOfBounds {
        /// Array length in words.
        len: usize,
        /// Write (`true`) or read.
        store: bool,
    },
    /// Shared word read before any store initialized it.
    UninitializedRead,
    /// Lanes of one warp issued unequal access counts inside a phase —
    /// they cannot have executed the phase in lock-step.
    Divergence {
        /// `"shared"` or `"global"`.
        space: &'static str,
        /// Smallest per-lane access count in the warp.
        min: u32,
        /// Largest per-lane access count in the warp.
        max: u32,
        /// A lane issuing `min` accesses.
        min_lane: u32,
        /// A lane issuing `max` accesses.
        max_lane: u32,
    },
}

impl Hazard {
    /// Short kind label for summaries.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Hazard::WriteWriteRace { .. } => "write-write race",
            Hazard::ReadWriteRace { .. } => "read-write race",
            Hazard::SharedOutOfBounds { .. } => "shared out-of-bounds",
            Hazard::GlobalOutOfBounds { .. } => "global out-of-bounds",
            Hazard::UninitializedRead => "uninitialized read",
            Hazard::Divergence { .. } => "lock-step divergence",
        }
    }
}

/// One sanitizer finding with full forensic context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The hazard class.
    pub hazard: Hazard,
    /// Phase class in which it occurred.
    pub class: PhaseClass,
    /// Running phase number within the block (1-based).
    pub phase_seq: u32,
    /// Warp index within the block.
    pub warp: u32,
    /// Offending lane (block-wide thread id).
    pub tid: u32,
    /// Word address involved, if address-shaped.
    pub addr: Option<usize>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] phase #{} ({}) warp {}: ",
            self.hazard.label(),
            self.phase_seq,
            self.class.label(),
            self.warp
        )?;
        match &self.hazard {
            Hazard::WriteWriteRace { other } => write!(
                f,
                "lanes {} and {} both store shared[{}] in the same phase (missing barrier)",
                other,
                self.tid,
                self.addr.unwrap_or(0)
            ),
            Hazard::ReadWriteRace { other } => write!(
                f,
                "lane {} reads and lane {} writes shared[{}] in the same phase (missing barrier)",
                self.tid,
                other,
                self.addr.unwrap_or(0)
            ),
            Hazard::SharedOutOfBounds { len, store } => write!(
                f,
                "lane {} {} shared[{}] but the tile holds {} words",
                self.tid,
                if *store { "stores" } else { "loads" },
                self.addr.unwrap_or(0),
                len
            ),
            Hazard::GlobalOutOfBounds { len, store } => write!(
                f,
                "lane {} {} global[{}] but the array holds {} words",
                self.tid,
                if *store { "stores" } else { "loads" },
                self.addr.unwrap_or(0),
                len
            ),
            Hazard::UninitializedRead => write!(
                f,
                "lane {} loads shared[{}] before any store initialized it",
                self.tid,
                self.addr.unwrap_or(0)
            ),
            Hazard::Divergence { space, min, max, min_lane, max_lane } => write!(
                f,
                "{space} access counts diverge: lane {min_lane} issued {min}, \
                 lane {max_lane} issued {max} — the warp cannot run in lock-step"
            ),
        }
    }
}

/// The dynamic sanitizer: a [`MemCheck`] implementation holding per-word
/// shadow state (last writer, up to two distinct readers, init bit — all
/// epoch-stamped so a barrier clears them in O(1)) and per-lane access
/// counters for lock-step auditing.
///
/// By default, [`PhaseClass::Search`] is exempt from the divergence check:
/// the merge-path binary search is *predicated* — each lane runs
/// `⌈log₂(diag+1)⌉`-ish probe iterations, so unequal counts are part of
/// the algorithm's contract there, unlike the data-movement phases the
/// paper requires to be oblivious. Use [`Sanitizer::set_divergence_exempt`]
/// to tighten or loosen the policy.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    w: usize,
    shared_len: usize,
    epoch: u32,
    phase_seq: u32,
    class: PhaseClass,
    warp: u32,
    write_epoch: Vec<u32>,
    write_tid: Vec<u32>,
    read_epoch: Vec<u32>,
    reader1: Vec<u32>,
    reader2: Vec<u32>,
    init: Vec<bool>,
    shared_counts: Vec<u32>,
    global_counts: Vec<u32>,
    divergence_exempt: [bool; PhaseClass::COUNT],
    findings: Vec<Finding>,
    /// Findings beyond the internal cap, counted but not stored.
    pub dropped: u64,
}

impl Default for Sanitizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Sanitizer {
    /// A fresh sanitizer; shadow state is sized by
    /// [`MemCheck::begin_block`] when a `BlockSim` adopts it.
    #[must_use]
    pub fn new() -> Self {
        let mut divergence_exempt = [false; PhaseClass::COUNT];
        divergence_exempt[PhaseClass::Search.index()] = true;
        Self {
            w: 1,
            shared_len: 0,
            epoch: 0,
            phase_seq: 0,
            class: PhaseClass::Other,
            warp: 0,
            write_epoch: Vec::new(),
            write_tid: Vec::new(),
            read_epoch: Vec::new(),
            reader1: Vec::new(),
            reader2: Vec::new(),
            init: Vec::new(),
            shared_counts: Vec::new(),
            global_counts: Vec::new(),
            divergence_exempt,
            findings: Vec::new(),
            dropped: 0,
        }
    }

    /// Include (`false`) or exempt (`true`) a phase class from the
    /// lock-step divergence check.
    pub fn set_divergence_exempt(&mut self, class: PhaseClass, exempt: bool) {
        self.divergence_exempt[class.index()] = exempt;
    }

    /// All findings recorded so far (capped; see [`Sanitizer::dropped`]).
    #[must_use]
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Consume the sanitizer, yielding its recorded findings.
    #[must_use]
    pub fn into_findings(self) -> Vec<Finding> {
        self.findings
    }

    /// `true` when no hazard was observed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.dropped == 0
    }

    /// Total findings, including ones dropped past the cap.
    #[must_use]
    pub fn total_findings(&self) -> u64 {
        self.findings.len() as u64 + self.dropped
    }

    /// Multi-line forensic report, or a clean bill of health.
    #[must_use]
    pub fn report(&self) -> String {
        if self.is_clean() {
            return "sanitizer: no hazards detected".into();
        }
        let mut out = format!("sanitizer: {} finding(s)\n", self.total_findings());
        for f in &self.findings {
            out.push_str(&format!("  {f}\n"));
        }
        if self.dropped > 0 {
            out.push_str(&format!("  … {} further finding(s) dropped\n", self.dropped));
        }
        out
    }

    fn push(&mut self, hazard: Hazard, tid: u32, addr: Option<usize>) {
        if self.findings.len() >= FINDING_CAP {
            self.dropped += 1;
            return;
        }
        self.findings.push(Finding {
            hazard,
            class: self.class,
            phase_seq: self.phase_seq,
            warp: self.warp,
            tid,
            addr,
        });
    }

    fn audit_lockstep(&mut self, warp: usize, class: PhaseClass) {
        if self.divergence_exempt[class.index()] {
            return;
        }
        for (space, counts) in
            [("shared", self.shared_counts.clone()), ("global", self.global_counts.clone())]
        {
            let Some((&min, &max)) = counts.iter().min().zip(counts.iter().max()) else {
                continue;
            };
            if min == max {
                continue;
            }
            let min_lane = counts.iter().position(|&c| c == min).unwrap_or(0);
            let max_lane = counts.iter().position(|&c| c == max).unwrap_or(0);
            let base = warp * self.w;
            self.push(
                Hazard::Divergence {
                    space,
                    min,
                    max,
                    min_lane: (base + min_lane) as u32,
                    max_lane: (base + max_lane) as u32,
                },
                (base + max_lane) as u32,
                None,
            );
        }
    }
}

impl MemCheck for Sanitizer {
    const ACTIVE: bool = true;

    fn begin_block(&mut self, w: usize, _u: usize, shared_len: usize) {
        self.w = w;
        self.shared_len = shared_len;
        self.write_epoch = vec![0; shared_len];
        self.write_tid = vec![NONE; shared_len];
        self.read_epoch = vec![0; shared_len];
        self.reader1 = vec![NONE; shared_len];
        self.reader2 = vec![NONE; shared_len];
        self.init = vec![false; shared_len];
        self.shared_counts = vec![0; w];
        self.global_counts = vec![0; w];
    }

    fn phase_begin(&mut self, class: PhaseClass) {
        self.epoch += 1;
        self.phase_seq += 1;
        self.class = class;
    }

    fn warp_begin(&mut self, warp: usize) {
        self.warp = warp as u32;
        self.shared_counts.fill(0);
        self.global_counts.fill(0);
    }

    fn warp_end(&mut self, warp: usize, class: PhaseClass) {
        self.audit_lockstep(warp, class);
    }

    fn shared_access(&mut self, tid: u32, idx: usize, store: bool) -> bool {
        if idx >= self.shared_len {
            self.push(Hazard::SharedOutOfBounds { len: self.shared_len, store }, tid, Some(idx));
            return false;
        }
        let lane = tid as usize % self.w;
        self.shared_counts[lane] += 1;
        if store {
            if self.write_epoch[idx] == self.epoch && self.write_tid[idx] != tid {
                self.push(Hazard::WriteWriteRace { other: self.write_tid[idx] }, tid, Some(idx));
            }
            if self.read_epoch[idx] == self.epoch {
                // Two distinct reader slots suffice: if ≥ 2 lanes read the
                // word this phase, at least one of them is not the writer.
                let other = [self.reader1[idx], self.reader2[idx]]
                    .into_iter()
                    .find(|&r| r != NONE && r != tid);
                if let Some(reader) = other {
                    self.push(Hazard::ReadWriteRace { other: tid }, reader, Some(idx));
                }
            }
            self.write_epoch[idx] = self.epoch;
            self.write_tid[idx] = tid;
            self.init[idx] = true;
        } else {
            if !self.init[idx] {
                self.push(Hazard::UninitializedRead, tid, Some(idx));
                // Report each uninitialized word once, not per reader.
                self.init[idx] = true;
            }
            if self.write_epoch[idx] == self.epoch && self.write_tid[idx] != tid {
                self.push(Hazard::ReadWriteRace { other: self.write_tid[idx] }, tid, Some(idx));
            }
            if self.read_epoch[idx] != self.epoch {
                self.read_epoch[idx] = self.epoch;
                self.reader1[idx] = tid;
                self.reader2[idx] = NONE;
            } else if self.reader1[idx] != tid && self.reader2[idx] == NONE {
                self.reader2[idx] = tid;
            }
        }
        true
    }

    fn global_access(&mut self, tid: u32, idx: usize, len: usize, store: bool) -> bool {
        if len != usize::MAX && idx >= len {
            self.push(Hazard::GlobalOutOfBounds { len, store }, tid, Some(idx));
            return false;
        }
        let lane = tid as usize % self.w;
        self.global_counts[lane] += 1;
        true
    }
}
