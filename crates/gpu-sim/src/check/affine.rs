//! Address-expression IR for shared-memory schedules.
//!
//! Each kernel phase's shared accesses are described as a [`Pattern`]: a
//! symbolic statement of which word every lane touches in every round,
//! with the lane index and round (step) number as free variables. The
//! prover ([`super::prove`]) certifies properties for *all* values of the
//! free variables; [`Pattern::sample_rounds`] concretizes a finite sample
//! for cross-validation against [`BankModel::round_cost`]
//! (`crate::BankModel`).

use cfmerge_numtheory::gcd;

/// An affine address expression `base + lane·tid + step·round`, the IR of
/// the strided schedules (tile load/store, register pulls/writebacks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineForm {
    /// Constant offset.
    pub base: i64,
    /// Coefficient of the block-wide thread id.
    pub lane: i64,
    /// Coefficient of the round (step) index.
    pub step: i64,
}

impl AffineForm {
    /// Evaluate at a concrete `(tid, round)`.
    #[must_use]
    pub fn addr(&self, tid: usize, round: usize) -> i64 {
        self.base + self.lane * tid as i64 + self.step * round as i64
    }
}

/// The paper's permutation ρ (layout.rs `CfLayout::rho`), replicated here
/// so the prover's concretizations are self-contained. `partition` is
/// `w·E/d`; logical index `c` maps to a slot rotated by `⌊c/partition⌋
/// mod d` within its partition.
#[must_use]
pub fn rho(c: usize, partition: usize, d: usize) -> usize {
    if d == 1 {
        return c;
    }
    let ell = c / partition;
    let within = c % partition;
    ell * partition + (within + ell % d) % partition
}

/// The blocksort CF writeback reflection (`cf_rank_slot`): within each
/// pair of runs of length `run_w`, ranks in the first run store forward,
/// ranks in the second run store mirrored, so the subsequent gather sees
/// an ascending A run and a descending B run in place.
#[must_use]
pub fn reflected_slot(rank: usize, run_w: usize) -> usize {
    let pair = 2 * run_w;
    let p = rank / pair;
    let rel = rank % pair;
    if rel < run_w {
        rank
    } else {
        p * pair + (pair - 1 - (rel - run_w))
    }
}

/// A phase's shared-memory address schedule, as the prover sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// `base + lane·tid + step·round` for `rounds` rounds.
    Affine {
        /// The expression.
        form: AffineForm,
        /// Number of rounds each warp issues.
        rounds: usize,
    },
    /// The CF-Merge gather load schedule: round `j` of a warp reads all
    /// elements of residue class `j (mod E)` owned by the warp's pair
    /// window, through the permutation ρ. Which lane reads which element
    /// depends on the input, but the *set* of words per round does not.
    GatherCf {
        /// Elements per thread `E`.
        e: usize,
    },
    /// The blocksort gather load schedule over a reversal-only layout
    /// (ρ = identity): round `j` reads logical words `{q·E + j}` over the
    /// warp's `w` consecutive `q` values.
    GatherReversal {
        /// Elements per thread `E`.
        e: usize,
    },
    /// The blocksort CF writeback: lane `tid` stores rank
    /// `tid·E + round` through [`reflected_slot`] with run width `run_w`.
    /// A static, input-independent schedule.
    Reflected {
        /// Elements per thread `E`.
        e: usize,
        /// Run width of the reflection.
        run_w: usize,
        /// Warps per block (`u/w`).
        warps: usize,
    },
    /// The merge-pass CF tile load's *store* side: round `r`, lane `tid`
    /// stores word `ρ(π(r·u + tid))` where π routes indices below the
    /// data-dependent A/B boundary `a_len` ascending and the rest
    /// descending from the top.
    PermutedLoad {
        /// Elements per thread `E`.
        e: usize,
    },
    /// Addresses depend on key values in a way no schedule-level argument
    /// can bound (e.g. the serial merge's comparison-driven loads).
    DataDependent(&'static str),
}

impl Pattern {
    /// One-line description for reports.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Pattern::Affine { form, rounds } => format!(
                "affine {} + {}·tid + {}·round ({rounds} rounds)",
                form.base, form.lane, form.step
            ),
            Pattern::GatherCf { e } => format!("CF gather via ρ (E = {e})"),
            Pattern::GatherReversal { e } => format!("reversal-only gather (E = {e})"),
            Pattern::Reflected { e, run_w, .. } => {
                format!("reflected writeback (E = {e}, run_w = {run_w})")
            }
            Pattern::PermutedLoad { e } => format!("permuting tile store via ρ∘π (E = {e})"),
            Pattern::DataDependent(why) => format!("data-dependent: {why}"),
        }
    }

    /// Concretize a finite sample of per-warp rounds (each a vector of
    /// word addresses, one per lane) for cross-validation against
    /// `BankModel::round_cost`. Data-dependent parameters (the
    /// [`Pattern::PermutedLoad`] boundary) are swept over a sample set;
    /// [`Pattern::DataDependent`] yields no rounds.
    #[must_use]
    pub fn sample_rounds(&self, w: usize, warps: usize) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        match *self {
            Pattern::Affine { form, rounds } => {
                for v in 0..warps {
                    for t in 0..rounds {
                        out.push(
                            (0..w)
                                .map(|k| {
                                    let a = form.addr(v * w + k, t);
                                    assert!(a >= 0, "affine sample went negative");
                                    a as u32
                                })
                                .collect(),
                        );
                    }
                }
            }
            Pattern::GatherCf { e } => {
                let d = gcd(w as u64, e as u64) as usize;
                let partition = w * e / d;
                for v in 0..warps {
                    for j in 0..e {
                        out.push(
                            (v * w..(v + 1) * w)
                                .map(|q| rho(q * e + j, partition, d) as u32)
                                .collect(),
                        );
                    }
                }
            }
            Pattern::GatherReversal { e } => {
                for v in 0..warps {
                    for j in 0..e {
                        out.push((v * w..(v + 1) * w).map(|q| (q * e + j) as u32).collect());
                    }
                }
            }
            Pattern::Reflected { e, run_w, warps: _ } => {
                for v in 0..warps {
                    for m in 0..e {
                        out.push(
                            (0..w)
                                .map(|k| reflected_slot((v * w + k) * e + m, run_w) as u32)
                                .collect(),
                        );
                    }
                }
            }
            Pattern::PermutedLoad { e } => {
                // Boundary sweep: the store slot of flat index s is s for
                // s < a_len (ascending A) and total−1−(s−a_len) for the
                // rest (descending B); ρ is the identity in the certified
                // d = 1 case. Sample several boundaries including the
                // degenerate ones.
                let u = warps * w;
                let total = u * e;
                let boundaries = [0, 1, e, total / 3, total / 2, total - e, total - 1, total];
                for a_len in boundaries {
                    for r in 0..e {
                        for v in 0..warps {
                            out.push(
                                (0..w)
                                    .map(|k| {
                                        let s = r * u + v * w + k;
                                        if s < a_len {
                                            s as u32
                                        } else {
                                            (total - 1 - (s - a_len)) as u32
                                        }
                                    })
                                    .collect(),
                            );
                        }
                    }
                }
            }
            Pattern::DataDependent(_) => {}
        }
        out
    }

    /// A **complete** enumeration of per-warp rounds for exhaustive
    /// certification on an arbitrary bank shape, covering every free
    /// variable the symbolic rules would otherwise eliminate:
    ///
    /// * [`Pattern::Affine`] — every (warp, round) of the schedule at both
    ///   base parities. Bank structure under a `width`-word row depends on
    ///   the address modulo `width·w` only through `base mod width` (the
    ///   quotient shifts all lanes' rows equally), so the two parities
    ///   cover every base/round/warp offset for `width ≤ 2`.
    /// * [`Pattern::GatherCf`] / [`Pattern::GatherReversal`] — every round
    ///   at every window alignment `q₀ ∈ [0, 2w)`. The address map is
    ///   periodic (`addr(q + w) = addr(q) + w·E`, and ρ satisfies
    ///   `ρ(c + d·partition) = ρ(c) + w·E`), and a shift by `2w·E` moves
    ///   all rows of a ≤ 2-word bank row equally, so `2w` consecutive
    ///   alignments cover every window a data-dependent merge-path split
    ///   can produce.
    /// * [`Pattern::Reflected`] — every (warp, round); the schedule is
    ///   static, so this is simply the whole kernel phase.
    /// * [`Pattern::PermutedLoad`] — every boundary `a_len ∈ [0, u·E·warps]`
    ///   contributes its crossing round, plus the two all-ascending /
    ///   all-descending extremes contribute every round; non-crossing
    ///   rounds of intermediate boundaries duplicate one of those two
    ///   shapes, so nothing is missed.
    /// * [`Pattern::DataDependent`] — no rounds (nothing is enumerable).
    ///
    /// The result is a superset of [`Pattern::sample_rounds`]'s
    /// concretizations in cost structure: a worst-case transaction count
    /// over these rounds bounds every round the real kernel can issue.
    #[must_use]
    pub fn exhaustive_rounds(&self, w: usize, warps: usize) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        match *self {
            Pattern::Affine { form, rounds } => {
                for parity in 0..2i64 {
                    for v in 0..warps {
                        for t in 0..rounds {
                            out.push(
                                (0..w)
                                    .map(|k| {
                                        let a = form.addr(v * w + k, t) + parity;
                                        assert!(a >= 0, "affine enumeration went negative");
                                        a as u32
                                    })
                                    .collect(),
                            );
                        }
                    }
                }
            }
            Pattern::GatherCf { e } => {
                let d = gcd(w as u64, e as u64) as usize;
                let partition = w * e / d;
                for q0 in 0..2 * w {
                    for j in 0..e {
                        out.push(
                            (q0..q0 + w).map(|q| rho(q * e + j, partition, d) as u32).collect(),
                        );
                    }
                }
            }
            Pattern::GatherReversal { e } => {
                for q0 in 0..2 * w {
                    for j in 0..e {
                        out.push((q0..q0 + w).map(|q| (q * e + j) as u32).collect());
                    }
                }
            }
            Pattern::Reflected { .. } => {
                out = self.sample_rounds(w, warps);
            }
            Pattern::PermutedLoad { e } => {
                let u = warps * w;
                let total = u * e;
                let round = |a_len: usize, s0: usize| -> Vec<u32> {
                    (0..w)
                        .map(|k| {
                            let s = s0 + k;
                            if s < a_len {
                                s as u32
                            } else {
                                (total - 1 - (s - a_len)) as u32
                            }
                        })
                        .collect()
                };
                // The two pure extremes: every round all-ascending and
                // all-descending.
                for r in 0..e {
                    for v in 0..warps {
                        let s0 = r * u + v * w;
                        out.push(round(total, s0));
                        out.push(round(0, s0));
                    }
                }
                // Every interior boundary's crossing round (the only round
                // that differs from the extremes).
                for a_len in 1..total {
                    let s0 = (a_len - 1) / w * w;
                    debug_assert!(s0 < a_len && a_len < s0 + w || a_len == s0 + w);
                    if a_len < s0 + w {
                        out.push(round(a_len, s0));
                    }
                }
            }
            Pattern::DataDependent(_) => {}
        }
        out
    }

    /// The exact set of shared words the schedule can touch, sorted and
    /// deduplicated, or `None` when the addresses are data-dependent
    /// (bounded only by the tile). The strided/permuted schedules all
    /// cover their ranges exactly, which is what the static lint pass
    /// checks capacity, overlap, and initialization against.
    #[must_use]
    pub fn footprint_words(&self, w: usize, warps: usize) -> Option<Vec<u32>> {
        match *self {
            Pattern::Affine { form, rounds } => {
                let mut words: Vec<u32> = (0..warps * w)
                    .flat_map(|tid| {
                        (0..rounds).map(move |t| {
                            let a = form.addr(tid, t);
                            assert!(a >= 0, "affine footprint went negative");
                            a as u32
                        })
                    })
                    .collect();
                words.sort_unstable();
                words.dedup();
                Some(words)
            }
            // ρ, the reversal layout, the reflection, and the boundary
            // permutation are all bijections on the tile.
            Pattern::GatherCf { e }
            | Pattern::GatherReversal { e }
            | Pattern::Reflected { e, .. }
            | Pattern::PermutedLoad { e } => Some((0..(warps * w * e) as u32).collect()),
            Pattern::DataDependent(_) => None,
        }
    }
}
