//! Global-memory coalescing model.
//!
//! Global memory is served in 32-byte *sectors*. A warp-wide access is
//! coalesced into one transaction per distinct sector touched by its lanes;
//! `w = 32` lanes reading 32 consecutive 4-byte words touch 4 sectors
//! (128 B), the optimum. Strided or scattered access inflates the sector
//! count up to one per lane.
//!
//! The mergesort kernels only ever touch global memory with unit-stride
//! warp accesses (that is precisely why Thrust stages tiles through shared
//! memory), so this model mostly certifies that our kernels keep that
//! property — and prices the total traffic for the timing model.

/// Bytes per DRAM sector.
pub const SECTOR_BYTES: u64 = 32;

/// Words (4-byte elements) per sector.
pub const SECTOR_WORDS: u64 = SECTOR_BYTES / 4;

/// Number of distinct 32-byte sectors touched by one warp-wide access to
/// the given element indices (4-byte elements).
///
/// Indices are element offsets into a single global array; the array is
/// assumed sector-aligned (allocation granularity on real devices is far
/// coarser than 32 B).
#[must_use]
pub fn sectors_touched(indices: &[u64]) -> u64 {
    if indices.is_empty() {
        return 0;
    }
    // ≤ 32 lanes: a tiny sort-based distinct count beats hashing.
    let mut sectors: Vec<u64> = indices.iter().map(|&i| i / SECTOR_WORDS).collect();
    sectors.sort_unstable();
    sectors.dedup();
    sectors.len() as u64
}

/// Coalescing efficiency of an access: useful bytes / fetched bytes.
#[must_use]
pub fn efficiency(indices: &[u64]) -> f64 {
    if indices.is_empty() {
        return 1.0;
    }
    let useful = indices.len() as f64 * 4.0;
    let fetched = sectors_touched(indices) as f64 * SECTOR_BYTES as f64;
    useful / fetched
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_full_warp() {
        let idx: Vec<u64> = (64..96).collect();
        assert_eq!(sectors_touched(&idx), 4);
        assert!((efficiency(&idx) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unaligned_unit_stride_costs_one_extra_sector() {
        let idx: Vec<u64> = (3..35).collect();
        assert_eq!(sectors_touched(&idx), 5);
    }

    #[test]
    fn strided_access_wastes_sectors() {
        // Stride 8 elements = one lane per sector.
        let idx: Vec<u64> = (0..32).map(|i| i * 8).collect();
        assert_eq!(sectors_touched(&idx), 32);
        assert!((efficiency(&idx) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn broadcast_is_one_sector() {
        assert_eq!(sectors_touched(&[100; 32]), 1);
        assert_eq!(sectors_touched(&[]), 0);
    }
}
