//! Fault injection: seeded, deterministic hardware-fault models woven
//! into the block engine behind a zero-cost hook.
//!
//! Production GPUs flip bits, run with marginal banks, lose lanes, and
//! miss latency targets; the paper's guarantees (and the prover's
//! certificates) only cover the fault-free happy path. This module lets a
//! pipeline *rehearse* those failures deterministically:
//!
//! * [`FaultInjector`] — observation-and-corruption hooks threaded
//!   through [`BlockSim`](crate::BlockSim)/[`LaneCtx`](crate::LaneCtx)
//!   exactly like [`Tracer`](crate::Tracer) and
//!   [`MemCheck`](crate::check::MemCheck). The default [`NoFaults`] is a
//!   zero-sized type whose inlined empty hooks monomorphize away, so an
//!   un-injected simulation compiles to exactly the code it ran before
//!   this module existed.
//! * [`FaultPlan`] — a seeded, fully deterministic schedule of
//!   [`FaultSite`]s: each names a (kernel launch, block, phase)
//!   coordinate, a [`FaultKind`], and a [`Persistence`] class. The same
//!   seed always produces the same plan, so every chaos run is exactly
//!   reproducible.
//! * [`BlockFaults`] — the active per-block injector a plan hands to one
//!   simulated block execution. Every fault that actually fires is logged
//!   as an [`InjectionRecord`] for forensics; a fault that never reaches
//!   its coordinate simply does not fire.
//!
//! ## Fault model
//!
//! | kind | effect | typical persistence |
//! |------|--------|---------------------|
//! | [`FaultKind::SharedBitFlip`] | first shared-memory *store* of the armed phase writes `value ^ (1 << bit)` | transient |
//! | [`FaultKind::GlobalBitFlip`] | first global-memory *store* of the armed phase writes `value ^ (1 << bit)` | transient |
//! | [`FaultKind::StuckBank`] | from the armed phase on, every shared *load* from the bank returns `value ^ (1 << bit)` | sticky/permanent |
//! | [`FaultKind::LaneDropout`] | from the armed phase on, the lane's shared and global stores never commit | sticky/permanent |
//! | [`FaultKind::LatencySpike`] | charges extra pipe cycles to the block (no data corruption) | transient |
//!
//! Corruption is expressed as XOR masks over the key's bit pattern (the
//! standard single-event-upset model); [`FaultWord`] supplies the
//! bits↔value conversion for the key types the simulator sorts. Masks are
//! truncated to the key width.

use crate::profiler::PhaseClass;
use cfmerge_json::{Json, ToJson};

/// Keys whose bit pattern fault injection may corrupt.
///
/// Implemented for the integer key types the simulator sorts; the XOR
/// mask is applied over the `u64` image and truncated to the key width.
pub trait FaultWord: Copy {
    /// The key's bit pattern, zero-extended to 64 bits.
    fn to_fault_bits(self) -> u64;
    /// Rebuild a key from (possibly corrupted) bits, truncating to width.
    fn from_fault_bits(bits: u64) -> Self;
}

macro_rules! impl_fault_word {
    ($($t:ty),*) => {$(
        impl FaultWord for $t {
            #[inline]
            fn to_fault_bits(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_fault_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_fault_word!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Corruption-and-delay hooks the block engine consults while executing.
///
/// All hooks default to no-ops and `ACTIVE = false`, so the default
/// [`NoFaults`] vanishes at compile time. An active injector is asked for
/// an XOR mask on every shared/global access (0 = pristine) and whether a
/// lane's stores commit at all.
pub trait FaultInjector {
    /// Whether the engine should consult this injector at all.
    const ACTIVE: bool = false;

    /// A block simulation starts: `w` lanes per warp, `u` threads, shared
    /// extent of `shared_len` words.
    #[inline]
    fn begin_block(&mut self, w: usize, u: usize, shared_len: usize) {
        let _ = (w, u, shared_len);
    }

    /// A barrier-delimited phase opens.
    #[inline]
    fn phase_begin(&mut self, class: PhaseClass) {
        let _ = class;
    }

    /// The phase's closing barrier.
    #[inline]
    fn phase_end(&mut self) {}

    /// XOR mask applied to the value lane `tid` loads from shared `idx`.
    #[inline]
    fn shared_ld_mask(&mut self, tid: u32, idx: usize) -> u64 {
        let _ = (tid, idx);
        0
    }

    /// XOR mask applied to the value lane `tid` stores to shared `idx`.
    #[inline]
    fn shared_st_mask(&mut self, tid: u32, idx: usize) -> u64 {
        let _ = (tid, idx);
        0
    }

    /// XOR mask applied to the value lane `tid` stores to global `idx`.
    #[inline]
    fn global_st_mask(&mut self, tid: u32, idx: usize) -> u64 {
        let _ = (tid, idx);
        0
    }

    /// Whether lane `tid`'s stores are currently dropped (lane drop-out).
    /// The access is still issued and costed — the data never commits.
    #[inline]
    fn drops_store(&mut self, tid: u32) -> bool {
        let _ = tid;
        false
    }

    /// Extra pipe cycles injected so far (latency spikes); drained by the
    /// launcher into the timing model after the block completes.
    #[inline]
    fn spike_cycles(&self) -> u64 {
        0
    }
}

/// The do-nothing injector: a zero-sized type whose hooks compile away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// What a fault does when it fires. See the module table for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip `bit` of the first shared-memory store of the armed phase.
    SharedBitFlip {
        /// Bit index (0–63; truncated to the key width).
        bit: u8,
    },
    /// Flip `bit` of the first global-memory store of the armed phase.
    GlobalBitFlip {
        /// Bit index (0–63; truncated to the key width).
        bit: u8,
    },
    /// From the armed phase on, every shared load whose word lives in
    /// `bank` returns its value with `bit` inverted.
    StuckBank {
        /// Afflicted bank (taken modulo the device's bank count).
        bank: u32,
        /// Bit index forced to read inverted.
        bit: u8,
    },
    /// From the armed phase on, `lane`'s shared and global stores never
    /// commit (the lane keeps executing and its traffic is still costed).
    LaneDropout {
        /// Block-wide thread id (taken modulo `u`).
        lane: u32,
    },
    /// Charge `cycles` extra pipe cycles to the block when the armed
    /// phase opens. Pure delay — no data corruption.
    LatencySpike {
        /// Extra cycles.
        cycles: u64,
    },
}

impl FaultKind {
    /// Short kind label for reports and JSON.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::SharedBitFlip { .. } => "shared-bit-flip",
            FaultKind::GlobalBitFlip { .. } => "global-bit-flip",
            FaultKind::StuckBank { .. } => "stuck-bank",
            FaultKind::LaneDropout { .. } => "lane-dropout",
            FaultKind::LatencySpike { .. } => "latency-spike",
        }
    }

    /// Whether this kind can corrupt data (latency spikes cannot).
    #[must_use]
    pub fn corrupts(&self) -> bool {
        !matches!(self, FaultKind::LatencySpike { .. })
    }
}

/// How long a fault afflicts its coordinate across re-executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Persistence {
    /// Single-event upset: fires on the block's *first* execution only;
    /// a retry runs clean. Recoverable by re-execution.
    Transient,
    /// Pipeline-bound marginal fault: fires on every retry of the primary
    /// pipeline, but clears when the driver falls back to the alternate
    /// pipeline (models a layout/config-sensitive failure). Recoverable
    /// by degradation.
    Sticky,
    /// Hard hardware fault: fires on every execution, fallback included.
    /// Not recoverable — the driver must surface a typed error.
    Permanent,
}

impl Persistence {
    /// Label for reports and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Persistence::Transient => "transient",
            Persistence::Sticky => "sticky",
            Persistence::Permanent => "permanent",
        }
    }

    /// Whether a site with this persistence fires on execution `attempt`
    /// (0 = first try) of the given pipeline (`fallback` = the degraded
    /// alternate pipeline).
    #[must_use]
    pub fn fires(self, attempt: u32, fallback: bool) -> bool {
        match self {
            Persistence::Transient => attempt == 0 && !fallback,
            Persistence::Sticky => !fallback,
            Persistence::Permanent => true,
        }
    }
}

/// One scheduled fault: where, what, and for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// Kernel launch index within the pipeline (0 = block sort,
    /// 1 = first merge pass, …).
    pub kernel: u32,
    /// Block index within the launch.
    pub block: u32,
    /// 1-based barrier-delimited phase at which the fault arms.
    pub phase: u32,
    /// The fault itself.
    pub kind: FaultKind,
    /// Lifetime across re-executions.
    pub persistence: Persistence,
}

/// SplitMix64 — the plan generator's deterministic stream (no external
/// RNG dependency; the same constants as `rand`'s seed expansion).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Knobs for [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Number of fault sites to schedule.
    pub sites: u32,
    /// Greatest 1-based phase index a site may arm at. Merge-pass kernels
    /// run 6 phases and block sorts more, so ≤ 6 guarantees every site is
    /// reachable; larger values leave late sites dormant in short kernels.
    pub max_phase: u32,
    /// Permille of sites drawn as sticky (pipeline-bound) faults.
    pub sticky_permille: u32,
    /// Permille of sites drawn as permanent (unrecoverable) faults.
    pub permanent_permille: u32,
    /// Include latency spikes in the kind mix.
    pub spikes: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self { sites: 3, max_phase: 6, sticky_permille: 0, permanent_permille: 0, spikes: true }
    }
}

/// A deterministic, seeded schedule of fault sites for one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// The scheduled sites.
    pub sites: Vec<FaultSite>,
}

impl FaultPlan {
    /// The empty plan: injects nothing anywhere.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Hand-build a plan from explicit sites (tests, regression pins).
    #[must_use]
    pub fn from_sites(sites: Vec<FaultSite>) -> Self {
        Self { seed: 0, sites }
    }

    /// Generate a plan for a pipeline whose launch `k` has
    /// `blocks_per_kernel[k]` blocks. Same seed + shape + spec ⇒ same
    /// plan, bit for bit.
    #[must_use]
    pub fn generate(seed: u64, blocks_per_kernel: &[u64], spec: &FaultSpec) -> Self {
        let mut state = seed ^ 0xC4A5_9D1E_0F00_D5EE;
        let mut sites = Vec::with_capacity(spec.sites as usize);
        if blocks_per_kernel.is_empty() {
            return Self { seed, sites };
        }
        for _ in 0..spec.sites {
            let kernel = (splitmix64(&mut state) % blocks_per_kernel.len() as u64) as u32;
            let blocks = blocks_per_kernel[kernel as usize].max(1);
            let block = (splitmix64(&mut state) % blocks) as u32;
            let phase = 1 + (splitmix64(&mut state) % u64::from(spec.max_phase.max(1))) as u32;
            let kinds = if spec.spikes { 5 } else { 4 };
            let kind = match splitmix64(&mut state) % kinds {
                0 => FaultKind::SharedBitFlip { bit: (splitmix64(&mut state) % 31) as u8 },
                1 => FaultKind::GlobalBitFlip { bit: (splitmix64(&mut state) % 31) as u8 },
                2 => FaultKind::StuckBank {
                    bank: (splitmix64(&mut state) % 32) as u32,
                    bit: (splitmix64(&mut state) % 31) as u8,
                },
                3 => FaultKind::LaneDropout { lane: (splitmix64(&mut state) % 1024) as u32 },
                _ => FaultKind::LatencySpike { cycles: 1000 + splitmix64(&mut state) % 100_000 },
            };
            let roll = (splitmix64(&mut state) % 1000) as u32;
            let persistence = if roll < spec.permanent_permille {
                Persistence::Permanent
            } else if roll < spec.permanent_permille + spec.sticky_permille {
                Persistence::Sticky
            } else {
                Persistence::Transient
            };
            sites.push(FaultSite { kernel, block, phase, kind, persistence });
        }
        Self { seed, sites }
    }

    /// Whether any site could outlive the retry loop (sticky or
    /// permanent).
    #[must_use]
    pub fn has_persistent(&self) -> bool {
        self.sites.iter().any(|s| s.persistence != Persistence::Transient)
    }

    /// Whether any site survives even pipeline fallback.
    #[must_use]
    pub fn has_permanent(&self) -> bool {
        self.sites.iter().any(|s| s.persistence == Persistence::Permanent)
    }

    /// Build the active injector for one execution of block `block` of
    /// launch `kernel`: `attempt` 0 is the first try, retries count up;
    /// `fallback` marks the degraded alternate pipeline. Sites whose
    /// [`Persistence`] says they do not fire on this execution are
    /// omitted, so a plan with only transient faults yields clean
    /// retries.
    #[must_use]
    pub fn block_faults(
        &self,
        kernel: u32,
        block: u32,
        attempt: u32,
        fallback: bool,
    ) -> BlockFaults {
        let armed: Vec<ArmedFault> = self
            .sites
            .iter()
            .filter(|s| {
                s.kernel == kernel && s.block == block && s.persistence.fires(attempt, fallback)
            })
            .map(|s| ArmedFault { site: *s, fired: false, done: false })
            .collect();
        BlockFaults {
            kernel,
            block,
            attempt,
            armed,
            w: 0,
            u: 0,
            phase_seq: 0,
            current_class: None,
            spike_cycles: 0,
            records: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ArmedFault {
    site: FaultSite,
    /// Fired at least once (for the forensic record).
    fired: bool,
    /// One-shot faults that already consumed their single firing.
    done: bool,
}

/// One fault that actually fired, with full forensic context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionRecord {
    /// Kernel launch index.
    pub kernel: u32,
    /// Block index within the launch.
    pub block: u32,
    /// Execution attempt (0 = first try).
    pub attempt: u32,
    /// 1-based phase at which the fault first fired.
    pub phase_seq: u32,
    /// Phase class at that point.
    pub class: PhaseClass,
    /// The fault.
    pub kind: FaultKind,
    /// Lifetime class of the site.
    pub persistence: Persistence,
}

impl std::fmt::Display for InjectionRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] kernel {} block {} attempt {} phase #{} ({}): {:?}",
            self.persistence.label(),
            self.kernel,
            self.block,
            self.attempt,
            self.phase_seq,
            self.class.label(),
            self.kind,
        )
    }
}

impl ToJson for InjectionRecord {
    fn to_json(&self) -> Json {
        let (label, a, b) = match self.kind {
            FaultKind::SharedBitFlip { bit } | FaultKind::GlobalBitFlip { bit } => {
                (self.kind.label(), u64::from(bit), 0)
            }
            FaultKind::StuckBank { bank, bit } => {
                (self.kind.label(), u64::from(bank), u64::from(bit))
            }
            FaultKind::LaneDropout { lane } => (self.kind.label(), u64::from(lane), 0),
            FaultKind::LatencySpike { cycles } => (self.kind.label(), cycles, 0),
        };
        Json::obj([
            ("kernel", Json::from(self.kernel)),
            ("block", Json::from(self.block)),
            ("attempt", Json::from(self.attempt)),
            ("phase_seq", Json::from(self.phase_seq)),
            ("class", Json::from(self.class.label())),
            ("kind", Json::from(label)),
            ("arg0", Json::from(a)),
            ("arg1", Json::from(b)),
            ("persistence", Json::from(self.persistence.label())),
        ])
    }
}

/// The active per-block injector built by [`FaultPlan::block_faults`].
///
/// Tracks the block's phase count, arms sites whose phase coordinate has
/// been reached, applies their corruption, and records every firing.
#[derive(Debug, Clone)]
pub struct BlockFaults {
    kernel: u32,
    block: u32,
    attempt: u32,
    armed: Vec<ArmedFault>,
    w: usize,
    u: usize,
    phase_seq: u32,
    current_class: Option<PhaseClass>,
    spike_cycles: u64,
    records: Vec<InjectionRecord>,
    // One-shot store-flip bookkeeping lives inside `ArmedFault::done`.
}

impl BlockFaults {
    /// Faults that actually fired during this execution.
    #[must_use]
    pub fn records(&self) -> &[InjectionRecord] {
        &self.records
    }

    /// Consume the injector, returning its forensic records.
    #[must_use]
    pub fn into_records(self) -> Vec<InjectionRecord> {
        self.records
    }

    /// Whether any armed site fired.
    #[must_use]
    pub fn any_fired(&self) -> bool {
        !self.records.is_empty()
    }

    fn class_now(&self) -> PhaseClass {
        self.current_class.unwrap_or(PhaseClass::Other)
    }

    fn record(&mut self, i: usize) {
        let class = self.class_now();
        let (phase_seq, kernel, block, attempt) =
            (self.phase_seq, self.kernel, self.block, self.attempt);
        let f = &mut self.armed[i];
        if !f.fired {
            f.fired = true;
            self.records.push(InjectionRecord {
                kernel,
                block,
                attempt,
                phase_seq,
                class,
                kind: f.site.kind,
                persistence: f.site.persistence,
            });
        }
    }
}

impl FaultInjector for BlockFaults {
    const ACTIVE: bool = true;

    fn begin_block(&mut self, w: usize, u: usize, _shared_len: usize) {
        self.w = w;
        self.u = u;
    }

    fn phase_begin(&mut self, class: PhaseClass) {
        self.phase_seq += 1;
        self.current_class = Some(class);
        // Latency spikes charge when their phase opens.
        for i in 0..self.armed.len() {
            let f = self.armed[i];
            if f.done || self.phase_seq != f.site.phase {
                continue;
            }
            if let FaultKind::LatencySpike { cycles } = f.site.kind {
                self.spike_cycles += cycles;
                self.armed[i].done = true;
                self.record(i);
            }
        }
    }

    fn phase_end(&mut self) {
        self.current_class = None;
    }

    fn shared_ld_mask(&mut self, _tid: u32, idx: usize) -> u64 {
        let mut mask = 0u64;
        for i in 0..self.armed.len() {
            let f = self.armed[i];
            if f.done || self.phase_seq < f.site.phase {
                continue;
            }
            if let FaultKind::StuckBank { bank, bit } = f.site.kind {
                if self.w > 0 && idx % self.w == (bank as usize) % self.w {
                    mask ^= 1u64 << bit;
                    self.record(i);
                }
            }
        }
        mask
    }

    fn shared_st_mask(&mut self, _tid: u32, _idx: usize) -> u64 {
        let mut mask = 0u64;
        for i in 0..self.armed.len() {
            let f = self.armed[i];
            if f.done || self.phase_seq < f.site.phase {
                continue;
            }
            if let FaultKind::SharedBitFlip { bit } = f.site.kind {
                mask ^= 1u64 << bit;
                self.armed[i].done = true;
                self.record(i);
            }
        }
        mask
    }

    fn global_st_mask(&mut self, _tid: u32, _idx: usize) -> u64 {
        let mut mask = 0u64;
        for i in 0..self.armed.len() {
            let f = self.armed[i];
            if f.done || self.phase_seq < f.site.phase {
                continue;
            }
            if let FaultKind::GlobalBitFlip { bit } = f.site.kind {
                mask ^= 1u64 << bit;
                self.armed[i].done = true;
                self.record(i);
            }
        }
        mask
    }

    fn drops_store(&mut self, tid: u32) -> bool {
        let mut drops = false;
        for i in 0..self.armed.len() {
            let f = self.armed[i];
            if f.done || self.phase_seq < f.site.phase {
                continue;
            }
            if let FaultKind::LaneDropout { lane } = f.site.kind {
                if self.u > 0 && tid as usize == (lane as usize) % self.u {
                    drops = true;
                    self.record(i);
                }
            }
        }
        drops
    }

    fn spike_cycles(&self) -> u64 {
        self.spike_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let shape = [8u64, 4, 2, 1];
        let spec = FaultSpec { sites: 10, ..FaultSpec::default() };
        let a = FaultPlan::generate(42, &shape, &spec);
        let b = FaultPlan::generate(42, &shape, &spec);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, &shape, &spec);
        assert_ne!(a, c, "different seeds must give different plans");
        assert_eq!(a.sites.len(), 10);
        for s in &a.sites {
            assert!((s.kernel as usize) < shape.len());
            assert!(u64::from(s.block) < shape[s.kernel as usize]);
            assert!(s.phase >= 1 && s.phase <= 6);
        }
    }

    #[test]
    fn persistence_controls_refiring() {
        assert!(Persistence::Transient.fires(0, false));
        assert!(!Persistence::Transient.fires(1, false));
        assert!(!Persistence::Transient.fires(0, true));
        assert!(Persistence::Sticky.fires(3, false));
        assert!(!Persistence::Sticky.fires(0, true));
        assert!(Persistence::Permanent.fires(5, true));
    }

    #[test]
    fn block_faults_filters_by_coordinate() {
        let plan = FaultPlan::from_sites(vec![
            FaultSite {
                kernel: 0,
                block: 1,
                phase: 1,
                kind: FaultKind::SharedBitFlip { bit: 3 },
                persistence: Persistence::Transient,
            },
            FaultSite {
                kernel: 1,
                block: 0,
                phase: 2,
                kind: FaultKind::LatencySpike { cycles: 100 },
                persistence: Persistence::Transient,
            },
        ]);
        assert_eq!(plan.block_faults(0, 1, 0, false).armed.len(), 1);
        assert_eq!(plan.block_faults(0, 0, 0, false).armed.len(), 0);
        // Transient faults do not re-arm on retry.
        assert_eq!(plan.block_faults(0, 1, 1, false).armed.len(), 0);
    }

    #[test]
    fn bit_flip_fires_once_and_is_recorded() {
        let plan = FaultPlan::from_sites(vec![FaultSite {
            kernel: 0,
            block: 0,
            phase: 1,
            kind: FaultKind::SharedBitFlip { bit: 5 },
            persistence: Persistence::Transient,
        }]);
        let mut inj = plan.block_faults(0, 0, 0, false);
        inj.begin_block(8, 8, 64);
        inj.phase_begin(PhaseClass::LoadTile);
        assert_eq!(inj.shared_st_mask(0, 0), 1 << 5);
        assert_eq!(inj.shared_st_mask(1, 1), 0, "one-shot flip must not refire");
        inj.phase_end();
        let recs = inj.into_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].phase_seq, 1);
        assert_eq!(recs[0].class, PhaseClass::LoadTile);
    }

    #[test]
    fn stuck_bank_afflicts_only_its_bank_from_armed_phase() {
        let plan = FaultPlan::from_sites(vec![FaultSite {
            kernel: 0,
            block: 0,
            phase: 2,
            kind: FaultKind::StuckBank { bank: 3, bit: 0 },
            persistence: Persistence::Permanent,
        }]);
        let mut inj = plan.block_faults(0, 0, 0, false);
        inj.begin_block(8, 8, 64);
        inj.phase_begin(PhaseClass::LoadTile);
        assert_eq!(inj.shared_ld_mask(0, 3), 0, "not armed before its phase");
        inj.phase_end();
        inj.phase_begin(PhaseClass::Merge);
        assert_eq!(inj.shared_ld_mask(0, 3), 1);
        assert_eq!(inj.shared_ld_mask(0, 11), 1, "same bank, next row");
        assert_eq!(inj.shared_ld_mask(0, 4), 0, "other banks untouched");
        assert_eq!(inj.records().len(), 1, "persistent faults log one record");
    }

    #[test]
    fn latency_spikes_accumulate_cycles_without_masks() {
        let plan = FaultPlan::from_sites(vec![FaultSite {
            kernel: 0,
            block: 0,
            phase: 1,
            kind: FaultKind::LatencySpike { cycles: 777 },
            persistence: Persistence::Transient,
        }]);
        let mut inj = plan.block_faults(0, 0, 0, false);
        inj.begin_block(8, 8, 64);
        inj.phase_begin(PhaseClass::LoadTile);
        assert_eq!(inj.spike_cycles(), 777);
        assert_eq!(inj.shared_st_mask(0, 0), 0);
        assert!(!FaultKind::LatencySpike { cycles: 1 }.corrupts());
    }

    #[test]
    fn fault_word_roundtrips_and_truncates() {
        assert_eq!(u32::from_fault_bits(u32::MAX.to_fault_bits() ^ (1 << 40)), u32::MAX);
        assert_eq!(u16::from_fault_bits(7u16.to_fault_bits() ^ 0b10), 5);
        assert_eq!(i64::from_fault_bits((-3i64).to_fault_bits()), -3);
    }
}
