//! # cfmerge-gpu-sim — warp-synchronous GPU shared-memory simulator
//!
//! A deterministic simulator of the GPU memory features that matter to
//! *Eliminating Bank Conflicts in GPU Mergesort* (Berney & Sitchinava,
//! SPAA 2025):
//!
//! * [`banks`] — the `w`-bank shared-memory model with **exact** conflict
//!   accounting (the Distributed Memory Machine of Section 2; broadcast
//!   handled per footnote 4).
//! * [`block`] — a lock-step thread-block engine: kernels are sequences of
//!   barrier-delimited phases; every lane's accesses are traced, aligned
//!   into warp rounds, and costed. A built-in race detector panics on
//!   missing barriers.
//! * [`global`] — 32-byte-sector coalescing for global memory.
//! * [`occupancy`] — the theoretical occupancy calculator behind the
//!   paper's `E=15,u=512` (100%) vs `E=17,u=256` (75%) discussion.
//! * [`timing`] — a documented, once-calibrated cost model turning
//!   profiled counts into simulated runtimes.
//! * [`profiler`] — `nvprof`-style per-phase counters
//!   (`shared_ld_transactions`, bank conflicts, sectors, …).
//! * [`device`] — device presets (RTX 2080 Ti-like; tiny teaching devices
//!   for the paper's `w = 12`/`w = 9`/`w = 6` figures).
//! * [`stats`] — running summaries and conflict-degree histograms.
//! * [`trace`] — structured tracing: a zero-cost [`trace::Tracer`] hook in
//!   the block engine, a Chrome-trace-event/Perfetto exporter, and
//!   conflict forensics (see docs/OBSERVABILITY.md).
//! * [`check`] — kernel analysis: a dynamic hazard sanitizer (races, OOB,
//!   uninitialized reads, lock-step divergence) behind a zero-cost
//!   [`check::MemCheck`] hook, plus a symbolic affine-address prover that
//!   certifies schedules conflict-free for *all* inputs via the paper's
//!   Corollaries 17/18 (see docs/ANALYSIS.md).
//! * [`fault`] — deterministic fault injection behind a zero-cost
//!   [`fault::FaultInjector`] hook: seeded [`fault::FaultPlan`]s of
//!   bit-flips, stuck banks, lane drop-outs, and latency spikes, with
//!   every firing recorded for forensics (see docs/ROBUSTNESS.md).
//!
//! The simulator is *exact* for conflict counts (they are a deterministic
//! function of the addresses issued per lock-step round) and *modeled* for
//! runtimes (see `timing` docs and DESIGN.md §5).
//!
//! ## Example: measuring a strided access pattern
//!
//! ```
//! use cfmerge_gpu_sim::banks::BankModel;
//!
//! // The paper's Figure 1: w = 12 banks.
//! let banks = BankModel::new(12);
//! assert_eq!(banks.strided_cost(0, 5).conflicts, 0); // coprime stride
//! assert_eq!(banks.strided_cost(0, 6).conflicts, 5); // gcd(6,12)=6 → 6-way
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banks;
pub mod block;
pub mod check;
pub mod device;
pub mod fault;
pub mod global;
pub mod occupancy;
pub mod profiler;
pub mod stats;
pub mod timing;
pub mod trace;

pub use banks::{BankModel, RoundCost};
pub use block::{BlockSim, LaneCtx};
pub use check::{BankShape, MemCheck, NoCheck, Sanitizer};
pub use device::Device;
pub use fault::{
    BlockFaults, FaultInjector, FaultKind, FaultPlan, FaultSite, FaultSpec, FaultWord,
    InjectionRecord, NoFaults, Persistence,
};
pub use occupancy::{occupancy, BlockResources, Occupancy};
pub use profiler::{KernelProfile, PhaseClass, PhaseCounters};
pub use timing::{LaunchConfig, TimeBreakdown, TimingModel};
pub use trace::{BlockTracer, ConflictForensics, KernelTrace, NullTracer, SortTrace, Tracer};
