//! Theoretical occupancy calculator.
//!
//! Occupancy — the ratio of resident warps to the SM's maximum (the
//! paper's footnote 6) — is determined by whichever per-SM resource runs
//! out first: threads, warp slots, block slots, shared memory, or
//! registers. The paper attributes the performance gap between its two
//! software parameter sets to exactly this: `E = 15, u = 512` achieves
//! 100% theoretical occupancy on the RTX 2080 Ti while Thrust's default
//! `E = 17, u = 256` does not (its 17 KiB shared-memory tile limits an SM
//! to 3 blocks = 24 of 32 warps = 75%).

use crate::device::Device;
use cfmerge_json::{FromJson, Json, JsonError, ToJson};

/// Which resource limits residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// `max_threads_per_sm / u`.
    Threads,
    /// `max_warps_per_sm / (u/w)`.
    Warps,
    /// `max_blocks_per_sm`.
    Blocks,
    /// Shared memory per SM / per-block tile.
    SharedMemory,
    /// Register file / per-block register demand.
    Registers,
}

impl Limiter {
    /// Short label used in reports and artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Limiter::Threads => "threads",
            Limiter::Warps => "warps",
            Limiter::Blocks => "blocks",
            Limiter::SharedMemory => "shared-memory",
            Limiter::Registers => "registers",
        }
    }

    /// Inverse of [`Limiter::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Limiter> {
        [
            Limiter::Threads,
            Limiter::Warps,
            Limiter::Blocks,
            Limiter::SharedMemory,
            Limiter::Registers,
        ]
        .into_iter()
        .find(|l| l.label() == label)
    }
}

impl ToJson for Limiter {
    fn to_json(&self) -> Json {
        Json::from(self.label())
    }
}

impl FromJson for Limiter {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let label = v.as_str().ok_or_else(|| JsonError::new("expected limiter label string"))?;
        Limiter::from_label(label)
            .ok_or_else(|| JsonError::new(format!("unknown limiter {label:?}")))
    }
}

/// Result of an occupancy query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Warps resident per SM.
    pub warps_per_sm: u32,
    /// `warps_per_sm / max_warps_per_sm` in `[0, 1]`.
    pub fraction: f64,
    /// The binding resource.
    pub limiter: Limiter,
}

impl ToJson for Occupancy {
    fn to_json(&self) -> Json {
        Json::obj([
            ("blocks_per_sm", Json::from(self.blocks_per_sm)),
            ("warps_per_sm", Json::from(self.warps_per_sm)),
            ("fraction", Json::from(self.fraction)),
            ("limiter", self.limiter.to_json()),
        ])
    }
}

impl FromJson for Occupancy {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            blocks_per_sm: v.field("blocks_per_sm")?,
            warps_per_sm: v.field("warps_per_sm")?,
            fraction: v.field("fraction")?,
            limiter: v.field("limiter")?,
        })
    }
}

/// Per-block resource demand of a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockResources {
    /// Threads per block (`u`).
    pub threads: u32,
    /// Shared memory bytes per block.
    pub shared_bytes: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
}

impl ToJson for BlockResources {
    fn to_json(&self) -> Json {
        Json::obj([
            ("threads", Json::from(self.threads)),
            ("shared_bytes", Json::from(self.shared_bytes)),
            ("regs_per_thread", Json::from(self.regs_per_thread)),
        ])
    }
}

impl FromJson for BlockResources {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            threads: v.field("threads")?,
            shared_bytes: v.field("shared_bytes")?,
            regs_per_thread: v.field("regs_per_thread")?,
        })
    }
}

/// Compute theoretical occupancy of `res` on `dev`.
///
/// # Errors
/// Returns the reason a single block of `res` cannot launch on `dev` at
/// all — `res.threads` zero or not a multiple of the warp width, or a
/// single device limit exceeded. Parameter sweeps legitimately include
/// such configurations and should report, not crash, so library code
/// never aborts here.
pub fn occupancy(dev: &Device, res: &BlockResources) -> Result<Occupancy, &'static str> {
    try_occupancy(dev, res)
}

/// Historical name for [`occupancy`] (from when the latter panicked on
/// non-launchable configurations; both now return `Result`).
///
/// # Errors
/// Same conditions as [`occupancy`].
pub fn try_occupancy(dev: &Device, res: &BlockResources) -> Result<Occupancy, &'static str> {
    let w = dev.warp_width;
    if res.threads == 0 || !res.threads.is_multiple_of(w) {
        return Err("u must be a multiple of w");
    }
    if res.threads > dev.max_threads_per_sm {
        return Err("block larger than an SM allows");
    }
    if res.shared_bytes > dev.shared_per_sm {
        return Err("tile exceeds shared memory");
    }
    if res.regs_per_thread > dev.max_regs_per_thread {
        return Err("register demand too high");
    }

    let warps_per_block = res.threads / w;
    let mut candidates = [
        (dev.max_threads_per_sm / res.threads, Limiter::Threads),
        (dev.max_warps_per_sm / warps_per_block, Limiter::Warps),
        (dev.max_blocks_per_sm, Limiter::Blocks),
        (
            dev.shared_per_sm.checked_div(res.shared_bytes).unwrap_or(u32::MAX),
            Limiter::SharedMemory,
        ),
        (
            dev.regfile_per_sm.checked_div(res.regs_per_thread * res.threads).unwrap_or(u32::MAX),
            Limiter::Registers,
        ),
    ];
    // Stable min: first limiter wins ties, so "Threads" is reported in the
    // common fully-occupied case.
    candidates.sort_by_key(|&(b, _)| b);
    let (blocks, limiter) = candidates[0];
    let warps = blocks * warps_per_block;
    Ok(Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        fraction: f64::from(warps) / f64::from(dev.max_warps_per_sm),
        limiter,
    })
}

/// Rough register-demand estimate for the mergesort kernels: `E` keys held
/// in registers plus bookkeeping (indices, bounds, pointers). Matches the
/// ballpark of `nvcc -Xptxas -v` output for the paper's artifact.
#[must_use]
pub fn mergesort_regs_estimate(elements_per_thread: u32) -> u32 {
    (elements_per_thread + 24).min(255)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_bytes(u: u32, e: u32) -> u32 {
        u * e * 4
    }

    #[test]
    fn paper_parameters_e15_u512_full_occupancy() {
        let dev = Device::rtx2080ti();
        let occ = occupancy(
            &dev,
            &BlockResources {
                threads: 512,
                shared_bytes: tile_bytes(512, 15),
                regs_per_thread: mergesort_regs_estimate(15),
            },
        )
        .expect("paper config launches");
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.warps_per_sm, 32);
        assert!((occ.fraction - 1.0).abs() < 1e-12, "paper: E=15,u=512 is 100%");
    }

    #[test]
    fn paper_parameters_e17_u256_partial_occupancy() {
        let dev = Device::rtx2080ti();
        let occ = occupancy(
            &dev,
            &BlockResources {
                threads: 256,
                shared_bytes: tile_bytes(256, 17),
                regs_per_thread: mergesort_regs_estimate(17),
            },
        )
        .expect("paper config launches");
        // 17 KiB tiles: only 3 blocks fit in 64 KiB → 24/32 warps.
        assert_eq!(occ.blocks_per_sm, 3);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
        assert!((occ.fraction - 0.75).abs() < 1e-12);
    }

    #[test]
    fn block_slots_limit_small_blocks() {
        let dev = Device::rtx2080ti();
        let occ =
            occupancy(&dev, &BlockResources { threads: 32, shared_bytes: 0, regs_per_thread: 16 })
                .expect("launchable");
        assert_eq!(occ.blocks_per_sm, 16);
        assert_eq!(occ.limiter, Limiter::Blocks);
        assert!((occ.fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn register_pressure_limits() {
        let dev = Device::rtx2080ti();
        let occ = occupancy(
            &dev,
            &BlockResources { threads: 256, shared_bytes: 1024, regs_per_thread: 128 },
        )
        .expect("launchable");
        // 128 regs × 256 threads = 32768 per block → 2 blocks.
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, Limiter::Registers);
    }

    #[test]
    fn odd_block_size_rejected() {
        let dev = Device::rtx2080ti();
        let got =
            occupancy(&dev, &BlockResources { threads: 48, shared_bytes: 0, regs_per_thread: 32 });
        assert_eq!(got, Err("u must be a multiple of w"));
    }

    #[test]
    fn try_occupancy_reports_unlaunchable_configs() {
        let dev = Device::rtx2080ti();
        // u = 1024, E = 17: 69632 B tile does not fit in 64 KiB shared.
        let res = BlockResources {
            threads: 1024,
            shared_bytes: tile_bytes(1024, 17),
            regs_per_thread: mergesort_regs_estimate(17),
        };
        assert_eq!(try_occupancy(&dev, &res), Err("tile exceeds shared memory"));
        // And a launchable one matches the panicking entry point.
        let res = BlockResources { threads: 512, shared_bytes: 1024, regs_per_thread: 32 };
        assert_eq!(try_occupancy(&dev, &res), occupancy(&dev, &res));
        assert!(occupancy(&dev, &res).is_ok());
    }

    #[test]
    fn oversized_tile_rejected() {
        let dev = Device::rtx2080ti();
        let got = occupancy(
            &dev,
            &BlockResources { threads: 512, shared_bytes: 128 * 1024, regs_per_thread: 32 },
        );
        assert_eq!(got, Err("tile exceeds shared memory"));
    }
}
