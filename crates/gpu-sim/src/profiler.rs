//! `nvprof`-style counters, broken down by kernel phase.
//!
//! The paper validates its claim with NVIDIA's profiler ("we confirmed that
//! our implementation produces no bank conflicts during merging"). The
//! simulator keeps the equivalent counters — shared-memory requests and
//! transactions for loads and stores, global-memory sectors, ALU ops —
//! *per phase*, so that "no conflicts during merging" is a directly
//! checkable assertion ([`KernelProfile::merge_bank_conflicts`]) rather
//! than a whole-kernel aggregate.

use crate::stats::DegreeHistogram;
use cfmerge_json::{FromJson, Json, JsonError, ToJson};

/// The logical phase a shared/global access belongs to.
///
/// Phases correspond to the barrier-delimited sections of the mergesort
/// kernels; they exist purely for accounting (the timing model charges all
/// phases identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseClass {
    /// Global → shared tile load (possibly applying the CF permutation).
    LoadTile,
    /// Merge-path binary searches (global or shared).
    Search,
    /// The per-thread serial merge reading from shared memory — the phase
    /// the paper's worst-case inputs attack.
    Merge,
    /// The load-balanced dual subsequence gather (shared → registers).
    Gather,
    /// Register-space compute (sorting networks); ALU only.
    RegisterOps,
    /// Shared/registers → global output store.
    StoreTile,
    /// Block-sort internals other than the above.
    Sort,
    /// Anything else.
    Other,
}

impl PhaseClass {
    /// Number of phase classes (array dimension for [`KernelProfile`]).
    pub const COUNT: usize = 8;

    /// Dense index for table storage.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            PhaseClass::LoadTile => 0,
            PhaseClass::Search => 1,
            PhaseClass::Merge => 2,
            PhaseClass::Gather => 3,
            PhaseClass::RegisterOps => 4,
            PhaseClass::StoreTile => 5,
            PhaseClass::Sort => 6,
            PhaseClass::Other => 7,
        }
    }

    /// All classes, in index order.
    #[must_use]
    pub fn all() -> [PhaseClass; PhaseClass::COUNT] {
        [
            PhaseClass::LoadTile,
            PhaseClass::Search,
            PhaseClass::Merge,
            PhaseClass::Gather,
            PhaseClass::RegisterOps,
            PhaseClass::StoreTile,
            PhaseClass::Sort,
            PhaseClass::Other,
        ]
    }

    /// Short human-readable label used by report tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PhaseClass::LoadTile => "load",
            PhaseClass::Search => "search",
            PhaseClass::Merge => "merge",
            PhaseClass::Gather => "gather",
            PhaseClass::RegisterOps => "regops",
            PhaseClass::StoreTile => "store",
            PhaseClass::Sort => "sort",
            PhaseClass::Other => "other",
        }
    }

    /// Inverse of [`PhaseClass::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<PhaseClass> {
        PhaseClass::all().into_iter().find(|c| c.label() == label)
    }
}

impl ToJson for PhaseClass {
    fn to_json(&self) -> Json {
        Json::from(self.label())
    }
}

impl FromJson for PhaseClass {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let label = v.as_str().ok_or_else(|| JsonError::new("expected phase label string"))?;
        PhaseClass::from_label(label)
            .ok_or_else(|| JsonError::new(format!("unknown phase label {label:?}")))
    }
}

/// Raw counters for one phase class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Warp-level shared-memory load instructions issued.
    pub shared_ld_requests: u64,
    /// Transactions those loads split into (≥ requests; the excess is the
    /// bank-conflict replay count).
    pub shared_ld_transactions: u64,
    /// Warp-level shared-memory store instructions issued.
    pub shared_st_requests: u64,
    /// Transactions those stores split into.
    pub shared_st_transactions: u64,
    /// Warp-level global load instructions.
    pub global_ld_requests: u64,
    /// 32-byte sectors moved by global loads.
    pub global_ld_sectors: u64,
    /// Warp-level global store instructions.
    pub global_st_requests: u64,
    /// 32-byte sectors moved by global stores.
    pub global_st_sectors: u64,
    /// Scalar ALU operations (per-lane, summed over lanes).
    pub alu_ops: u64,
}

impl PhaseCounters {
    /// Load bank conflicts: replays beyond one transaction per request.
    #[must_use]
    pub fn ld_bank_conflicts(&self) -> u64 {
        self.shared_ld_transactions - self.shared_ld_requests
    }

    /// Store bank conflicts.
    #[must_use]
    pub fn st_bank_conflicts(&self) -> u64 {
        self.shared_st_transactions - self.shared_st_requests
    }

    /// All shared-memory bank conflicts in this phase.
    #[must_use]
    pub fn bank_conflicts(&self) -> u64 {
        self.ld_bank_conflicts() + self.st_bank_conflicts()
    }

    /// All shared-memory transactions (loads + stores).
    #[must_use]
    pub fn shared_transactions(&self) -> u64 {
        self.shared_ld_transactions + self.shared_st_transactions
    }

    /// All shared-memory requests (warp instructions).
    #[must_use]
    pub fn shared_requests(&self) -> u64 {
        self.shared_ld_requests + self.shared_st_requests
    }

    /// All global sectors (loads + stores).
    #[must_use]
    pub fn global_sectors(&self) -> u64 {
        self.global_ld_sectors + self.global_st_sectors
    }

    /// True when every counter is zero (such phases are omitted from
    /// JSON artifacts).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == PhaseCounters::default()
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &PhaseCounters) {
        self.shared_ld_requests += other.shared_ld_requests;
        self.shared_ld_transactions += other.shared_ld_transactions;
        self.shared_st_requests += other.shared_st_requests;
        self.shared_st_transactions += other.shared_st_transactions;
        self.global_ld_requests += other.global_ld_requests;
        self.global_ld_sectors += other.global_ld_sectors;
        self.global_st_requests += other.global_st_requests;
        self.global_st_sectors += other.global_st_sectors;
        self.alu_ops += other.alu_ops;
    }
}

/// Per-phase counters for one kernel launch (or an aggregate of many).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelProfile {
    counters: [PhaseCounters; PhaseClass::COUNT],
    /// Distribution of per-round transaction degrees in the merge and
    /// gather phases (the rounds whose conflicts the paper analyzes).
    pub merge_degree_hist: DegreeHistogram,
}

impl KernelProfile {
    /// Fresh, all-zero profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable counters for `class`.
    pub fn phase_mut(&mut self, class: PhaseClass) -> &mut PhaseCounters {
        &mut self.counters[class.index()]
    }

    /// Counters for `class`.
    #[must_use]
    pub fn phase(&self, class: PhaseClass) -> &PhaseCounters {
        &self.counters[class.index()]
    }

    /// Sum of every phase's counters.
    #[must_use]
    pub fn total(&self) -> PhaseCounters {
        let mut t = PhaseCounters::default();
        for c in &self.counters {
            t.add(c);
        }
        t
    }

    /// Accumulate another profile (e.g. across thread blocks or launches).
    pub fn merge(&mut self, other: &KernelProfile) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            a.add(b);
        }
        self.merge_degree_hist.merge(&other.merge_degree_hist);
    }

    /// Bank conflicts incurred while *merging* — the paper's headline
    /// `nvprof` check. Covers both the serial-merge phase (Thrust) and the
    /// gather phase (CF-Merge), i.e. however a pipeline moves `A_i`/`B_i`
    /// out of shared memory.
    #[must_use]
    pub fn merge_bank_conflicts(&self) -> u64 {
        self.phase(PhaseClass::Merge).bank_conflicts()
            + self.phase(PhaseClass::Gather).bank_conflicts()
    }

    /// Bank conflicts across all phases.
    #[must_use]
    pub fn total_bank_conflicts(&self) -> u64 {
        self.total().bank_conflicts()
    }

    /// Average bank conflicts per shared-memory request — the statistic
    /// Karsin et al. report as "between 2 and 3" for random inputs (that
    /// figure counts conflicts per *merge step*, i.e. per request in the
    /// merge phase).
    #[must_use]
    pub fn merge_conflicts_per_request(&self) -> f64 {
        let m = self.phase(PhaseClass::Merge);
        let req = m.shared_ld_requests + m.shared_st_requests;
        if req == 0 {
            0.0
        } else {
            self.phase(PhaseClass::Merge).bank_conflicts() as f64 / req as f64
        }
    }
}

impl ToJson for PhaseCounters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("shared_ld_requests", Json::from(self.shared_ld_requests)),
            ("shared_ld_transactions", Json::from(self.shared_ld_transactions)),
            ("shared_st_requests", Json::from(self.shared_st_requests)),
            ("shared_st_transactions", Json::from(self.shared_st_transactions)),
            ("global_ld_requests", Json::from(self.global_ld_requests)),
            ("global_ld_sectors", Json::from(self.global_ld_sectors)),
            ("global_st_requests", Json::from(self.global_st_requests)),
            ("global_st_sectors", Json::from(self.global_st_sectors)),
            ("alu_ops", Json::from(self.alu_ops)),
            ("bank_conflicts", Json::from(self.bank_conflicts())),
        ])
    }
}

impl FromJson for PhaseCounters {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            shared_ld_requests: v.field("shared_ld_requests")?,
            shared_ld_transactions: v.field("shared_ld_transactions")?,
            shared_st_requests: v.field("shared_st_requests")?,
            shared_st_transactions: v.field("shared_st_transactions")?,
            global_ld_requests: v.field("global_ld_requests")?,
            global_ld_sectors: v.field("global_ld_sectors")?,
            global_st_requests: v.field("global_st_requests")?,
            global_st_sectors: v.field("global_st_sectors")?,
            alu_ops: v.field("alu_ops")?,
        })
    }
}

impl ToJson for KernelProfile {
    /// Phases with all-zero counters are omitted; `bank_conflicts` on each
    /// phase is derived on write for human readability and ignored on read.
    fn to_json(&self) -> Json {
        let phases = PhaseClass::all()
            .into_iter()
            .filter(|&c| !self.phase(c).is_zero())
            .map(|c| (c.label().to_owned(), self.phase(c).to_json()));
        Json::obj([
            ("phases", Json::Obj(phases.collect())),
            ("merge_degree_hist", self.merge_degree_hist.to_json()),
            ("merge_bank_conflicts", Json::from(self.merge_bank_conflicts())),
            ("total_bank_conflicts", Json::from(self.total_bank_conflicts())),
        ])
    }
}

impl FromJson for KernelProfile {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut profile = KernelProfile::new();
        let phases = v.req("phases")?;
        for (label, counters) in
            phases.as_obj().ok_or_else(|| JsonError::new("expected phases object"))?
        {
            let class = PhaseClass::from_label(label)
                .ok_or_else(|| JsonError::new(format!("unknown phase {label:?}")))?;
            *profile.phase_mut(class) = PhaseCounters::from_json(counters)?;
        }
        profile.merge_degree_hist = v.field("merge_degree_hist")?;
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_distinct() {
        let mut seen = [false; PhaseClass::COUNT];
        for c in PhaseClass::all() {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn conflicts_are_transactions_minus_requests() {
        let mut p = KernelProfile::new();
        let m = p.phase_mut(PhaseClass::Merge);
        m.shared_ld_requests = 10;
        m.shared_ld_transactions = 35;
        m.shared_st_requests = 2;
        m.shared_st_transactions = 2;
        assert_eq!(p.phase(PhaseClass::Merge).ld_bank_conflicts(), 25);
        assert_eq!(p.phase(PhaseClass::Merge).st_bank_conflicts(), 0);
        assert_eq!(p.merge_bank_conflicts(), 25);
        assert!((p.merge_conflicts_per_request() - 25.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = KernelProfile::new();
        a.phase_mut(PhaseClass::LoadTile).global_ld_sectors = 4;
        a.phase_mut(PhaseClass::Gather).shared_ld_requests = 7;
        let mut b = KernelProfile::new();
        b.phase_mut(PhaseClass::LoadTile).global_ld_sectors = 6;
        b.phase_mut(PhaseClass::Gather).shared_ld_transactions = 7;
        a.merge(&b);
        assert_eq!(a.phase(PhaseClass::LoadTile).global_ld_sectors, 10);
        assert_eq!(a.phase(PhaseClass::Gather).shared_ld_requests, 7);
        assert_eq!(a.phase(PhaseClass::Gather).shared_ld_transactions, 7);
        assert_eq!(a.total().global_sectors(), 10);
    }

    #[test]
    fn empty_profile_zero_rates() {
        let p = KernelProfile::new();
        assert_eq!(p.merge_conflicts_per_request(), 0.0);
        assert_eq!(p.total_bank_conflicts(), 0);
    }

    #[test]
    fn profile_json_roundtrip() {
        let mut p = KernelProfile::new();
        let m = p.phase_mut(PhaseClass::Merge);
        m.shared_ld_requests = 10;
        m.shared_ld_transactions = 35;
        p.phase_mut(PhaseClass::LoadTile).global_ld_sectors = 4;
        p.merge_degree_hist.record(3);
        p.merge_degree_hist.record(1);
        let text = p.to_json().to_string_pretty();
        let back = KernelProfile::from_json(&cfmerge_json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        // Zero phases are omitted from the document.
        assert!(!text.contains("\"regops\""));
    }

    #[test]
    fn phase_labels_roundtrip() {
        for c in PhaseClass::all() {
            assert_eq!(PhaseClass::from_label(c.label()), Some(c));
        }
        assert_eq!(PhaseClass::from_label("bogus"), None);
    }
}
