//! Structured tracing of simulated kernels: span/event records, a
//! Chrome-trace-event/Perfetto exporter, and conflict forensics.
//!
//! The paper validates its claim with aggregate `nvprof` counters; this
//! module answers the next question a performance engineer asks: *where
//! inside the run* do the conflicts happen? [`BlockSim`](crate::block)
//! feeds a [`Tracer`] with every barrier-delimited phase and every
//! warp-level access round; [`BlockTracer`] records them on a
//! transaction-weighted tick clock, and [`SortTrace::perfetto_json`]
//! renders the result as Chrome trace-event JSON that loads directly in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Tracing is strictly opt-in: the default [`NullTracer`] is a zero-sized
//! type whose inlined empty hooks monomorphize to nothing, so untraced
//! simulations pay no cost.
//!
//! ## The tick clock
//!
//! Ticks are *logical* time: each shared-memory round advances the block's
//! clock by its transaction count (so conflict replays visibly stretch the
//! timeline), each global round by its sector count, and ALU work by one
//! tick per warp-wide operation. The exporter scales each kernel's ticks
//! so that its slowest block spans the kernel's *modeled* runtime, giving
//! a timeline whose proportions match the timing model. Warps of a block
//! are serialized in simulation order (the simulator executes them
//! sequentially); per-warp attribution survives in the event arguments.

use crate::banks::{BankModel, RoundCost};
use crate::profiler::PhaseClass;
use cfmerge_json::Json;

/// One warp's lock-step shared-memory round, after bank costing.
#[derive(Debug, Clone, Copy)]
pub struct SharedRoundEvent<'a> {
    /// Phase the round belongs to.
    pub class: PhaseClass,
    /// Warp index within the block.
    pub warp: usize,
    /// Round index within this warp's phase.
    pub round: usize,
    /// Word addresses issued by the active lanes' loads.
    pub loads: &'a [u32],
    /// Word addresses issued by the active lanes' stores.
    pub stores: &'a [u32],
    /// Bank cost of the load part.
    pub ld_cost: RoundCost,
    /// Bank cost of the store part.
    pub st_cost: RoundCost,
}

/// One warp's global-memory round, after coalescing.
#[derive(Debug, Clone, Copy)]
pub struct GlobalRoundEvent {
    /// Phase the round belongs to.
    pub class: PhaseClass,
    /// Warp index within the block.
    pub warp: usize,
    /// Round index within this warp's phase.
    pub round: usize,
    /// Active lanes loading.
    pub ld_lanes: u32,
    /// Active lanes storing.
    pub st_lanes: u32,
    /// 32-byte sectors the loads touched.
    pub ld_sectors: u64,
    /// 32-byte sectors the stores touched.
    pub st_sectors: u64,
}

/// Hooks the block engine calls while executing a kernel.
///
/// Every method has an inlined empty default, so implementors override
/// only what they need and [`NullTracer`] compiles to nothing.
pub trait Tracer {
    /// A barrier-delimited phase begins.
    #[inline]
    fn phase_begin(&mut self, _class: PhaseClass) {}

    /// One warp shared-memory round was issued and costed.
    #[inline]
    fn shared_round(&mut self, _ev: &SharedRoundEvent<'_>) {}

    /// One warp global-memory round was issued and coalesced.
    #[inline]
    fn global_round(&mut self, _ev: &GlobalRoundEvent) {}

    /// `ops` scalar ALU operations were charged to the phase (summed over
    /// all lanes of the block).
    #[inline]
    fn alu(&mut self, _class: PhaseClass, _ops: u64) {}

    /// The phase's closing barrier.
    #[inline]
    fn phase_end(&mut self, _class: PhaseClass) {}
}

/// The zero-cost default tracer: records nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {}

/// A phase span on a block's tick timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase class.
    pub class: PhaseClass,
    /// Tick at the opening barrier.
    pub start_tick: u64,
    /// Tick at the closing barrier.
    pub end_tick: u64,
}

/// Whether a conflicting round was a load or a store round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Shared-memory loads.
    Load,
    /// Shared-memory stores.
    Store,
}

impl AccessKind {
    /// Label used in reports and trace args.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        }
    }
}

/// One recorded bank-conflicted round: the offending address multiset and
/// where on the timeline it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictRound {
    /// Phase class of the round.
    pub class: PhaseClass,
    /// Warp index within the block.
    pub warp: u32,
    /// Round index within the warp's phase.
    pub round: u32,
    /// Block tick at which the round issued.
    pub tick: u64,
    /// Load or store round.
    pub kind: AccessKind,
    /// Transactions the round split into (`degree − 1` conflicts).
    pub degree: u32,
    /// The word addresses issued, one per active lane.
    pub addrs: Vec<u32>,
    /// Bank of each address (`addr mod w`), parallel to `addrs`.
    pub banks: Vec<u32>,
}

/// Default cap on conflict rounds retained per block (the worst rounds by
/// degree are kept; aggregate statistics remain exact).
pub const DEFAULT_CONFLICT_CAP: usize = 256;

/// A [`Tracer`] that records one block's timeline: phase spans on a tick
/// clock, conflicted rounds with their address/bank multisets, per-bank
/// transaction heat, and per-phase degree histograms.
#[derive(Debug, Clone)]
pub struct BlockTracer {
    banks: BankModel,
    clock: u64,
    open_phase: Option<(PhaseClass, u64)>,
    /// Completed phase spans, in execution order.
    pub spans: Vec<PhaseSpan>,
    /// Conflicted rounds (capped at `cap`; the worst by degree survive).
    pub conflicts: Vec<ConflictRound>,
    cap: usize,
    /// Conflicted rounds dropped once `cap` was reached.
    pub dropped_conflicts: u64,
    /// `heat[class][bank]`: shared transactions served by each bank.
    pub bank_heat: Vec<Vec<u64>>,
    /// `degree_rounds[class][degree]`: shared rounds whose transaction
    /// count was `degree` (index 0 unused).
    pub degree_rounds: Vec<Vec<u64>>,
}

impl BlockTracer {
    /// New recorder for a block under `banks`, with the default conflict
    /// cap.
    #[must_use]
    pub fn new(banks: BankModel) -> Self {
        Self::with_cap(banks, DEFAULT_CONFLICT_CAP)
    }

    /// New recorder retaining at most `cap` conflicted rounds.
    #[must_use]
    pub fn with_cap(banks: BankModel, cap: usize) -> Self {
        let w = banks.num_banks as usize;
        Self {
            banks,
            clock: 0,
            open_phase: None,
            spans: Vec::new(),
            conflicts: Vec::new(),
            cap,
            dropped_conflicts: 0,
            bank_heat: vec![vec![0; w]; PhaseClass::COUNT],
            degree_rounds: vec![vec![0; w + 2]; PhaseClass::COUNT],
        }
    }

    /// Final tick of the block's clock.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.clock
    }

    /// Total conflicted rounds observed (recorded + dropped).
    #[must_use]
    pub fn conflict_rounds(&self) -> u64 {
        self.conflicts.len() as u64 + self.dropped_conflicts
    }

    fn record_side(&mut self, ev: &SharedRoundEvent<'_>, kind: AccessKind) {
        let (addrs, cost) = match kind {
            AccessKind::Load => (ev.loads, ev.ld_cost),
            AccessKind::Store => (ev.stores, ev.st_cost),
        };
        if cost.active_lanes == 0 {
            return;
        }
        let ci = ev.class.index();
        self.degree_rounds[ci]
            [(cost.transactions as usize).min(self.banks.num_banks as usize + 1)] += 1;
        for &a in addrs {
            self.bank_heat[ci][self.banks.bank_of(a) as usize] += 1;
        }
        if cost.conflicts == 0 {
            return;
        }
        let round = ConflictRound {
            class: ev.class,
            warp: ev.warp as u32,
            round: ev.round as u32,
            tick: self.clock,
            kind,
            degree: cost.transactions,
            addrs: addrs.to_vec(),
            banks: addrs.iter().map(|&a| self.banks.bank_of(a)).collect(),
        };
        if self.conflicts.len() < self.cap {
            self.conflicts.push(round);
        } else {
            self.dropped_conflicts += 1;
            // Evict the mildest retained round if this one is worse.
            if let Some((i, _)) = self
                .conflicts
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.degree)
                .filter(|(_, c)| c.degree < round.degree)
            {
                self.conflicts[i] = round;
            }
        }
    }
}

impl Tracer for BlockTracer {
    fn phase_begin(&mut self, class: PhaseClass) {
        debug_assert!(self.open_phase.is_none(), "phases cannot nest");
        self.open_phase = Some((class, self.clock));
    }

    fn shared_round(&mut self, ev: &SharedRoundEvent<'_>) {
        self.record_side(ev, AccessKind::Load);
        self.record_side(ev, AccessKind::Store);
        self.clock += u64::from(ev.ld_cost.transactions) + u64::from(ev.st_cost.transactions);
    }

    fn global_round(&mut self, ev: &GlobalRoundEvent) {
        self.clock += ev.ld_sectors + ev.st_sectors;
    }

    fn alu(&mut self, _class: PhaseClass, ops: u64) {
        // One tick per warp-wide operation.
        self.clock += ops.div_ceil(u64::from(self.banks.num_banks));
    }

    fn phase_end(&mut self, class: PhaseClass) {
        let (open_class, start) = self.open_phase.take().expect("phase_end without phase_begin");
        debug_assert_eq!(open_class, class);
        // Give empty phases one visible tick so the span renders.
        if self.clock == start {
            self.clock += 1;
        }
        self.spans.push(PhaseSpan { class, start_tick: start, end_tick: self.clock });
    }
}

/// The recorded timeline of one kernel launch: one [`BlockTracer`] per
/// simulated thread block, plus the launch's modeled runtime.
#[derive(Debug, Clone)]
pub struct KernelTrace {
    /// Kernel name (`blocksort`, `merge-pass-0`, …).
    pub name: String,
    /// Grid size of the launch.
    pub grid_blocks: u64,
    /// Modeled runtime of the launch in seconds (scales the tick clock).
    pub seconds: f64,
    /// Per-block recordings, indexed by block id.
    pub blocks: Vec<BlockTracer>,
}

impl KernelTrace {
    /// Slowest block's tick count (the launch's tick span).
    #[must_use]
    pub fn max_ticks(&self) -> u64 {
        self.blocks.iter().map(BlockTracer::ticks).max().unwrap_or(0)
    }

    /// Total conflicted rounds across all blocks.
    #[must_use]
    pub fn conflict_rounds(&self) -> u64 {
        self.blocks.iter().map(BlockTracer::conflict_rounds).sum()
    }
}

/// A full traced run: an ordered sequence of kernel launches.
#[derive(Debug, Clone)]
pub struct SortTrace {
    /// Run label, e.g. `cf-merge/worst-case/E=15,u=512/n=61440`.
    pub label: String,
    /// Bank count `w` of the traced device.
    pub num_banks: u32,
    /// Kernel launches, in issue order.
    pub kernels: Vec<KernelTrace>,
}

impl SortTrace {
    /// Total conflicted rounds across the run.
    #[must_use]
    pub fn conflict_rounds(&self) -> u64 {
        self.kernels.iter().map(KernelTrace::conflict_rounds).sum()
    }

    /// Export as a Chrome trace-event document (the JSON object format:
    /// `{"displayTimeUnit": …, "traceEvents": [...]}`) loadable in
    /// `chrome://tracing` and <https://ui.perfetto.dev>.
    ///
    /// One process per kernel launch (`pid` = launch index), one thread
    /// per simulated block (`tid` = block id). Phases are `"X"` complete
    /// events; conflicted rounds are `"i"` instant events carrying the
    /// warp, round, degree, and bank/address multiset in `args`.
    /// Timestamps are microseconds of *modeled* GPU time.
    #[must_use]
    pub fn perfetto_json(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        let mut t0 = 0.0f64;
        for (ki, k) in self.kernels.iter().enumerate() {
            let pid = ki as u64;
            let dur_us = k.seconds * 1e6;
            let scale = dur_us / k.max_ticks().max(1) as f64;
            events.push(Json::obj([
                ("name", Json::from("process_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(pid)),
                (
                    "args",
                    Json::obj([(
                        "name",
                        Json::from(format!("{} [{} blocks]", k.name, k.grid_blocks)),
                    )]),
                ),
            ]));
            for (bi, block) in k.blocks.iter().enumerate() {
                let tid = bi as u64;
                events.push(Json::obj([
                    ("name", Json::from("thread_name")),
                    ("ph", Json::from("M")),
                    ("pid", Json::from(pid)),
                    ("tid", Json::from(tid)),
                    ("args", Json::obj([("name", Json::from(format!("block {bi}")))])),
                ]));
                for span in &block.spans {
                    events.push(Json::obj([
                        ("name", Json::from(span.class.label())),
                        ("cat", Json::from("phase")),
                        ("ph", Json::from("X")),
                        ("ts", Json::from(t0 + span.start_tick as f64 * scale)),
                        ("dur", Json::from((span.end_tick - span.start_tick) as f64 * scale)),
                        ("pid", Json::from(pid)),
                        ("tid", Json::from(tid)),
                    ]));
                }
                for c in &block.conflicts {
                    events.push(Json::obj([
                        ("name", Json::from(format!("bank conflict x{}", c.degree))),
                        ("cat", Json::from("conflict")),
                        ("ph", Json::from("i")),
                        ("s", Json::from("t")),
                        ("ts", Json::from(t0 + c.tick as f64 * scale)),
                        ("pid", Json::from(pid)),
                        ("tid", Json::from(tid)),
                        (
                            "args",
                            Json::obj([
                                ("phase", Json::from(c.class.label())),
                                ("warp", Json::from(c.warp)),
                                ("round", Json::from(c.round)),
                                ("access", Json::from(c.kind.label())),
                                ("degree", Json::from(c.degree)),
                                ("banks", c.banks.to_json()),
                                ("addrs", c.addrs.to_json()),
                            ]),
                        ),
                    ]));
                }
            }
            t0 += dur_us;
        }
        Json::obj([
            ("displayTimeUnit", Json::from("ms")),
            ("otherData", Json::obj([("label", Json::from(self.label.as_str()))])),
            ("traceEvents", Json::Arr(events)),
        ])
    }

    /// [`Self::perfetto_json`] serialized pretty, ready to write to disk.
    #[must_use]
    pub fn to_perfetto_string(&self) -> String {
        self.perfetto_json().to_string_pretty()
    }

    /// Conflicted rounds dropped by per-block caps across the whole run
    /// (aggregate counters stay exact; only address detail was lost).
    #[must_use]
    pub fn dropped_conflicts(&self) -> u64 {
        self.kernels.iter().flat_map(|k| k.blocks.iter().map(|b| b.dropped_conflicts)).sum()
    }

    /// Export as folded stacks (`frame;frame;frame weight` lines), the
    /// input format of `flamegraph.pl`, inferno, and speedscope. Each line
    /// is `label;kernel;phase <ns>`: phase ticks summed over all blocks of
    /// a launch, scaled so the launch's slowest block spans its modeled
    /// runtime — so frame widths are proportional to modeled GPU time,
    /// and a conflict-stretched merge phase is visibly wider. Kernels
    /// appear in issue order, phases in [`PhaseClass`] order; weights are
    /// integer nanoseconds of modeled time, so the output is bit-stable.
    #[must_use]
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for k in &self.kernels {
            let scale = k.seconds * 1e9 / k.max_ticks().max(1) as f64;
            let mut per_class = [0u64; PhaseClass::COUNT];
            for b in &k.blocks {
                for span in &b.spans {
                    per_class[span.class.index()] += span.end_tick - span.start_tick;
                }
            }
            for class in PhaseClass::all() {
                let ticks = per_class[class.index()];
                if ticks == 0 {
                    continue;
                }
                let ns = ((ticks as f64 * scale).round() as u64).max(1);
                out.push_str(&format!("{};{};{} {ns}\n", self.label, k.name, class.label()));
            }
        }
        out
    }

    /// Aggregate conflict forensics across the run.
    #[must_use]
    pub fn forensics(&self) -> ConflictForensics {
        ConflictForensics::from_trace(self)
    }
}

use cfmerge_json::ToJson;

/// Where the conflicts are: the worst rounds, which banks are hot, and the
/// per-phase degree distribution — the debugging view for layout work.
#[derive(Debug, Clone)]
pub struct ConflictForensics {
    /// Bank count `w`.
    pub num_banks: u32,
    /// Worst retained conflicted rounds, sorted by degree descending, as
    /// `(kernel name, block id, round)`.
    pub worst: Vec<(String, usize, ConflictRound)>,
    /// `heat[class][bank]` summed over all blocks and kernels.
    pub bank_heat: Vec<Vec<u64>>,
    /// `degree_rounds[class][degree]` summed over all blocks and kernels.
    pub degree_rounds: Vec<Vec<u64>>,
    /// Conflicted rounds dropped by per-block caps (aggregates above are
    /// unaffected; only address detail was lost).
    pub dropped: u64,
}

impl ConflictForensics {
    /// Aggregate a run's trace.
    #[must_use]
    pub fn from_trace(trace: &SortTrace) -> Self {
        let w = trace.num_banks as usize;
        let mut worst = Vec::new();
        let mut bank_heat = vec![vec![0u64; w]; PhaseClass::COUNT];
        let mut degree_rounds = vec![vec![0u64; w + 2]; PhaseClass::COUNT];
        let mut dropped = 0;
        for k in &trace.kernels {
            for (bi, b) in k.blocks.iter().enumerate() {
                dropped += b.dropped_conflicts;
                for (acc, src) in bank_heat.iter_mut().zip(&b.bank_heat) {
                    for (a, s) in acc.iter_mut().zip(src) {
                        *a += s;
                    }
                }
                for (acc, src) in degree_rounds.iter_mut().zip(&b.degree_rounds) {
                    for (a, s) in acc.iter_mut().zip(src) {
                        *a += s;
                    }
                }
                for c in &b.conflicts {
                    worst.push((k.name.clone(), bi, c.clone()));
                }
            }
        }
        worst.sort_by(|a, b| b.2.degree.cmp(&a.2.degree).then(a.2.tick.cmp(&b.2.tick)));
        Self { num_banks: trace.num_banks, worst, bank_heat, degree_rounds, dropped }
    }

    /// Human-readable report: top-`k` worst rounds, per-phase degree
    /// histogram, and per-bank heat for the phases that conflicted.
    #[must_use]
    pub fn report(&self, top_k: usize) -> String {
        let mut out = String::new();
        out.push_str("=== conflict forensics ===\n\n");
        if self.worst.is_empty() {
            out.push_str("no bank-conflicted rounds recorded.\n");
        } else {
            out.push_str(&format!(
                "top {} conflicted rounds (by degree):\n",
                top_k.min(self.worst.len())
            ));
            for (kernel, block, c) in self.worst.iter().take(top_k) {
                out.push_str(&format!(
                    "  x{:<3} {:8} {} block {} warp {} round {} ({}): banks {:?}\n",
                    c.degree,
                    c.class.label(),
                    kernel,
                    block,
                    c.warp,
                    c.round,
                    c.kind.label(),
                    c.banks,
                ));
            }
        }
        out.push_str("\nper-phase round degree histogram (degree: rounds):\n");
        for class in PhaseClass::all() {
            let row = &self.degree_rounds[class.index()];
            if row.iter().all(|&r| r == 0) {
                continue;
            }
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .skip(1)
                .filter(|(_, &r)| r > 0)
                .map(|(d, &r)| format!("{d}:{r}"))
                .collect();
            out.push_str(&format!("  {:8} {}\n", class.label(), cells.join("  ")));
        }
        out.push_str("\nper-bank shared accesses (conflicted phases only):\n");
        for class in PhaseClass::all() {
            let conflicted: u64 = self.degree_rounds[class.index()].iter().skip(2).sum();
            if conflicted == 0 {
                continue;
            }
            out.push_str(&format!("  {:8} {:?}\n", class.label(), self.bank_heat[class.index()],));
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "\n({} conflicted rounds beyond the per-block cap lost address detail)\n",
                self.dropped
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockSim;

    fn traced_block(u: usize, w: u32, len: usize) -> BlockSim<u32, BlockTracer> {
        BlockSim::with_tracer(BankModel::new(w), u, len, BlockTracer::new(BankModel::new(w)))
    }

    #[test]
    fn null_tracer_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NullTracer>(), 0);
    }

    #[test]
    fn spans_cover_phases_in_order() {
        let mut b = traced_block(8, 8, 64);
        b.phase(PhaseClass::LoadTile, |tid, lane| lane.st(tid, tid as u32));
        b.phase(PhaseClass::Merge, |tid, lane| {
            let _ = lane.ld(tid);
        });
        let tr = b.into_tracer();
        assert_eq!(tr.spans.len(), 2);
        assert_eq!(tr.spans[0].class, PhaseClass::LoadTile);
        assert_eq!(tr.spans[1].class, PhaseClass::Merge);
        assert!(tr.spans[0].start_tick < tr.spans[0].end_tick);
        assert_eq!(tr.spans[0].end_tick, tr.spans[1].start_tick);
        assert_eq!(tr.spans[1].end_tick, tr.ticks());
        assert!(tr.conflicts.is_empty());
    }

    #[test]
    fn conflicted_round_records_bank_multiset() {
        let mut b = traced_block(8, 8, 64);
        // All 8 lanes read distinct words of bank 0 → one 8-way round.
        b.phase(PhaseClass::Merge, |tid, lane| {
            let _ = lane.ld(tid * 8);
        });
        let tr = b.into_tracer();
        assert_eq!(tr.conflicts.len(), 1);
        let c = &tr.conflicts[0];
        assert_eq!(c.degree, 8);
        assert_eq!(c.kind, AccessKind::Load);
        assert_eq!(c.class, PhaseClass::Merge);
        assert_eq!(c.banks, vec![0u32; 8]);
        assert_eq!(c.addrs.len(), 8);
        // The conflicted round stretched the clock by its 8 transactions.
        assert_eq!(tr.ticks(), 8);
    }

    #[test]
    fn conflict_cap_keeps_worst_rounds() {
        let banks = BankModel::new(8);
        let mut b = BlockSim::<u32, _>::with_tracer(banks, 8, 128, BlockTracer::with_cap(banks, 2));
        // Three conflicted rounds of degrees 2, 8, 4.
        b.phase(PhaseClass::Merge, |tid, lane| {
            let _ = lane.ld(if tid < 2 { tid * 8 } else { 64 + tid }); // degree 2
            let _ = lane.ld(tid * 8); // degree 8
            let _ = lane.ld((tid % 4) * 8 + tid / 4); // degree 4
        });
        let tr = b.into_tracer();
        assert_eq!(tr.conflicts.len(), 2);
        assert_eq!(tr.dropped_conflicts, 1);
        let mut degrees: Vec<u32> = tr.conflicts.iter().map(|c| c.degree).collect();
        degrees.sort_unstable();
        assert_eq!(degrees, vec![4, 8]);
        assert_eq!(tr.conflict_rounds(), 3);
    }

    #[test]
    fn degree_histogram_and_heat_aggregate() {
        let mut b = traced_block(8, 8, 64);
        b.phase(PhaseClass::Gather, |tid, lane| {
            let _ = lane.ld(tid); // conflict-free: degree 1
            let _ = lane.ld(tid * 8); // 8-way
        });
        let tr = b.into_tracer();
        let g = &tr.degree_rounds[PhaseClass::Gather.index()];
        assert_eq!(g[1], 1);
        assert_eq!(g[8], 1);
        // Heat: round 1 touches banks 0..8 once each; round 2 bank 0 ×8.
        let heat = &tr.bank_heat[PhaseClass::Gather.index()];
        assert_eq!(heat[0], 1 + 8);
        assert_eq!(heat[1], 1);
    }

    #[test]
    fn perfetto_export_is_wellformed() {
        let mut b = traced_block(8, 8, 64);
        b.phase(PhaseClass::LoadTile, |tid, lane| lane.st(tid, 1));
        b.phase(PhaseClass::Merge, |tid, lane| {
            let _ = lane.ld(tid * 8);
        });
        let trace = SortTrace {
            label: "test".into(),
            num_banks: 8,
            kernels: vec![KernelTrace {
                name: "k0".into(),
                grid_blocks: 1,
                seconds: 1e-6,
                blocks: vec![b.into_tracer()],
            }],
        };
        let doc = trace.perfetto_json();
        let events = doc.req("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 1 thread_name + 2 phase spans + 1 conflict.
        assert_eq!(events.len(), 5);
        for ev in events {
            let ph = ev.req("ph").unwrap().as_str().unwrap();
            assert!(matches!(ph, "M" | "X" | "i"), "unexpected ph {ph}");
            if ph != "M" {
                assert!(ev.req("ts").unwrap().as_f64().unwrap() >= 0.0);
            }
        }
        // Round-trips through the parser.
        let text = trace.to_perfetto_string();
        assert!(Json::parse(&text).is_ok());
        assert_eq!(trace.conflict_rounds(), 1);
    }

    #[test]
    fn folded_stacks_weight_phases_by_modeled_time() {
        let mut b = traced_block(8, 8, 64);
        b.phase(PhaseClass::LoadTile, |tid, lane| lane.st(tid, 1));
        b.phase(PhaseClass::Merge, |tid, lane| {
            let _ = lane.ld(tid * 8); // 8-way conflict: 8 ticks
        });
        let trace = SortTrace {
            label: "demo".into(),
            num_banks: 8,
            kernels: vec![KernelTrace {
                name: "k0".into(),
                grid_blocks: 1,
                seconds: 9e-9, // 9 ticks total → scale = 1 ns/tick
                blocks: vec![b.into_tracer()],
            }],
        };
        let folded = trace.folded_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["demo;k0;load 1", "demo;k0;merge 8"]);
        assert_eq!(trace.dropped_conflicts(), 0);
        // Regenerating is byte-stable.
        assert_eq!(folded, trace.folded_stacks());
    }

    #[test]
    fn forensics_report_names_the_worst_round() {
        let mut b = traced_block(8, 8, 64);
        b.phase(PhaseClass::Merge, |tid, lane| {
            let _ = lane.ld(tid * 8);
        });
        let trace = SortTrace {
            label: "t".into(),
            num_banks: 8,
            kernels: vec![KernelTrace {
                name: "k0".into(),
                grid_blocks: 1,
                seconds: 1e-6,
                blocks: vec![b.into_tracer()],
            }],
        };
        let f = trace.forensics();
        assert_eq!(f.worst.len(), 1);
        assert_eq!(f.worst[0].2.degree, 8);
        let report = f.report(5);
        assert!(report.contains("x8"));
        assert!(report.contains("merge"));
        let clean = SortTrace { label: "c".into(), num_banks: 8, kernels: vec![] };
        assert!(clean.forensics().report(5).contains("no bank-conflicted rounds"));
    }
}
