//! The certification pipeline: machine-checkable conflict certificates
//! over the full (E, u, device-profile) lattice.
//!
//! [`build_certificate_table`] runs the device-parametric prover
//! ([`check_registry_on`]) and the static lint pass
//! ([`cfmerge_gpu_sim::check::lint_phases`]) over every
//! (kernel, E, u, device profile) combination the repo ships, and packs
//! the verdicts into a versioned [`CertificateTable`] with an exact JSON
//! round-trip. The pinned copy lives at `results/certificates.json`; the
//! `kernel_cert` bench bin regenerates it, cross-validates sampled
//! verdicts against [`BankModel::round_cost`](cfmerge_gpu_sim::BankModel),
//! and exits nonzero on any disagreement or drift.
//!
//! This table is the input contract for the ROADMAP's auto-tuner: at
//! admission time a service can look up `(kernel, E, u, profile)` and
//! know — with a proof, not a benchmark — whether the launch is
//! conflict-free, exactly how bad it is if not, or that the shape is
//! outside the analyzed lattice (`Unknown` verdicts fail closed).

use crate::analysis::{check_registry_on, PhaseReport};
use crate::inputs::InputSpec;
use crate::params::SortParams;
use crate::sort::{simulate_sort, SortAlgorithm, SortConfig};
use cfmerge_gpu_sim::check::{lint_phases, Access, BankShape, PhaseIr, Verdict};
use cfmerge_gpu_sim::{Device, PhaseClass};
use cfmerge_json::{FromJson, Json, JsonError, ToJson};

/// Version of the certificate schema. Bump on any change to the record
/// layout; the gate treats a version change as drift.
pub const CERT_SCHEMA_VERSION: u32 = 1;

/// One device profile certificates are issued against.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Stable profile key used in certificate records.
    pub name: &'static str,
    /// The device it describes.
    pub device: Device,
}

/// Every device profile the repo models, in certificate order. Includes
/// the Kepler-style 64-bit-bank profile: same bank count as the paper's
/// testbed, qualitatively different conflict structure.
#[must_use]
pub fn device_profiles() -> Vec<DeviceProfile> {
    vec![
        DeviceProfile { name: "rtx2080ti", device: Device::rtx2080ti() },
        DeviceProfile { name: "a100_like", device: Device::a100_like() },
        DeviceProfile { name: "kepler_64bit_like", device: Device::kepler_64bit_like() },
    ]
}

/// The launch configurations certificates cover: the paper's preferred
/// parameters, Thrust's shipped parameters, and the non-coprime stress
/// shape (`gcd(E, w) > 1`) whose honest degraded verdicts keep the table
/// from being a wall of `conflict-free`.
#[must_use]
pub fn cert_configs() -> Vec<SortParams> {
    vec![SortParams::e15_u512(), SortParams::e17_u256(), SortParams::new(16, 256)]
}

/// One certificate: the prover's verdict for one phase of one kernel at
/// one launch configuration on one device profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertRecord {
    /// Device profile key (see [`device_profiles`]).
    pub profile: String,
    /// Pipeline (`thrust` or `cf-merge`).
    pub algo: String,
    /// Elements per thread `E`.
    pub e: usize,
    /// Threads per block `u`.
    pub u: usize,
    /// Kernel name.
    pub kernel: String,
    /// Phase name.
    pub phase: String,
    /// `ld` or `st`.
    pub access: String,
    /// Bank count of the profile.
    pub banks: usize,
    /// Bank row width in 32-bit words (1 or 2).
    pub bank_word_u32s: u32,
    /// `conflict-free`, `conflicting`, or `not-certifiable`.
    pub verdict: String,
    /// The prover rule that decided it (`none` for refusals).
    pub strategy: String,
    /// Worst-case transactions per round (1 when free, 0 when refused).
    pub worst_degree: u32,
    /// The registry expectation the verdict was held to.
    pub expected: String,
    /// Whether the verdict satisfied the expectation and cross-validation.
    pub pass: bool,
}

impl CertRecord {
    fn from_report(
        profile: &DeviceProfile,
        shape: BankShape,
        algo: SortAlgorithm,
        params: SortParams,
        report: &PhaseReport,
    ) -> Self {
        let (verdict, strategy, worst_degree) = match &report.verdict {
            Verdict::ConflictFree(c) => ("conflict-free".to_string(), c.rule.to_string(), 1),
            Verdict::Conflicting { transactions, certificate } => {
                ("conflicting".to_string(), certificate.rule.to_string(), *transactions)
            }
            Verdict::NotCertifiable { .. } => {
                ("not-certifiable".to_string(), "none".to_string(), 0)
            }
        };
        CertRecord {
            profile: profile.name.to_string(),
            algo: algo.label().to_string(),
            e: params.e,
            u: params.u,
            kernel: report.spec.kernel.to_string(),
            phase: report.spec.phase.clone(),
            access: report.spec.access.to_string(),
            banks: shape.banks,
            bank_word_u32s: shape.word_u32s,
            verdict,
            strategy,
            worst_degree,
            expected: report.spec.expected.label(),
            pass: report.pass(),
        }
    }

    /// Stable identity of the lattice point this record certifies
    /// (everything except the verdict columns) — the key the drift gate
    /// joins on.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}/{}/E{}/u{}/{}/{}/{}",
            self.profile, self.algo, self.e, self.u, self.kernel, self.phase, self.access
        )
    }
}

impl ToJson for CertRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("profile", Json::from(self.profile.as_str())),
            ("algo", Json::from(self.algo.as_str())),
            ("e", Json::from(self.e)),
            ("u", Json::from(self.u)),
            ("kernel", Json::from(self.kernel.as_str())),
            ("phase", Json::from(self.phase.as_str())),
            ("access", Json::from(self.access.as_str())),
            ("banks", Json::from(self.banks)),
            ("bank_word_u32s", Json::from(self.bank_word_u32s)),
            ("verdict", Json::from(self.verdict.as_str())),
            ("strategy", Json::from(self.strategy.as_str())),
            ("worst_degree", Json::from(self.worst_degree)),
            ("expected", Json::from(self.expected.as_str())),
            ("pass", Json::from(self.pass)),
        ])
    }
}

impl FromJson for CertRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CertRecord {
            profile: v.field("profile")?,
            algo: v.field("algo")?,
            e: v.field("e")?,
            u: v.field("u")?,
            kernel: v.field("kernel")?,
            phase: v.field("phase")?,
            access: v.field("access")?,
            banks: v.field("banks")?,
            bank_word_u32s: v.field("bank_word_u32s")?,
            verdict: v.field("verdict")?,
            strategy: v.field("strategy")?,
            worst_degree: v.field("worst_degree")?,
            expected: v.field("expected")?,
            pass: v.field("pass")?,
        })
    }
}

/// One static lint finding, keyed like a certificate. A healthy table has
/// zero of these: the pinned copy asserts the shipping kernels stay clean.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintRecord {
    /// Device profile key.
    pub profile: String,
    /// Pipeline label.
    pub algo: String,
    /// Elements per thread `E`.
    pub e: usize,
    /// Threads per block `u`.
    pub u: usize,
    /// Lint name (`store-overlap`, `smem-capacity`, …).
    pub lint: String,
    /// Kernel the finding is against.
    pub kernel: String,
    /// Phase the finding is against.
    pub phase: String,
    /// What went wrong.
    pub message: String,
}

impl ToJson for LintRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("profile", Json::from(self.profile.as_str())),
            ("algo", Json::from(self.algo.as_str())),
            ("e", Json::from(self.e)),
            ("u", Json::from(self.u)),
            ("lint", Json::from(self.lint.as_str())),
            ("kernel", Json::from(self.kernel.as_str())),
            ("phase", Json::from(self.phase.as_str())),
            ("message", Json::from(self.message.as_str())),
        ])
    }
}

impl FromJson for LintRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(LintRecord {
            profile: v.field("profile")?,
            algo: v.field("algo")?,
            e: v.field("e")?,
            u: v.field("u")?,
            lint: v.field("lint")?,
            kernel: v.field("kernel")?,
            phase: v.field("phase")?,
            message: v.field("message")?,
        })
    }
}

/// The versioned certificate table: every verdict and lint finding over
/// the full lattice, in deterministic order (profiles × configs × algos ×
/// registry order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateTable {
    /// Schema version ([`CERT_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Certificates, one per lattice point.
    pub records: Vec<CertRecord>,
    /// Lint findings (empty for healthy kernels).
    pub lints: Vec<LintRecord>,
}

impl CertificateTable {
    /// Records that failed their expectation or cross-validation.
    #[must_use]
    pub fn failures(&self) -> Vec<&CertRecord> {
        self.records.iter().filter(|r| !r.pass).collect()
    }

    /// Count of records per verdict string, sorted by verdict.
    #[must_use]
    pub fn verdict_counts(&self) -> Vec<(String, usize)> {
        count_by(self.records.iter().map(|r| r.verdict.clone()))
    }

    /// Count of records per prover strategy, sorted by strategy.
    #[must_use]
    pub fn strategy_counts(&self) -> Vec<(String, usize)> {
        count_by(self.records.iter().map(|r| r.strategy.clone()))
    }
}

fn count_by(keys: impl Iterator<Item = String>) -> Vec<(String, usize)> {
    let mut counts: Vec<(String, usize)> = Vec::new();
    for k in keys {
        match counts.iter_mut().find(|(name, _)| *name == k) {
            Some((_, n)) => *n += 1,
            None => counts.push((k, 1)),
        }
    }
    counts.sort();
    counts
}

impl ToJson for CertificateTable {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(self.schema)),
            ("records", Json::arr(self.records.iter().map(ToJson::to_json))),
            ("lints", Json::arr(self.lints.iter().map(ToJson::to_json))),
        ])
    }
}

impl FromJson for CertificateTable {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CertificateTable {
            schema: v.field("schema")?,
            records: v.field("records")?,
            lints: v.field("lints")?,
        })
    }
}

/// Lower one kernel's registry specs to the lint pass's IR.
fn lint_ir(reports: &[PhaseReport], kernel: &str) -> Vec<PhaseIr> {
    reports
        .iter()
        .filter(|r| r.spec.kernel == kernel)
        .map(|r| PhaseIr {
            kernel: r.spec.kernel.to_string(),
            phase: r.spec.phase.clone(),
            access: if r.spec.access == "st" { Access::Store } else { Access::Load },
            pattern: r.spec.pattern.clone(),
        })
        .collect()
}

/// Build the full certificate table: prover verdicts and lint findings
/// for every (profile, config, algorithm) in the lattice.
///
/// # Panics
/// Panics if a config is invalid for a profile's warp width (all shipped
/// profiles are 32-lane, all shipped configs are valid for them).
#[must_use]
pub fn build_certificate_table() -> CertificateTable {
    let mut records = Vec::new();
    let mut lints = Vec::new();
    for profile in device_profiles() {
        let shape = BankShape::of_device(&profile.device);
        for params in cert_configs() {
            params.validate(shape.banks);
            for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
                let reports = check_registry_on(algo, shape, params.e, params.u);
                for report in &reports {
                    records.push(CertRecord::from_report(&profile, shape, algo, params, report));
                }
                for kernel in ["blocksort", "merge-pass"] {
                    let ir = lint_ir(&reports, kernel);
                    let findings = lint_phases(
                        &ir,
                        shape.banks,
                        params.u / shape.banks,
                        params.tile(),
                        profile.device.shared_per_sm as usize,
                    );
                    lints.extend(findings.into_iter().map(|f| LintRecord {
                        profile: profile.name.to_string(),
                        algo: algo.label().to_string(),
                        e: params.e,
                        u: params.u,
                        lint: f.lint.to_string(),
                        kernel: f.kernel,
                        phase: f.phase,
                        message: f.message,
                    }));
                }
            }
        }
    }
    CertificateTable { schema: CERT_SCHEMA_VERSION, records, lints }
}

/// Registry-completeness audit: every phase class through which a
/// *profiled* run of either pipeline drives shared-memory traffic must
/// have a registry entry with a matching (kernel, class, direction) — so
/// a new kernel phase cannot ship without a pinned certificate.
///
/// Runs one small profiled sort per pipeline (4 tiles, enough to launch
/// the blocksort and at least one real merge pass) and returns a
/// description of every uncovered (kernel, class, direction).
#[must_use]
pub fn completeness_audit(params: SortParams) -> Vec<String> {
    use crate::analysis::kernel_registry;

    let mut gaps = Vec::new();
    let config = SortConfig::with_params(params);
    let n = 4 * params.tile();
    let input = InputSpec::RandomPermutation { seed: 0xCE27 }.generate(n);
    for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
        let registry = kernel_registry(algo, config.device.warp_width as usize, params.e, params.u);
        let covered = |kernel: &str, class: PhaseClass, access: &str| {
            registry.iter().any(|s| s.kernel == kernel && s.class == class && s.access == access)
        };
        let run = simulate_sort(&input, algo, &config);
        for kernel in &run.kernels {
            // merge-pass-0, merge-pass-1, … all share one registry key.
            let key =
                if kernel.name.starts_with("merge-pass") { "merge-pass" } else { "blocksort" };
            for class in PhaseClass::all() {
                let c = kernel.profile.phase(class);
                if c.shared_ld_requests > 0 && !covered(key, class, "ld") {
                    gaps.push(format!(
                        "{} ({}): {class:?} issues {} shared load requests but has no ld \
                         registry entry",
                        kernel.name,
                        algo.label(),
                        c.shared_ld_requests
                    ));
                }
                if c.shared_st_requests > 0 && !covered(key, class, "st") {
                    gaps.push(format!(
                        "{} ({}): {class:?} issues {} shared store requests but has no st \
                         registry entry",
                        kernel.name,
                        algo.label(),
                        c.shared_st_requests
                    ));
                }
            }
        }
    }
    gaps
}

/// Compare a freshly built table against a pinned one. Returns drift
/// descriptions: missing/extra lattice points, changed verdicts, new lint
/// findings, and — called out separately — points that regressed from a
/// decided verdict to `not-certifiable` (coverage loss).
#[must_use]
pub fn diff_tables(pinned: &CertificateTable, fresh: &CertificateTable) -> Vec<String> {
    let mut drift = Vec::new();
    if pinned.schema != fresh.schema {
        drift.push(format!("schema changed: {} → {}", pinned.schema, fresh.schema));
    }
    for p in &pinned.records {
        match fresh.records.iter().find(|f| f.key() == p.key()) {
            None => drift.push(format!("{}: lattice point disappeared", p.key())),
            Some(f) => {
                if f.verdict != p.verdict || f.worst_degree != p.worst_degree {
                    let mut msg = format!(
                        "{}: verdict changed {} (degree {}) → {} (degree {})",
                        p.key(),
                        p.verdict,
                        p.worst_degree,
                        f.verdict,
                        f.worst_degree
                    );
                    if f.verdict == "not-certifiable" && p.verdict != "not-certifiable" {
                        msg.push_str(" [COVERAGE LOSS: decided verdict became a refusal]");
                    }
                    drift.push(msg);
                } else if f.strategy != p.strategy {
                    drift.push(format!(
                        "{}: strategy changed {} → {}",
                        p.key(),
                        p.strategy,
                        f.strategy
                    ));
                } else if f.pass != p.pass {
                    drift.push(format!("{}: pass changed {} → {}", p.key(), p.pass, f.pass));
                }
            }
        }
    }
    for f in &fresh.records {
        if !pinned.records.iter().any(|p| p.key() == f.key()) {
            drift.push(format!("{}: new lattice point (re-pin the table)", f.key()));
        }
    }
    for l in &fresh.lints {
        if !pinned.lints.contains(l) {
            drift.push(format!(
                "new lint finding [{}] {}/{} on {}: {}",
                l.lint, l.kernel, l.phase, l.profile, l.message
            ));
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_every_profile_config_algo() {
        let table = build_certificate_table();
        for profile in device_profiles() {
            for params in cert_configs() {
                for algo in ["thrust", "cf-merge"] {
                    let n = table
                        .records
                        .iter()
                        .filter(|r| {
                            r.profile == profile.name
                                && r.e == params.e
                                && r.u == params.u
                                && r.algo == algo
                        })
                        .count();
                    assert!(
                        n >= 8,
                        "{}/{algo}/E{}/u{}: only {n} records",
                        profile.name,
                        params.e,
                        params.u
                    );
                }
            }
        }
        assert!(table.failures().is_empty(), "{:?}", table.failures());
        assert!(table.lints.is_empty(), "{:?}", table.lints);
    }

    #[test]
    fn table_json_roundtrip_is_exact() {
        let table = build_certificate_table();
        let json = table.to_json();
        let back = CertificateTable::from_json(&json).unwrap();
        assert_eq!(back, table);
        assert_eq!(back.to_json().to_string_pretty(), json.to_string_pretty());
    }

    #[test]
    fn fused_profile_has_degraded_but_decided_verdicts() {
        let table = build_certificate_table();
        let kepler: Vec<_> =
            table.records.iter().filter(|r| r.profile == "kepler_64bit_like").collect();
        assert!(!kepler.is_empty());
        assert!(kepler.iter().all(|r| r.bank_word_u32s == 2));
        // The fused profile must contain *conflicting* verdicts the
        // 32-bit profiles certify free (E=15 strided phases), and every
        // record still passes its expectation.
        assert!(kepler.iter().any(|r| r.verdict == "conflicting" && r.e == 15));
        assert!(kepler.iter().all(|r| r.pass));
    }

    #[test]
    fn completeness_audit_is_clean_for_shipping_kernels() {
        for params in [SortParams::e15_u512(), SortParams::e17_u256()] {
            let gaps = completeness_audit(params);
            assert!(gaps.is_empty(), "{gaps:?}");
        }
    }

    #[test]
    fn diff_detects_verdict_drift_and_coverage_loss() {
        let pinned = build_certificate_table();
        let mut fresh = pinned.clone();
        assert!(diff_tables(&pinned, &fresh).is_empty());
        let idx = fresh
            .records
            .iter()
            .position(|r| r.verdict == "conflict-free")
            .expect("some CF record");
        fresh.records[idx].verdict = "not-certifiable".into();
        fresh.records[idx].worst_degree = 0;
        let drift = diff_tables(&pinned, &fresh);
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].contains("COVERAGE LOSS"), "{drift:?}");
    }
}
