//! The load-balanced dual subsequence gather (Section 3) and its inverse
//! scatter (footnote 5).
//!
//! Given a thread block whose shared memory holds the permuted layout
//! `ρ(A ∪ π(B))` — `A` in natural order, `B` reversed ([`layout::CfLayout`]
//! implements the index maps) — every thread can move its merge-path pair
//! `(Aᵢ, Bᵢ)` into registers in exactly `E` lock-step rounds with **zero
//! bank conflicts**, for *any* `d = gcd(w, E)`:
//!
//! * round `j` reads, warp-wide, precisely the logical indices congruent
//!   to `j (mod E)` — the complete residue system `R'_j` of Corollary 3;
//! * each thread reads exactly one element per round ([`schedule`]
//!   derives which), because reversing `B` interleaves the ascending `A`
//!   scan with a descending `B` scan (Section 3.1);
//! * the circular shift `ρ` re-aligns the `d` partitions when `w` and `E`
//!   share a divisor (Section 3.2).
//!
//! The register array a thread ends up with is a *rotation of an
//! ascending-A/descending-B sequence* — bitonic — so it can be merged in
//! registers with a data-oblivious network and no further shared-memory
//! access.

pub mod layout;
pub mod scan;
pub mod schedule;
pub mod simulate;

pub use layout::CfLayout;
pub use scan::{dual_scan_block, intersect_counts, DualPair};
pub use schedule::{GatherSchedule, RegisterSlot, ThreadSplit};
pub use simulate::{gather_block, scatter_block};
