//! The generic dual-sequence scan combinator — the paper's concluding
//! observation, as a library API.
//!
//! > "while the subarrays are merged in case of the mergesort, once they
//! > are in registers, they can also be processed in some other way …
//! > our approach can be used to convert **any algorithm that involves a
//! > parallel scan of a pair of arrays** into a bank conflict free
//! > algorithm."
//!
//! [`dual_scan_block`] runs the conflict-free gather and hands every
//! thread its `(Aᵢ, Bᵢ)` pair — each restored to ascending order — to an
//! arbitrary register-space closure. The closure must be data-oblivious
//! in its *memory* behaviour by construction (it only sees registers);
//! its ALU cost is charged via the returned op count.
//!
//! The module also ships one worked application beyond merging:
//! [`intersect_counts`], counting `|Aᵢ ∩ Bᵢ|` per thread (the building
//! block of merge-based set intersection).

use super::layout::CfLayout;
use super::schedule::{GatherSchedule, RegisterSlot, ThreadSplit};
use cfmerge_gpu_sim::block::BlockSim;
use cfmerge_gpu_sim::profiler::PhaseClass;

/// One thread's gathered pair, both subsequences in ascending order.
#[derive(Debug, Clone)]
pub struct DualPair<K> {
    /// `Aᵢ`, ascending.
    pub a: Vec<K>,
    /// `Bᵢ`, ascending.
    pub b: Vec<K>,
}

/// Gather every thread's `(Aᵢ, Bᵢ)` conflict-free and apply `f` in
/// register space. Returns one result per thread; `f` returns
/// `(result, alu_ops)` and the ops are charged to the RegisterOps phase.
///
/// The shared memory of `block` must hold the permuted tile
/// `ρ(A ∪ π(B))` for `layout` (see [`super::simulate::permuted_tile`] /
/// the pipelines' load phase).
///
/// ```
/// use cfmerge_core::gather::{dual_scan_block, CfLayout, ThreadSplit};
/// use cfmerge_core::gather::simulate::permuted_tile;
/// use cfmerge_gpu_sim::{BankModel, BlockSim, PhaseClass};
///
/// // One 4-lane warp, E = 3: thread i takes i elements from A.
/// let (w, e) = (4usize, 3usize);
/// let lens = [0usize, 1, 2, 3];
/// let mut splits = Vec::new();
/// let mut acc = 0;
/// for len in lens {
///     splits.push(ThreadSplit { a_begin: acc, a_len: len });
///     acc += len;
/// }
/// let a = vec![10u32, 20, 30, 40, 50, 60];
/// let b = vec![1u32, 2, 3, 4, 5, 6];
/// let layout = CfLayout::new(w, e, w * e, a.len());
/// let tile = permuted_tile(&a, &b, &layout);
/// let mut block = BlockSim::<u32>::new(BankModel::new(w as u32), w, w * e);
/// block.phase(PhaseClass::LoadTile, |tid, lane| {
///     for r in 0..e { lane.st(r * w + tid, tile[r * w + tid]); }
/// });
/// // Sum each thread's pair — any register-space fold works.
/// let sums = dual_scan_block(&mut block, &layout, &splits, |_tid, p| {
///     (p.a.iter().chain(&p.b).sum::<u32>(), (p.a.len() + p.b.len()) as u64)
/// });
/// assert_eq!(sums.len(), 4);
/// assert_eq!(block.profile.phase(PhaseClass::Gather).bank_conflicts(), 0);
/// ```
///
/// # Panics
/// Panics if shapes disagree (one split per thread, layout covering the
/// block tile).
pub fn dual_scan_block<K, R, F>(
    block: &mut BlockSim<K>,
    layout: &CfLayout,
    splits: &[ThreadSplit],
    mut f: F,
) -> Vec<R>
where
    K: Copy + Default,
    F: FnMut(usize, &DualPair<K>) -> (R, u64),
{
    assert_eq!(splits.len(), block.threads(), "one split per thread");
    assert_eq!(layout.total, block.threads() * layout.e, "layout must cover the block tile");
    let e = layout.e;
    let mut results = Vec::with_capacity(splits.len());
    block.phase(PhaseClass::Gather, |tid, lane| {
        let sched = GatherSchedule::new(*layout, tid, splits[tid]);
        let mut pair = DualPair {
            a: vec![K::default(); splits[tid].a_len],
            b: vec![K::default(); e - splits[tid].a_len],
        };
        for j in 0..e {
            match sched.round(j) {
                RegisterSlot::A { m, slot } => pair.a[m] = lane.ld(slot),
                RegisterSlot::B { m, slot } => pair.b[m] = lane.ld(slot),
            }
        }
        let (r, ops) = f(tid, &pair);
        lane.alu(ops);
        results.push(r);
    });
    results
}

/// Count `|Aᵢ ∩ Bᵢ|` per thread with a two-finger register scan — an
/// example non-merge consumer of the gather. Elements must be sorted
/// (they are: the pipelines only ever gather sorted subsequences).
#[must_use]
pub fn intersect_counts(
    block: &mut BlockSim<u32>,
    layout: &CfLayout,
    splits: &[ThreadSplit],
) -> Vec<u32> {
    dual_scan_block(block, layout, splits, |_tid, pair| {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0u32);
        let mut ops = 0u64;
        while i < pair.a.len() && j < pair.b.len() {
            ops += 3;
            match pair.a[i].cmp(&pair.b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        (count, ops)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather::simulate::permuted_tile;
    use cfmerge_gpu_sim::banks::BankModel;
    use rand::{Rng, SeedableRng};

    fn setup(
        w: usize,
        e: usize,
        warps: usize,
        seed: u64,
    ) -> (BlockSim<u32>, CfLayout, Vec<ThreadSplit>, Vec<u32>, Vec<u32>) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let u = w * warps;
        let mut splits = Vec::with_capacity(u);
        let mut a_total = 0usize;
        for _ in 0..u {
            let len = rng.gen_range(0..=e);
            splits.push(ThreadSplit { a_begin: a_total, a_len: len });
            a_total += len;
        }
        let layout = CfLayout::new(w, e, u * e, a_total);
        let mut a: Vec<u32> = (0..a_total).map(|_| rng.gen_range(0..40)).collect();
        let mut b: Vec<u32> = (0..u * e - a_total).map(|_| rng.gen_range(0..40)).collect();
        a.sort_unstable();
        b.sort_unstable();
        let tile = permuted_tile(&a, &b, &layout);
        let mut block = BlockSim::<u32>::new(BankModel::new(w as u32), u, u * e);
        block.phase(PhaseClass::LoadTile, |tid, lane| {
            for r in 0..e {
                lane.st(r * u + tid, tile[r * u + tid]);
            }
        });
        (block, layout, splits, a, b)
    }

    #[test]
    fn dual_scan_delivers_ascending_subsequences() {
        for &(w, e, warps) in &[(12usize, 5usize, 1usize), (9, 6, 2), (32, 15, 2)] {
            let (mut block, layout, splits, a, b) = setup(w, e, warps, 11);
            let pairs = dual_scan_block(&mut block, &layout, &splits, |_tid, p| (p.clone(), 0));
            for (tid, (pair, split)) in pairs.iter().zip(&splits).enumerate() {
                let b_begin = tid * e - split.a_begin;
                assert_eq!(pair.a, a[split.a_begin..split.a_begin + split.a_len]);
                assert_eq!(pair.b, b[b_begin..b_begin + (e - split.a_len)]);
                assert!(pair.a.is_sorted() && pair.b.is_sorted());
            }
            assert_eq!(block.profile.phase(PhaseClass::Gather).bank_conflicts(), 0);
        }
    }

    #[test]
    fn intersect_counts_match_reference() {
        let (mut block, layout, splits, a, b) = setup(32, 15, 2, 12);
        let counts = intersect_counts(&mut block, &layout, &splits);
        for (tid, (&count, split)) in counts.iter().zip(&splits).enumerate() {
            let e = layout.e;
            let b_begin = tid * e - split.a_begin;
            let sa = &a[split.a_begin..split.a_begin + split.a_len];
            let sb = &b[b_begin..b_begin + (e - split.a_len)];
            // Reference multiset-intersection size via two-finger scan.
            let (mut i, mut j, mut expect) = (0usize, 0usize, 0u32);
            while i < sa.len() && j < sb.len() {
                match sa[i].cmp(&sb[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        expect += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            assert_eq!(count, expect, "tid={tid}");
        }
        assert_eq!(block.profile.phase(PhaseClass::Gather).bank_conflicts(), 0);
        assert!(block.profile.phase(PhaseClass::Gather).alu_ops > 0);
    }

    #[test]
    fn dual_scan_is_conflict_free_noncoprime_too() {
        let (mut block, layout, splits, _, _) = setup(8, 6, 3, 13);
        let _ = dual_scan_block(&mut block, &layout, &splits, |_t, p| (p.a.len() + p.b.len(), 1));
        assert_eq!(block.profile.phase(PhaseClass::Gather).bank_conflicts(), 0);
    }
}
