//! The gather and scatter as simulator kernels.
//!
//! These are the phases CF-Merge splices into the mergesort pipelines;
//! they are also directly unit-tested here for the paper's headline
//! property: **zero bank conflicts in every round**, measured by the
//! simulator's exact accounting rather than asserted from the math.

use super::layout::CfLayout;
use super::schedule::{GatherSchedule, RegisterSlot, ThreadSplit};
use cfmerge_gpu_sim::block::BlockSim;
use cfmerge_gpu_sim::profiler::PhaseClass;
use cfmerge_gpu_sim::trace::Tracer;

/// Run the load-balanced dual subsequence gather on a block whose shared
/// memory already holds the permuted layout `ρ(A ∪ π(B))`.
///
/// Returns each thread's register array `items`, indexed by round: the
/// rotated bitonic sequence described in the module docs of
/// [`super::schedule`].
///
/// # Panics
/// Panics if the layout/splits disagree with the block shape.
#[must_use]
#[allow(clippy::needless_range_loop)] // round index j is the semantic loop variable
pub fn gather_block<Tr: Tracer>(
    block: &mut BlockSim<u32, Tr>,
    layout: &CfLayout,
    splits: &[ThreadSplit],
) -> Vec<Vec<u32>> {
    assert_eq!(splits.len(), block.threads(), "one split per thread");
    assert_eq!(layout.total, block.threads() * layout.e, "layout must cover the block tile");
    assert!(block.shared_len() >= layout.total, "shared memory too small for tile");
    let e = layout.e;
    let mut items = vec![vec![0u32; e]; splits.len()];
    block.phase(PhaseClass::Gather, |tid, lane| {
        let sched = GatherSchedule::new(*layout, tid, splits[tid]);
        for j in 0..e {
            items[tid][j] = lane.ld(sched.round(j).slot());
        }
    });
    items
}

/// The inverse procedure (footnote 5): scatter each thread's register
/// array back into the permuted shared layout, bank-conflict-free, round
/// `j` writing the element that belongs at the slot round `j` of the
/// gather would read.
///
/// `items` must be indexed by round (the layout [`gather_block`] returns).
#[allow(clippy::needless_range_loop)] // round index j is the semantic loop variable
pub fn scatter_block<Tr: Tracer>(
    block: &mut BlockSim<u32, Tr>,
    layout: &CfLayout,
    splits: &[ThreadSplit],
    items: &[Vec<u32>],
) {
    assert_eq!(splits.len(), block.threads());
    assert_eq!(items.len(), splits.len());
    let e = layout.e;
    block.phase(PhaseClass::Gather, |tid, lane| {
        let sched = GatherSchedule::new(*layout, tid, splits[tid]);
        for j in 0..e {
            lane.st(sched.round(j).slot(), items[tid][j]);
        }
    });
}

/// Host-side oracle: what the gather must return, computed directly from
/// the unpermuted `A` and `B` lists.
#[must_use]
pub fn gather_reference(
    a: &[u32],
    b: &[u32],
    layout: &CfLayout,
    splits: &[ThreadSplit],
) -> Vec<Vec<u32>> {
    assert_eq!(a.len(), layout.a_total);
    assert_eq!(b.len(), layout.b_total());
    splits
        .iter()
        .enumerate()
        .map(|(tid, &split)| {
            let sched = GatherSchedule::new(*layout, tid, split);
            (0..layout.e)
                .map(|j| match sched.round(j) {
                    RegisterSlot::A { m, .. } => a[split.a_begin + m],
                    RegisterSlot::B { m, .. } => b[sched.b_begin() + m],
                })
                .collect()
        })
        .collect()
}

/// Host-side helper: materialize the permuted layout `ρ(A ∪ π(B))` into a
/// plain vector (what the tile-load phase of CF-Merge produces in shared
/// memory).
#[must_use]
pub fn permuted_tile(a: &[u32], b: &[u32], layout: &CfLayout) -> Vec<u32> {
    assert_eq!(a.len(), layout.a_total);
    assert_eq!(b.len(), layout.b_total());
    let mut tile = vec![0u32; layout.total];
    for (x, &v) in a.iter().enumerate() {
        tile[layout.a_slot(x)] = v;
    }
    for (y, &v) in b.iter().enumerate() {
        tile[layout.b_slot(y)] = v;
    }
    tile
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmerge_gpu_sim::banks::BankModel;
    use rand::{Rng, SeedableRng};

    fn random_case(
        rng: &mut rand::rngs::SmallRng,
        w: usize,
        e: usize,
        warps: usize,
    ) -> (CfLayout, Vec<ThreadSplit>, Vec<u32>, Vec<u32>) {
        let u = w * warps;
        let mut splits = Vec::with_capacity(u);
        let mut a_total = 0usize;
        for _ in 0..u {
            let len = rng.gen_range(0..=e);
            splits.push(ThreadSplit { a_begin: a_total, a_len: len });
            a_total += len;
        }
        let layout = CfLayout::new(w, e, u * e, a_total);
        // Sorted lists so the data is a realistic merge input (values
        // don't matter to conflicts, but the pipelines rely on sortedness).
        let mut a: Vec<u32> = (0..a_total as u32).map(|i| i * 2).collect();
        let mut b: Vec<u32> = (0..layout.b_total() as u32).map(|i| i * 2 + 1).collect();
        a.sort_unstable();
        b.sort_unstable();
        (layout, splits, a, b)
    }

    fn run_gather(
        w: usize,
        e: usize,
        warps: usize,
        rng: &mut rand::rngs::SmallRng,
    ) -> (cfmerge_gpu_sim::profiler::KernelProfile, Vec<Vec<u32>>, Vec<Vec<u32>>) {
        let (layout, splits, a, b) = random_case(rng, w, e, warps);
        let tile = permuted_tile(&a, &b, &layout);
        let mut block = BlockSim::<u32>::new(BankModel::new(w as u32), w * warps, layout.total);
        block.phase(PhaseClass::LoadTile, |tid, lane| {
            // Host-style seed of shared memory: unit-stride writes.
            let u = w * warps;
            for r in 0..e {
                let idx = r * u + tid;
                lane.st(idx, tile[idx]);
            }
        });
        let items = gather_block(&mut block, &layout, &splits);
        let expect = gather_reference(&a, &b, &layout, &splits);
        (block.profile.clone(), items, expect)
    }

    #[test]
    fn gather_returns_the_right_elements() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        for &(w, e, warps) in &[(12usize, 5usize, 1usize), (9, 6, 2), (32, 15, 2), (32, 16, 1)] {
            for _ in 0..5 {
                let (_, items, expect) = run_gather(w, e, warps, &mut rng);
                assert_eq!(items, expect, "w={w} E={e} warps={warps}");
            }
        }
    }

    #[test]
    fn gather_is_bank_conflict_free_headline() {
        // The paper's central claim, measured: zero conflicts in the
        // gather phase, for coprime AND non-coprime E, single and
        // multi-warp blocks.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let cases: &[(usize, usize, usize)] = &[
            (12, 5, 1),
            (12, 5, 4),
            (9, 6, 1),
            (9, 6, 3),
            (6, 4, 3),
            (8, 6, 2),
            (32, 15, 1),
            (32, 15, 16),
            (32, 17, 8),
            (32, 16, 4),
            (32, 24, 2),
            (32, 32, 2),
        ];
        for &(w, e, warps) in cases {
            for trial in 0..10 {
                let (profile, _, _) = run_gather(w, e, warps, &mut rng);
                assert_eq!(
                    profile.phase(PhaseClass::Gather).bank_conflicts(),
                    0,
                    "w={w} E={e} warps={warps} trial={trial}"
                );
                // Exactly E fully-populated rounds per warp.
                let g = profile.phase(PhaseClass::Gather);
                assert_eq!(g.shared_ld_requests, (e * warps) as u64);
                assert_eq!(g.shared_ld_transactions, (e * warps) as u64);
            }
        }
    }

    #[test]
    fn tile_load_is_also_conflict_free() {
        // The permuted tile is written with unit-stride rounds, so the
        // load phase itself must not introduce conflicts either.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        for &(w, e, warps) in &[(9usize, 6usize, 2usize), (32, 16, 4), (32, 15, 2)] {
            let (profile, _, _) = run_gather(w, e, warps, &mut rng);
            assert_eq!(profile.phase(PhaseClass::LoadTile).bank_conflicts(), 0);
        }
    }

    #[test]
    fn scatter_roundtrips_and_is_conflict_free() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        for &(w, e, warps) in &[(12usize, 5usize, 2usize), (9, 6, 2), (32, 15, 2), (32, 16, 2)] {
            let (layout, splits, a, b) = random_case(&mut rng, w, e, warps);
            let tile = permuted_tile(&a, &b, &layout);
            let items = gather_reference(&a, &b, &layout, &splits);

            let mut block = BlockSim::<u32>::new(BankModel::new(w as u32), w * warps, layout.total);
            scatter_block(&mut block, &layout, &splits, &items);
            assert_eq!(block.shared(), &tile[..], "scatter must rebuild the permuted tile");
            assert_eq!(block.profile.phase(PhaseClass::Gather).bank_conflicts(), 0);
            assert_eq!(
                block.profile.phase(PhaseClass::Gather).shared_st_transactions,
                (e * warps) as u64
            );
        }
    }

    #[test]
    fn naive_unpermuted_gather_does_conflict() {
        // Negative control: reading A_i/B_i straight out of the natural
        // layout with the same round structure (no π, no ρ) must show
        // conflicts on adversarial splits — otherwise our conflict
        // accounting could be vacuous.
        let w = 32usize;
        let e = 15usize;
        // Every thread takes all E from A: threads scan contiguous
        // E-blocks; strides within a round are E apart *per thread id*,
        // i.e. lane i reads a_begin = i*E, all offset by round j: banks
        // (i*E + j) % w — fine; instead make all threads scan the SAME
        // column region: a_begin chosen so banks collide.
        let u = w;
        let _splits: Vec<ThreadSplit> =
            (0..u).map(|i| ThreadSplit { a_begin: i * e, a_len: e }).collect();
        let a: Vec<u32> = (0..(u * e) as u32).collect();
        let layout = CfLayout::new(w, e, u * e, u * e);
        let mut block = BlockSim::<u32>::new(BankModel::new(w as u32), u, layout.total);
        block.phase(PhaseClass::LoadTile, |tid, lane| {
            for r in 0..e {
                lane.st(r * u + tid, a[r * u + tid]);
            }
        });
        // Natural-layout sequential scan: thread i reads a[i*E + j] in
        // round j — this is Thrust's per-thread access shape. With
        // coprime E it happens to be conflict-free; with E = 16 it is
        // catastrophic. Use E = 16-style stride by doubling:
        block.phase(PhaseClass::Merge, |tid, lane| {
            for j in 0..e {
                // Simulate a non-coprime-like pathological alignment:
                // every thread starts at a multiple of w.
                let start = (tid * w) % (u * e);
                let _ = lane.ld((start + j) % (u * e));
            }
        });
        let merge = block.profile.phase(PhaseClass::Merge);
        assert!(
            merge.bank_conflicts() > 0,
            "negative control failed: expected conflicts, got none"
        );
    }
}
