//! Per-thread gather schedule (Algorithm 1).
//!
//! Thread `i` of a block owns the merge-path pair `(Aᵢ, Bᵢ)` with
//! block-local offsets `aᵢ`, `bᵢ = iE − aᵢ` and sizes
//! `|Aᵢ| + |Bᵢ| = E`. The gather performs `E` rounds; with
//! `k = aᵢ mod E`, round `j` reads
//!
//! * the `(j − k mod E)`-th element of `Aᵢ` if that is within `|Aᵢ|`
//!   (ascending scan), or
//! * the `(k − j − 1 mod E)`-th element of `Bᵢ` otherwise (descending
//!   scan),
//!
//! exactly Algorithm 1 of the paper. Equivalently: the element with
//! block-local *logical* index `c` is read in round `c mod E`.
//!
//! The register array after the gather holds, at position `j`, the element
//! read in round `j`; scanning positions from `k` cyclically yields `Aᵢ`
//! ascending followed by `Bᵢ` descending — a rotated bitonic sequence.

use super::layout::CfLayout;

/// One thread's merge-path split, block-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadSplit {
    /// Offset of `Aᵢ` in the block's `A` list (the paper's `aᵢ`).
    pub a_begin: usize,
    /// `|Aᵢ|`; the thread's `Bᵢ` has size `E − a_len`.
    pub a_len: usize,
}

/// What a gather round reads: which list, the element's offset within the
/// thread's subsequence, and the physical shared-memory slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterSlot {
    /// Round reads `Aᵢ[m]` from physical slot `slot`.
    A {
        /// Offset within `Aᵢ`.
        m: usize,
        /// Physical shared-memory address.
        slot: usize,
    },
    /// Round reads `Bᵢ[m]` from physical slot `slot`.
    B {
        /// Offset within `Bᵢ`.
        m: usize,
        /// Physical shared-memory address.
        slot: usize,
    },
}

impl RegisterSlot {
    /// The physical shared-memory address this round touches.
    #[must_use]
    pub fn slot(&self) -> usize {
        match *self {
            RegisterSlot::A { slot, .. } | RegisterSlot::B { slot, .. } => slot,
        }
    }
}

/// The complete `E`-round schedule of one thread.
#[derive(Debug, Clone, Copy)]
pub struct GatherSchedule {
    layout: CfLayout,
    tid: usize,
    split: ThreadSplit,
    k: usize,
}

impl GatherSchedule {
    /// Schedule for thread `tid` with the given split under `layout`.
    ///
    /// # Panics
    /// Panics if the split is inconsistent with the layout (out-of-range
    /// offsets or `a_len > E`).
    #[must_use]
    pub fn new(layout: CfLayout, tid: usize, split: ThreadSplit) -> Self {
        let e = layout.e;
        assert!(split.a_len <= e, "|A_i| = {} exceeds E = {e}", split.a_len);
        assert!(
            split.a_begin + split.a_len <= layout.a_total,
            "A_i = [{}, {}) outside |A| = {}",
            split.a_begin,
            split.a_begin + split.a_len,
            layout.a_total
        );
        let b_begin = tid * e - split.a_begin;
        let b_len = e - split.a_len;
        assert!(
            b_begin + b_len <= layout.b_total(),
            "B_i = [{b_begin}, {}) outside |B| = {} (tid={tid})",
            b_begin + b_len,
            layout.b_total()
        );
        Self { layout, tid, split, k: split.a_begin % e }
    }

    /// The thread's `bᵢ` (offset of `Bᵢ` in the block's `B` list).
    #[must_use]
    pub fn b_begin(&self) -> usize {
        self.tid * self.layout.e - self.split.a_begin
    }

    /// `|Bᵢ|`.
    #[must_use]
    pub fn b_len(&self) -> usize {
        self.layout.e - self.split.a_len
    }

    /// The rotation `k = aᵢ mod E`: scanning register positions
    /// `k, k+1, …` cyclically yields `Aᵢ` ascending then `Bᵢ` descending.
    #[must_use]
    pub fn rotation(&self) -> usize {
        self.k
    }

    /// What this thread reads in round `j` (Algorithm 1 lines 5–8).
    ///
    /// # Panics
    /// Panics if `j ≥ E`.
    #[must_use]
    pub fn round(&self, j: usize) -> RegisterSlot {
        let e = self.layout.e;
        assert!(j < e, "round {j} out of range (E = {e})");
        let m = (j + e - self.k) % e;
        if m < self.split.a_len {
            let x = self.split.a_begin + m;
            RegisterSlot::A { m, slot: self.layout.a_slot(x) }
        } else {
            let m_b = (self.k + e - j - 1) % e;
            debug_assert!(m_b < self.b_len());
            let y = self.b_begin() + m_b;
            RegisterSlot::B { m: m_b, slot: self.layout.b_slot(y) }
        }
    }

    /// All `E` rounds in order.
    #[must_use]
    pub fn rounds(&self) -> Vec<RegisterSlot> {
        (0..self.layout.e).map(|j| self.round(j)).collect()
    }

    /// Given the register array `items` (indexed by round), the register
    /// position holding `Aᵢ[m]`.
    #[must_use]
    pub fn a_register(&self, m: usize) -> usize {
        debug_assert!(m < self.split.a_len);
        (self.k + m) % self.layout.e
    }

    /// Register position holding `Bᵢ[m]`.
    #[must_use]
    pub fn b_register(&self, m: usize) -> usize {
        debug_assert!(m < self.b_len());
        (self.k + self.layout.e - 1 - m) % self.layout.e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Random merge-path-shaped splits for `t` threads: non-decreasing
    /// aᵢ with aᵢ₊₁ − aᵢ ≤ E and a final total of `a_total`.
    fn random_splits(
        rng: &mut rand::rngs::SmallRng,
        t: usize,
        e: usize,
    ) -> (Vec<ThreadSplit>, usize) {
        let mut splits = Vec::with_capacity(t);
        let mut a = 0usize;
        for _ in 0..t {
            let len = rng.gen_range(0..=e);
            splits.push(ThreadSplit { a_begin: a, a_len: len });
            a += len;
        }
        (splits, a)
    }

    #[test]
    fn every_round_reads_exactly_one_element_and_covers_the_pair() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        for &(w, e, warps) in
            &[(12usize, 5usize, 1usize), (9, 6, 1), (6, 4, 3), (32, 15, 2), (32, 16, 2)]
        {
            let u = w * warps;
            let (splits, a_total) = random_splits(&mut rng, u, e);
            let layout = CfLayout::new(w, e, u * e, a_total);
            for (tid, &split) in splits.iter().enumerate() {
                let s = GatherSchedule::new(layout, tid, split);
                let mut a_seen = vec![false; split.a_len];
                let mut b_seen = vec![false; s.b_len()];
                for j in 0..e {
                    match s.round(j) {
                        RegisterSlot::A { m, .. } => {
                            assert!(!a_seen[m]);
                            a_seen[m] = true;
                        }
                        RegisterSlot::B { m, .. } => {
                            assert!(!b_seen[m]);
                            b_seen[m] = true;
                        }
                    }
                }
                assert!(a_seen.iter().all(|&x| x) && b_seen.iter().all(|&x| x));
            }
        }
    }

    #[test]
    fn a_ascending_b_descending_rotation() {
        // Scanning register positions k, k+1, … cyclically must give A
        // ascending then B descending (the bitonic shape).
        let layout = CfLayout::new(12, 5, 60, 23);
        let split = ThreadSplit { a_begin: 7, a_len: 3 };
        let s = GatherSchedule::new(layout, 2, split); // tid 2: b_begin = 3
        let k = s.rotation();
        assert_eq!(k, 7 % 5);
        // Positions k..k+3: A[0], A[1], A[2].
        for m in 0..3 {
            assert_eq!(s.a_register(m), (k + m) % 5);
        }
        // Positions k+3, k+4: B[1], B[0] (descending).
        assert_eq!(s.b_register(1), (k + 3) % 5);
        assert_eq!(s.b_register(0), (k + 4) % 5);
    }

    #[test]
    fn rounds_are_conflict_free_across_each_warp() {
        // THE theorem of Section 3: in every round, the w threads of a
        // warp touch w distinct banks. Randomized over many (w, E, u) and
        // many merge-path splits, coprime and non-coprime.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xB00C);
        let cases: &[(usize, usize, usize)] = &[
            (12, 5, 1),
            (12, 5, 3),
            (9, 6, 1),
            (9, 6, 2),
            (6, 4, 3),
            (12, 9, 2),
            (8, 6, 2),
            (32, 15, 1),
            (32, 15, 4),
            (32, 17, 2),
            (32, 16, 2),
            (32, 24, 2),
            (32, 32, 1),
            (10, 4, 2),
            (15, 10, 2),
        ];
        for &(w, e, warps) in cases {
            let u = w * warps;
            for trial in 0..40 {
                let (splits, a_total) = random_splits(&mut rng, u, e);
                let layout = CfLayout::new(w, e, u * e, a_total);
                let schedules: Vec<GatherSchedule> = splits
                    .iter()
                    .enumerate()
                    .map(|(tid, &sp)| GatherSchedule::new(layout, tid, sp))
                    .collect();
                for v in 0..warps {
                    for j in 0..e {
                        let mut banks = vec![false; w];
                        for lane in 0..w {
                            let slot = schedules[v * w + lane].round(j).slot();
                            let bank = slot % w;
                            assert!(
                                !banks[bank],
                                "bank conflict: w={w} E={e} warps={warps} trial={trial} \
                                 warp={v} round={j} bank={bank}"
                            );
                            banks[bank] = true;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn slots_within_rounds_are_globally_disjoint() {
        // Across the whole block, each round reads each physical slot at
        // most once (threads never share an element).
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let (w, e, warps) = (9usize, 6usize, 2usize);
        let u = w * warps;
        let (splits, a_total) = random_splits(&mut rng, u, e);
        let layout = CfLayout::new(w, e, u * e, a_total);
        let mut touched = vec![false; u * e];
        for (tid, &sp) in splits.iter().enumerate() {
            for j in 0..e {
                let slot = GatherSchedule::new(layout, tid, sp).round(j).slot();
                assert!(!touched[slot]);
                touched[slot] = true;
            }
        }
        assert!(touched.iter().all(|&x| x));
    }

    #[test]
    #[should_panic(expected = "exceeds E")]
    fn oversized_split_rejected() {
        let layout = CfLayout::new(12, 5, 60, 30);
        let _ = GatherSchedule::new(layout, 0, ThreadSplit { a_begin: 0, a_len: 6 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn round_out_of_range_panics() {
        let layout = CfLayout::new(12, 5, 60, 30);
        let s = GatherSchedule::new(layout, 0, ThreadSplit { a_begin: 0, a_len: 5 });
        let _ = s.round(5);
    }
}
