//! The CF-Merge shared-memory layout `ρ(A ∪ π(B))`.
//!
//! Logical index space (what the algorithms reason about): the `A` list
//! occupies logical indices `[0, |A|)` in order; the `B` list is reversed
//! by `π`, so `B`'s element at B-offset `y` has logical index
//! `total − 1 − y`. Physical placement applies the circular shift `ρ`:
//! the region is cut into partitions of `wE/d` words and partition `ℓ` is
//! rotated forward by `ℓ mod d` positions (Sections 3.2–3.3). For coprime
//! `w` and `E` (`d = 1`), `ρ` is the identity and the layout is just
//! "A forward, B backward".
//!
//! The governing invariant (proved via Corollary 3, checked exhaustively
//! in tests): **the logical index `c` is read in gather round
//! `c mod E`**, and the physical addresses of `{c : c ≡ j (mod E)}`
//! within any aligned `wE` window hit all `w` banks exactly once.

use cfmerge_numtheory::gcd;

/// Index maps for one block's (or warp's) permuted tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfLayout {
    /// Warp width / bank count `w`.
    pub w: usize,
    /// Elements per thread `E`.
    pub e: usize,
    /// `d = gcd(w, E)`.
    pub d: usize,
    /// Partition size `wE/d` for the circular shift `ρ`.
    pub partition: usize,
    /// Total words in the tile (`u·E` for a block, `w·E` for one warp).
    pub total: usize,
    /// Number of elements currently in the `A` list (`|A|`); `B` holds
    /// `total − a_total`.
    pub a_total: usize,
}

impl CfLayout {
    /// Layout for a tile of `total` words split as `a_total` from `A` and
    /// the rest from `B`.
    ///
    /// ```
    /// use cfmerge_core::gather::CfLayout;
    /// // One warp's tile at the paper's parameters (d = 1 → ρ = id).
    /// let l = CfLayout::new(32, 15, 32 * 15, 200);
    /// assert_eq!(l.a_slot(0), 0);          // A stays in order
    /// assert_eq!(l.b_slot(0), 32 * 15 - 1); // B is reversed (π)
    /// // Every logical index is read in round (index mod E):
    /// assert_eq!(l.round_of_logical(47), 47 % 15);
    /// ```
    ///
    /// # Panics
    /// Panics unless `total` is a positive multiple of `wE/d` (a whole
    /// number of ρ-partitions — always true for complete blocks, where
    /// `total = uE` and `w | u`) and `a_total ≤ total`.
    #[must_use]
    pub fn new(w: usize, e: usize, total: usize, a_total: usize) -> Self {
        assert!(w > 0 && e > 0, "w and E must be positive");
        let d = gcd(w as u64, e as u64) as usize;
        let partition = w * e / d;
        assert!(
            total > 0 && total.is_multiple_of(partition),
            "tile of {total} words is not a whole number of ρ-partitions ({partition})"
        );
        assert!(a_total <= total, "|A| = {a_total} exceeds tile size {total}");
        Self { w, e, d, partition, total, a_total }
    }

    /// A reversal-only layout: `π` applied, `ρ` forced to the identity
    /// regardless of `gcd(w, E)`.
    ///
    /// Used by the CF block-sort's small intra-tile merge pairs, whose
    /// size need not be a multiple of `wE/d`. For coprime `E` this *is*
    /// the CF layout; for non-coprime `E` it omits the circular shift
    /// (the artifact the paper evaluates only implements the coprime
    /// variant — see DESIGN.md).
    #[must_use]
    pub fn reversal_only(w: usize, e: usize, total: usize, a_total: usize) -> Self {
        assert!(w > 0 && e > 0 && total > 0);
        assert!(a_total <= total, "|A| = {a_total} exceeds tile size {total}");
        Self { w, e, d: 1, partition: total, total, a_total }
    }

    /// Number of elements in the `B` list.
    #[must_use]
    pub fn b_total(&self) -> usize {
        self.total - self.a_total
    }

    /// π: logical index of the `A` element at A-offset `x`.
    #[must_use]
    pub fn a_logical(&self, x: usize) -> usize {
        debug_assert!(x < self.a_total, "A offset {x} out of range {}", self.a_total);
        x
    }

    /// π: logical index of the `B` element at B-offset `y` (reversed).
    #[must_use]
    pub fn b_logical(&self, y: usize) -> usize {
        debug_assert!(y < self.b_total(), "B offset {y} out of range {}", self.b_total());
        self.total - 1 - y
    }

    /// ρ: physical shared-memory slot of logical index `c`.
    #[must_use]
    pub fn rho(&self, c: usize) -> usize {
        debug_assert!(c < self.total);
        if self.d == 1 {
            return c; // identity for coprime w, E
        }
        let ell = c / self.partition;
        let within = c % self.partition;
        ell * self.partition + (within + ell % self.d) % self.partition
    }

    /// ρ⁻¹: logical index stored at physical slot `s`.
    #[must_use]
    pub fn rho_inv(&self, s: usize) -> usize {
        debug_assert!(s < self.total);
        if self.d == 1 {
            return s;
        }
        let ell = s / self.partition;
        let within = s % self.partition;
        let shift = ell % self.d;
        ell * self.partition + (within + self.partition - shift) % self.partition
    }

    /// Physical slot of the `A` element at A-offset `x` — the composition
    /// `ρ(π_A(x))`.
    #[must_use]
    pub fn a_slot(&self, x: usize) -> usize {
        self.rho(self.a_logical(x))
    }

    /// Physical slot of the `B` element at B-offset `y` — `ρ(π_B(y))`.
    #[must_use]
    pub fn b_slot(&self, y: usize) -> usize {
        self.rho(self.b_logical(y))
    }

    /// The gather round in which logical index `c` is read:
    /// `c mod E` (the invariant of Sections 3.1–3.2).
    #[must_use]
    pub fn round_of_logical(&self, c: usize) -> usize {
        c % self.e
    }

    /// The natural (unpermuted) layout used by the Thrust baseline:
    /// `A` at `[0, |A|)`, `B` at `[|A|, total)`.
    #[must_use]
    pub fn natural_a_slot(&self, x: usize) -> usize {
        debug_assert!(x < self.a_total);
        x
    }

    /// Natural slot of the `B` element at B-offset `y` (baseline layout).
    #[must_use]
    pub fn natural_b_slot(&self, y: usize) -> usize {
        debug_assert!(y < self.b_total());
        self.a_total + y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layouts_under_test() -> Vec<CfLayout> {
        let mut v = Vec::new();
        // (w, E) pairs covering d = 1 and d > 1, incl. the paper's figure
        // parameters (12,5), (9,6), (6,4) and headline (32,15), (32,17),
        // (32,16).
        for &(w, e) in &[
            (12usize, 5usize),
            (9, 6),
            (6, 4),
            (32, 15),
            (32, 17),
            (32, 16),
            (32, 32),
            (8, 6),
            (10, 4),
        ] {
            let d = gcd(w as u64, e as u64) as usize;
            let part = w * e / d;
            for mult in [1usize, 2, 3] {
                let total = part * mult * d; // a few whole-partition sizes
                for a_total in [0, total / 3, total / 2, total] {
                    v.push(CfLayout::new(w, e, total, a_total));
                }
            }
        }
        v
    }

    #[test]
    fn rho_is_a_bijection_and_inverse_matches() {
        for l in layouts_under_test() {
            let mut seen = vec![false; l.total];
            for c in 0..l.total {
                let s = l.rho(c);
                assert!(s < l.total);
                assert!(!seen[s], "rho collision at {s} (w={} E={})", l.w, l.e);
                seen[s] = true;
                assert_eq!(l.rho_inv(s), c);
            }
        }
    }

    #[test]
    fn rho_shifts_within_partitions_only() {
        for l in layouts_under_test() {
            for c in 0..l.total {
                assert_eq!(l.rho(c) / l.partition, c / l.partition);
            }
        }
    }

    #[test]
    fn coprime_rho_is_identity() {
        let l = CfLayout::new(32, 15, 32 * 15, 100);
        for c in 0..l.total {
            assert_eq!(l.rho(c), c);
            assert_eq!(l.rho_inv(c), c);
        }
    }

    #[test]
    fn a_and_b_slots_partition_the_tile() {
        for l in layouts_under_test() {
            let mut seen = vec![false; l.total];
            for x in 0..l.a_total {
                let s = l.a_slot(x);
                assert!(!seen[s]);
                seen[s] = true;
            }
            for y in 0..l.b_total() {
                let s = l.b_slot(y);
                assert!(!seen[s], "A/B slot collision (w={} E={})", l.w, l.e);
                seen[s] = true;
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn b_is_reversed() {
        let l = CfLayout::new(32, 15, 480, 200);
        // Consecutive B offsets land on consecutive descending slots
        // (d = 1 so ρ = id).
        for y in 0..l.b_total() - 1 {
            assert_eq!(l.b_slot(y), l.b_slot(y + 1) + 1);
        }
        assert_eq!(l.b_slot(0), 479);
    }

    #[test]
    fn round_sets_are_complete_residue_systems_per_warp_window() {
        // The invariant powering conflict-freedom: within any aligned wE
        // window of logical indices, the physical slots of
        // {c : c ≡ j (mod E)} hit every bank exactly once.
        for l in layouts_under_test() {
            if l.total % (l.w * l.e) != 0 {
                continue;
            }
            for window in 0..l.total / (l.w * l.e) {
                let base = window * l.w * l.e;
                for j in 0..l.e {
                    let mut banks = vec![false; l.w];
                    let mut count = 0;
                    for c in base..base + l.w * l.e {
                        if c % l.e == j {
                            let bank = l.rho(c) % l.w;
                            assert!(
                                !banks[bank],
                                "bank {bank} hit twice in round {j} (w={} E={} window={window})",
                                l.w, l.e
                            );
                            banks[bank] = true;
                            count += 1;
                        }
                    }
                    assert_eq!(count, l.w);
                }
            }
        }
    }

    #[test]
    fn figure3_parameters_partition_sizes() {
        // w = 9, E = 6, d = 3: partitions of wE/d = 18 elements shifted by
        // 0, 1, 2. (The paper's Figure 3 caption says 16 for its 54-word
        // example split across three partitions of 18 — the figure shows
        // the shift boundaries; our math follows the definitions.)
        let l = CfLayout::new(9, 6, 54, 30);
        assert_eq!(l.d, 3);
        assert_eq!(l.partition, 18);
        // Partition 0 unshifted, partition 1 shifted by 1, partition 2 by 2.
        assert_eq!(l.rho(0), 0);
        assert_eq!(l.rho(18), 18 + 1);
        assert_eq!(l.rho(35), 18);
        assert_eq!(l.rho(36), 36 + 2);
    }

    #[test]
    #[should_panic(expected = "whole number of ρ-partitions")]
    fn ragged_tile_rejected() {
        let _ = CfLayout::new(9, 6, 55, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds tile size")]
    fn oversized_a_rejected() {
        let _ = CfLayout::new(9, 6, 54, 55);
    }
}
