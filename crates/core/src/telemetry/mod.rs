//! Deterministic telemetry over *modeled* time.
//!
//! The paper's evaluation leans on profiler counters; this module is the
//! repo's first-class metrics layer on top of them: a
//! [`MetricsRegistry`] of named counters, gauges, and log-bucketed
//! [`LogHistogram`]s, frozen into bit-stable [`MetricsSnapshot`]s that
//! embed in run artifacts, export as Prometheus text exposition, and
//! back the `bench_diff --gate` regression gate (see `docs/TELEMETRY.md`
//! for the metric catalog).
//!
//! Three properties define the design:
//!
//! * **Modeled time only.** Histograms record integer nanoseconds of
//!   simulated time; nothing here reads a wall clock, so snapshots are
//!   reproducible by construction.
//! * **Bit-stable.** Bucket boundaries are fixed integer functions of
//!   the value, snapshots sort metrics by name, and every number
//!   round-trips JSON exactly — two runs with the same seed/config
//!   serialize byte-identically on any platform.
//! * **Zero-cost when off.** Like [`NullTracer`], telemetry is opt-in:
//!   the service holds an `Option<MetricsRegistry>` defaulting to
//!   `None`, simulator metrics derive from the always-on
//!   [`KernelProfile`] after the run, and recording never feeds back
//!   into modeled time — enabling telemetry changes no output, kernel
//!   sequence, or modeled second.
//!
//! [`NullTracer`]: cfmerge_gpu_sim::trace::NullTracer
//! [`KernelProfile`]: cfmerge_gpu_sim::profiler::KernelProfile

pub mod histogram;
pub mod registry;
pub mod snapshot;

pub use histogram::LogHistogram;
pub use registry::MetricsRegistry;
pub use snapshot::{HistogramSnapshot, MetricSnapshot, MetricValue, MetricsSnapshot};
