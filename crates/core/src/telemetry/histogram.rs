//! The deterministic log-bucketed histogram behind every latency and
//! degree distribution the telemetry layer records.
//!
//! HDR-style layout: values below [`LogHistogram::LINEAR_BUCKETS`] get
//! one bucket each (exact), larger values land in power-of-two octaves
//! subdivided into [`LogHistogram::LINEAR_BUCKETS`] linear sub-buckets,
//! bounding the relative quantile error at `1/LINEAR_BUCKETS` ≈ 6%.
//! Bucket boundaries are *fixed* — pure integer functions of the value,
//! independent of the data, the platform, and the insertion order — so
//! two runs that observe the same multiset of values serialize to
//! byte-identical snapshots. All values are `u64`; time is recorded in
//! integer nanoseconds of *modeled* time (see
//! [`LogHistogram::observe_seconds`]), never wall-clock.

/// A fixed-boundary log-bucketed histogram over `u64` values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Sparse `(bucket index, count)` pairs, ascending in index.
    buckets: Vec<(u32, u64)>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// Sub-buckets per octave; also the count of exact low-value buckets.
    pub const LINEAR_BUCKETS: u64 = 16;
    /// `log2(LINEAR_BUCKETS)`.
    const LINEAR_BITS: u32 = 4;

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The fixed bucket index of `value` (pure integer math).
    #[must_use]
    pub fn bucket_index(value: u64) -> u32 {
        if value < Self::LINEAR_BUCKETS {
            return value as u32;
        }
        // Octave = floor(log2 value) ≥ LINEAR_BITS; the top LINEAR_BITS+1
        // significant bits select the sub-bucket within the octave.
        let octave = 63 - value.leading_zeros();
        let sub = ((value >> (octave - Self::LINEAR_BITS)) - Self::LINEAR_BUCKETS) as u32;
        Self::LINEAR_BUCKETS as u32 * (octave - Self::LINEAR_BITS)
            + Self::LINEAR_BUCKETS as u32
            + sub
    }

    /// Inclusive upper bound of bucket `index` (the value quantiles
    /// report). Inverse of [`Self::bucket_index`] up to bucket width.
    #[must_use]
    pub fn bucket_upper_bound(index: u32) -> u64 {
        let lin = Self::LINEAR_BUCKETS as u32;
        if index < lin {
            return u64::from(index);
        }
        let octave = Self::LINEAR_BITS + (index - lin) / lin;
        let sub = u64::from((index - lin) % lin);
        let width = 1u64 << (octave - Self::LINEAR_BITS);
        // `+ (width - 1)` in this order: the top bucket's bound is exactly
        // `u64::MAX`, and `base + width` alone would overflow first.
        (Self::LINEAR_BUCKETS + sub) * width + (width - 1)
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.observe_n(value, 1);
    }

    /// Record `n` observations of `value` at once (bulk import of
    /// pre-aggregated rounds).
    pub fn observe_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += n;
        // Saturating: modeled-ns observations never get close, but the
        // histogram accepts arbitrary u64s and must not wrap.
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        let idx = Self::bucket_index(value);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += n,
            Err(pos) => self.buckets.insert(pos, (idx, n)),
        }
    }

    /// Record a duration in *modeled* seconds as integer nanoseconds.
    /// The seconds→ns conversion is a single IEEE-754 multiply-and-round,
    /// identical on every platform, so snapshots stay bit-stable.
    pub fn observe_seconds(&mut self, seconds: f64) {
        debug_assert!(seconds.is_finite() && seconds >= 0.0, "bad duration {seconds}");
        self.observe((seconds * 1e9).round() as u64);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating at `u64::MAX`).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observed value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sparse `(bucket index, count)` pairs, ascending in index.
    #[must_use]
    pub fn buckets(&self) -> &[(u32, u64)] {
        &self.buckets
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the `ceil(q·count)`-th smallest observation (exact for
    /// values below [`Self::LINEAR_BUCKETS`], ≤ ~6% high otherwise).
    /// Returns 0 on an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(idx, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                // The top bucket cannot report beyond the observed max.
                return Self::bucket_upper_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one. Exact: bucket counts and the
    /// count/sum/min/max stats all add element-wise.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_are_exact() {
        for v in 0..LogHistogram::LINEAR_BUCKETS {
            let idx = LogHistogram::bucket_index(v);
            assert_eq!(idx, v as u32);
            assert_eq!(LogHistogram::bucket_upper_bound(idx), v);
        }
    }

    #[test]
    fn bucket_bounds_invert_bucket_index() {
        for v in [16u64, 17, 31, 32, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let idx = LogHistogram::bucket_index(v);
            let ub = LogHistogram::bucket_upper_bound(idx);
            assert!(ub >= v, "upper bound {ub} below value {v}");
            // Relative error bounded by one sub-bucket width.
            assert!(ub - v <= v / LogHistogram::LINEAR_BUCKETS, "bucket too wide at {v}");
            // The bound itself maps back into the same bucket.
            assert_eq!(LogHistogram::bucket_index(ub), idx);
        }
    }

    #[test]
    fn bucket_indices_are_monotone() {
        let mut prev = 0;
        for v in 1..100_000u64 {
            let idx = LogHistogram::bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            prev = idx;
        }
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((50..=53).contains(&p50), "p50 = {p50}");
        assert!((99..=100).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 100);
        // p0 clamps to the first observation's bucket.
        assert!(h.quantile(0.0) >= 1);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn seconds_round_to_nanoseconds() {
        let mut h = LogHistogram::new();
        h.observe_seconds(1.5e-6);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 1500);
        h.observe_seconds(0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn merge_is_exact_and_commutative() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in [5u64, 500, 50_000] {
            a.observe(v);
        }
        for v in [7u64, 700, 70_000, 7] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 7);
        assert_eq!(ab.sum(), a.sum() + b.sum());
        assert_eq!(ab.min(), 5);
        assert_eq!(ab.max(), 70_000);
    }

    #[test]
    fn insertion_order_does_not_change_state() {
        let values = [3u64, 77, 12_345, 3, 1 << 20, 77];
        let mut a = LogHistogram::new();
        for &v in &values {
            a.observe(v);
        }
        let mut rev = values;
        rev.reverse();
        let mut b = LogHistogram::new();
        for &v in &rev {
            b.observe(v);
        }
        assert_eq!(a, b);
    }
}
