//! The [`MetricsRegistry`]: named counters, gauges, and histograms over
//! modeled time.
//!
//! The registry is strictly opt-in, mirroring the simulator's
//! `NullTracer` philosophy: nothing in the hot paths holds one, the
//! resilience service carries an `Option<MetricsRegistry>` that defaults
//! to `None`, and recording never touches modeled time — a run with
//! telemetry enabled produces bit-identical outputs, kernels, and
//! modeled seconds to the same run without it.

use crate::recovery::RecoveryCounters;
use crate::sort::pipeline::SortRun;
use crate::telemetry::histogram::LogHistogram;
use crate::telemetry::snapshot::{MetricSnapshot, MetricValue, MetricsSnapshot};
use cfmerge_gpu_sim::profiler::{KernelProfile, PhaseClass};

/// A live metric: monotone counter, last-write gauge, or distribution.
#[derive(Debug, Clone, PartialEq)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(LogHistogram),
}

/// A registry of named metrics. Names are free-form `snake_case` strings
/// (the Prometheus exporter sanitizes them); registration is implicit on
/// first use, and using one name with two different metric kinds panics —
/// that is always an instrumentation bug.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// Insertion-ordered; snapshots sort by name so ordering here never
    /// leaks into artifacts.
    metrics: Vec<(String, Metric)>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&mut self, name: &str, make: impl FnOnce() -> Metric) -> &mut Metric {
        if let Some(i) = self.metrics.iter().position(|(n, _)| n == name) {
            return &mut self.metrics[i].1;
        }
        self.metrics.push((name.to_string(), make()));
        &mut self.metrics.last_mut().expect("just pushed").1
    }

    /// Add `delta` to counter `name` (created at zero on first use).
    pub fn inc(&mut self, name: &str, delta: u64) {
        match self.entry(name, || Metric::Counter(0)) {
            Metric::Counter(c) => *c += delta,
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        match self.entry(name, || Metric::Gauge(0.0)) {
            Metric::Gauge(g) => *g = value,
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Record `value` into histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.observe_n(name, value, 1);
    }

    /// Record `n` observations of `value` into histogram `name`.
    pub fn observe_n(&mut self, name: &str, value: u64, n: u64) {
        match self.entry(name, || Metric::Histogram(LogHistogram::new())) {
            Metric::Histogram(h) => h.observe_n(value, n),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Record a duration in modeled seconds into histogram `name`
    /// (stored as integer nanoseconds; see
    /// [`LogHistogram::observe_seconds`]).
    pub fn observe_seconds(&mut self, name: &str, seconds: f64) {
        match self.entry(name, || Metric::Histogram(LogHistogram::new())) {
            Metric::Histogram(h) => h.observe_seconds(seconds),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// The histogram registered under `name`, if any.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.metrics.iter().find_map(|(n, m)| match m {
            Metric::Histogram(h) if n == name => Some(h),
            _ => None,
        })
    }

    /// The counter registered under `name`, if any.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find_map(|(n, m)| match m {
            Metric::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Record the per-phase simulator counters of a finished sort run
    /// under `prefix` (e.g. `sim_cf_merge`): shared transactions and
    /// requests, bank conflicts, global sectors, and ALU ops per active
    /// phase, plus the merge-phase conflict-degree distribution. Derived
    /// entirely from the always-on [`KernelProfile`], so the simulation
    /// itself runs untouched.
    pub fn record_profile(&mut self, prefix: &str, profile: &KernelProfile) {
        for class in PhaseClass::all() {
            let p = profile.phase(class);
            if p.is_zero() {
                continue;
            }
            let label = class.label();
            self.inc(&format!("{prefix}_phase_{label}_shared_requests"), p.shared_requests());
            self.inc(
                &format!("{prefix}_phase_{label}_shared_transactions"),
                p.shared_transactions(),
            );
            self.inc(&format!("{prefix}_phase_{label}_bank_conflicts"), p.bank_conflicts());
            self.inc(&format!("{prefix}_phase_{label}_global_sectors"), p.global_sectors());
            self.inc(&format!("{prefix}_phase_{label}_alu_ops"), p.alu_ops);
        }
        for (degree, &rounds) in profile.merge_degree_hist.buckets().iter().enumerate() {
            if rounds > 0 {
                self.observe_n(&format!("{prefix}_merge_round_degree"), degree as u64, rounds);
            }
        }
    }

    /// Record a finished pipeline run under `prefix`: the modeled runtime
    /// (latency histogram in modeled ns), element count, kernel launches,
    /// and the full per-phase profile.
    pub fn record_sort_run<K>(&mut self, prefix: &str, run: &SortRun<K>) {
        self.inc(&format!("{prefix}_runs_total"), 1);
        self.inc(&format!("{prefix}_elements_total"), run.n as u64);
        self.inc(&format!("{prefix}_kernel_launches_total"), run.kernels.len() as u64);
        self.observe_seconds(&format!("{prefix}_run_seconds"), run.simulated_seconds);
        self.record_profile(prefix, &run.profile);
    }

    /// Record the recovery layer's decisions for one robust run: faults
    /// injected/detected (checksum failures), per-block retries,
    /// pipeline fallbacks, unrecovered faults, and hedge launches/wins.
    pub fn record_recovery(&mut self, prefix: &str, counters: &RecoveryCounters) {
        self.inc(&format!("{prefix}_faults_injected_total"), counters.faults_injected);
        self.inc(&format!("{prefix}_faults_detected_total"), counters.faults_detected);
        self.inc(&format!("{prefix}_blocks_retried_total"), counters.blocks_retried);
        self.inc(&format!("{prefix}_retries_total"), counters.retries);
        self.inc(&format!("{prefix}_fallbacks_total"), counters.fallbacks);
        self.inc(&format!("{prefix}_unrecovered_total"), counters.unrecovered);
        self.inc(&format!("{prefix}_hedges_launched_total"), counters.hedges_launched);
        self.inc(&format!("{prefix}_hedges_won_total"), counters.hedges_won);
    }

    /// Freeze the registry into a bit-stable [`MetricsSnapshot`]:
    /// metrics sorted by name, histograms reduced to their sparse bucket
    /// vectors plus derived count/sum/min/max and p50/p99/p999.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut metrics: Vec<MetricSnapshot> = self
            .metrics
            .iter()
            .map(|(name, m)| MetricSnapshot {
                name: name.clone(),
                value: match m {
                    Metric::Counter(c) => MetricValue::Counter(*c),
                    Metric::Gauge(g) => MetricValue::Gauge(*g),
                    Metric::Histogram(h) => MetricValue::Histogram(h.clone().into()),
                },
            })
            .collect();
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_coexist() {
        let mut r = MetricsRegistry::new();
        r.inc("jobs_total", 2);
        r.inc("jobs_total", 1);
        r.set_gauge("queue_depth", 4.0);
        r.set_gauge("queue_depth", 2.0);
        r.observe("latency", 100);
        r.observe("latency", 300);
        assert_eq!(r.counter("jobs_total"), Some(3));
        assert_eq!(r.histogram("latency").unwrap().count(), 2);
        assert_eq!(r.len(), 3);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 3);
        // Snapshots sort by name regardless of registration order.
        assert_eq!(snap.metrics[0].name, "jobs_total");
        assert_eq!(snap.metrics[1].name, "latency");
        assert_eq!(snap.metrics[2].name, "queue_depth");
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_confusion_panics() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("x", 1.0);
        r.inc("x", 1);
    }

    #[test]
    fn record_sort_run_captures_profile_and_latency() {
        let cfg = crate::sort::SortConfig::with_params(crate::params::SortParams::new(5, 32));
        let input = crate::inputs::InputSpec::UniformRandom { seed: 3 }.generate(32 * 5 * 2);
        let run = crate::sort::simulate_sort(&input, crate::sort::SortAlgorithm::CfMerge, &cfg);
        let mut r = MetricsRegistry::new();
        r.record_sort_run("sim_cf_merge", &run);
        assert_eq!(r.counter("sim_cf_merge_runs_total"), Some(1));
        assert_eq!(r.counter("sim_cf_merge_elements_total"), Some(run.n as u64));
        // CF-Merge's gather phase is conflict-free by construction.
        assert_eq!(r.counter("sim_cf_merge_phase_gather_bank_conflicts"), Some(0));
        let lat = r.histogram("sim_cf_merge_run_seconds").unwrap();
        assert_eq!(lat.count(), 1);
        assert_eq!(lat.sum(), (run.simulated_seconds * 1e9).round() as u64);
    }

    #[test]
    fn record_recovery_sums_counters() {
        let mut r = MetricsRegistry::new();
        let c = RecoveryCounters { retries: 2, fallbacks: 1, ..RecoveryCounters::default() };
        r.record_recovery("service", &c);
        r.record_recovery("service", &c);
        assert_eq!(r.counter("service_retries_total"), Some(4));
        assert_eq!(r.counter("service_fallbacks_total"), Some(2));
    }
}
