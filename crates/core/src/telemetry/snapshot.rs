//! Frozen, bit-stable views of a [`MetricsRegistry`]: JSON
//! round-tripping for `RunArtifact` embedding and the Prometheus text
//! exposition export.
//!
//! Determinism contract: a snapshot is a pure function of the observed
//! values — metrics sort by name, histogram buckets are sparse
//! `(index, count)` pairs over *fixed* boundaries, and every number
//! survives the JSON round trip exactly (counts are integers; gauges are
//! the recorded `f64`s). Two runs with the same seed and config
//! therefore serialize byte-identically on every platform.
//!
//! [`MetricsRegistry`]: crate::telemetry::MetricsRegistry

use crate::telemetry::histogram::LogHistogram;
use cfmerge_json::{FromJson, Json, JsonError, ToJson};

/// Frozen histogram state: sparse buckets plus derived statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (ns for `*_seconds` metrics).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Median (bucket upper bound; see [`LogHistogram::quantile`]).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Sparse `(bucket index, count)` pairs, ascending in index.
    pub buckets: Vec<(u32, u64)>,
}

impl From<LogHistogram> for HistogramSnapshot {
    fn from(h: LogHistogram) -> Self {
        Self {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(0.50),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            buckets: h.buckets().to_vec(),
        }
    }
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            ("min", Json::from(self.min)),
            ("max", Json::from(self.max)),
            ("p50", Json::from(self.p50)),
            ("p99", Json::from(self.p99)),
            ("p999", Json::from(self.p999)),
            (
                "buckets",
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(i, c)| Json::Arr(vec![Json::from(i), Json::from(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for HistogramSnapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let buckets = v
            .req("buckets")?
            .as_arr()
            .ok_or_else(|| JsonError::new("expected bucket array"))?
            .iter()
            .map(|pair| {
                let pair =
                    pair.as_arr().ok_or_else(|| JsonError::new("expected [index, count] pair"))?;
                match pair {
                    [i, c] => Ok((
                        i.as_u64().ok_or_else(|| JsonError::new("bad bucket index"))? as u32,
                        c.as_u64().ok_or_else(|| JsonError::new("bad bucket count"))?,
                    )),
                    _ => Err(JsonError::new("expected [index, count] pair")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            count: v.field("count")?,
            sum: v.field("sum")?,
            min: v.field("min")?,
            max: v.field("max")?,
            p50: v.field("p50")?,
            p99: v.field("p99")?,
            p999: v.field("p999")?,
            buckets,
        })
    }
}

/// Frozen value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Last recorded level.
    Gauge(f64),
    /// Distribution with percentiles.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The exposition-format kind label (`counter` / `gauge` /
    /// `histogram`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name (free-form `snake_case`).
    pub name: String,
    /// Its frozen value.
    pub value: MetricValue,
}

impl ToJson for MetricSnapshot {
    fn to_json(&self) -> Json {
        let mut pairs =
            vec![("name", Json::from(self.name.as_str())), ("kind", Json::from(self.value.kind()))];
        match &self.value {
            MetricValue::Counter(c) => pairs.push(("value", Json::from(*c))),
            MetricValue::Gauge(g) => pairs.push(("value", Json::from(*g))),
            MetricValue::Histogram(h) => pairs.push(("histogram", h.to_json())),
        }
        Json::obj(pairs)
    }
}

impl FromJson for MetricSnapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name: String = v.field("name")?;
        let kind: String = v.field("kind")?;
        let value = match kind.as_str() {
            "counter" => MetricValue::Counter(v.field("value")?),
            "gauge" => MetricValue::Gauge(v.field("value")?),
            "histogram" => MetricValue::Histogram(v.field("histogram")?),
            other => return Err(JsonError::new(format!("unknown metric kind {other:?}"))),
        };
        Ok(Self { name, value })
    }
}

/// A full frozen registry: every metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Metrics in ascending name order.
    pub metrics: Vec<MetricSnapshot>,
}

impl MetricsSnapshot {
    /// Look up a metric by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|m| m.name == name).map(|m| &m.value)
    }

    /// Look up a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// A copy with `prefix` prepended to every metric name (used to
    /// combine several registries — e.g. one per service scenario — into
    /// one artifact without collisions). Re-sorts by the new names.
    #[must_use]
    pub fn with_prefix(&self, prefix: &str) -> MetricsSnapshot {
        let mut metrics: Vec<MetricSnapshot> = self
            .metrics
            .iter()
            .map(|m| MetricSnapshot { name: format!("{prefix}{}", m.name), value: m.value.clone() })
            .collect();
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { metrics }
    }

    /// Combine with `other` into one snapshot sorted by name. Duplicate
    /// names keep `other`'s entry (last writer wins); prefix snapshots
    /// with [`Self::with_prefix`] to avoid collisions altogether.
    #[must_use]
    pub fn merged(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut metrics: Vec<MetricSnapshot> = other.metrics.clone();
        for m in &self.metrics {
            if !metrics.iter().any(|n| n.name == m.name) {
                metrics.push(m.clone());
            }
        }
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { metrics }
    }

    /// Render in the Prometheus text exposition format: `# TYPE` lines,
    /// sanitized `cfmerge_`-prefixed names, cumulative `_bucket{le=…}`
    /// series plus `_sum`/`_count` for histograms. Histogram bounds are
    /// converted from modeled ns back to seconds, matching the
    /// convention that histogram metrics record durations.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let name = format!("cfmerge_{}", sanitize(&m.name));
            out.push_str(&format!("# TYPE {name} {}\n", m.value.kind()));
            match &m.value {
                MetricValue::Counter(c) => out.push_str(&format!("{name} {c}\n")),
                MetricValue::Gauge(g) => out.push_str(&format!("{name} {g}\n")),
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for &(idx, n) in &h.buckets {
                        cum += n;
                        let le = LogHistogram::bucket_upper_bound(idx) as f64 / 1e9;
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    out.push_str(&format!("{name}_sum {}\n", h.sum as f64 / 1e9));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                }
            }
        }
        out
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([("metrics", self.metrics.to_json())])
    }
}

impl FromJson for MetricsSnapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self { metrics: v.field("metrics")? })
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; everything else
/// becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MetricsRegistry;

    fn sample() -> MetricsSnapshot {
        let mut r = MetricsRegistry::new();
        r.inc("jobs_total", 7);
        r.set_gauge("queue_depth", 3.5);
        r.observe_seconds("job_latency_seconds", 1.5e-6);
        r.observe_seconds("job_latency_seconds", 2.5e-6);
        r.observe_seconds("job_latency_seconds", 4.0e-3);
        r.snapshot()
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = sample();
        let text = snap.to_json().to_string_pretty();
        let back = MetricsSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        // And the re-serialization is byte-identical.
        assert_eq!(back.to_json().to_string_pretty(), text);
    }

    #[test]
    fn histogram_snapshot_reports_percentiles() {
        let snap = sample();
        let h = snap.histogram("job_latency_seconds").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1500);
        assert_eq!(h.max, 4_000_000);
        assert!(h.p50 >= 2500 && h.p50 < 4_000_000, "p50 = {}", h.p50);
        assert_eq!(h.p999, 4_000_000);
    }

    #[test]
    fn prometheus_exposition_is_wellformed() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE cfmerge_jobs_total counter"));
        assert!(text.contains("cfmerge_jobs_total 7"));
        assert!(text.contains("# TYPE cfmerge_queue_depth gauge"));
        assert!(text.contains("cfmerge_queue_depth 3.5"));
        assert!(text.contains("# TYPE cfmerge_job_latency_seconds histogram"));
        assert!(text.contains("cfmerge_job_latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("cfmerge_job_latency_seconds_count 3"));
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn prefix_and_merge_combine_disjoint_snapshots() {
        let snap = sample();
        let a = snap.with_prefix("storm_");
        let b = snap.with_prefix("overflow_");
        let merged = a.merged(&b);
        assert_eq!(merged.metrics.len(), a.metrics.len() + b.metrics.len());
        assert!(merged.get("storm_jobs_total").is_some());
        assert!(merged.get("overflow_jobs_total").is_some());
        // Sorted by name.
        for pair in merged.metrics.windows(2) {
            assert!(pair[0].name < pair[1].name);
        }
    }

    #[test]
    fn sanitize_rewrites_illegal_chars() {
        assert_eq!(sanitize("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize("ok_name:x9"), "ok_name:x9");
    }
}
