//! Verified recovery and graceful degradation for the sort pipelines,
//! plus the batch [`SortService`] front-end.
//!
//! [`simulate_sort_robust`] runs the same pipeline as
//! [`crate::sort::pipeline::simulate_sort`] but verifies every block's
//! output (sortedness + multiset checksum, see [`crate::verify`]) and
//! recovers from failures at block granularity:
//!
//! 1. **Retry**: a block whose output fails verification is re-executed
//!    up to [`RobustConfig::max_retries`] times. Each retry is priced in
//!    the timing model (the failed execution's profile becomes an extra
//!    launch) plus exponential backoff
//!    (`retry_backoff_s · 2^(r−1)` for retry `r`).
//! 2. **Fallback**: a block that keeps failing — or a configuration that
//!    cannot launch at all — degrades to the Thrust-style pipeline
//!    (substituting Thrust's shipped `(E, u)` when the requested shape is
//!    unlaunchable). Every degradation is reported in the
//!    [`RecoveryReport`]; nothing degrades silently.
//! 3. **Typed failure**: a fault that survives both retries and fallback
//!    (a [`Persistence::Permanent`](cfmerge_gpu_sim::fault::Persistence)
//!    site) surfaces as
//!    [`SortError::UnrecoverableFault`] — never as silently corrupt
//!    output.
//!
//! With an empty [`FaultPlan`] the robust driver produces bit-identical
//! output, profile, and modeled seconds to the plain pipeline (one clean
//! execution per block, verification passes first try).
//!
//! See `docs/ROBUSTNESS.md` for the full design.

use crate::params::SortParams;
use crate::resilience::checkpoint::{CheckpointPolicy, SortCheckpoint};
use crate::resilience::hedge::{HedgeConfig, HedgeCounters};
use crate::sort::blocksort::{blocksort_block_faulty, MergeStrategy};
use crate::sort::error::{validate_sort_config, Degradation, SortError};
use crate::sort::key::SortKey;
use crate::sort::merge_pass::{merge_pass_block_faulty, MergeChunkJob};
use crate::sort::pipeline::{KernelReport, SortAlgorithm, SortConfig, SortRun};
use crate::verify::{multiset_checksum, verify_sorted_checksum, VerifyFailure};
use cfmerge_gpu_sim::check::NoCheck;
use cfmerge_gpu_sim::fault::{BlockFaults, FaultInjector, FaultPlan, InjectionRecord};
use cfmerge_gpu_sim::profiler::{KernelProfile, PhaseClass};
use cfmerge_gpu_sim::trace::NullTracer;
use cfmerge_json::{FromJson, Json, JsonError, ToJson};
use cfmerge_mergepath::diagonal::merge_path_steps;
use cfmerge_mergepath::partition::partition_merge;
use rayon::prelude::*;

// The batch service moved to `crate::resilience::service` when it grew
// admission control, retry budgets, and circuit breakers; re-exported
// here so existing `recovery::SortService` paths keep working.
pub use crate::resilience::service::{aggregate_counters, JobId, JobOutcome, SortService};

/// Configuration of the robust driver: the underlying sort configuration
/// plus the recovery policy.
#[derive(Debug, Clone)]
pub struct RobustConfig {
    /// The sort configuration (parameters, device, timing model).
    pub base: SortConfig,
    /// Re-executions permitted per block before the driver gives up on
    /// retrying (0 = verify once, never retry).
    pub max_retries: u32,
    /// Backoff charged before retry `r` (1-based): `retry_backoff_s ·
    /// 2^(r−1)` modeled seconds.
    pub retry_backoff_s: f64,
    /// Whether the driver may degrade to the fallback pipeline when
    /// retries are exhausted or the requested configuration cannot
    /// launch. With `false`, those cases are typed errors.
    pub allow_fallback: bool,
    /// Straggler-hedging policy (disabled by default — fault-free runs
    /// stay bit-identical either way, because a launch with no latency
    /// spikes has no stragglers).
    pub hedge: HedgeConfig,
}

impl RobustConfig {
    /// Default policy around a sort configuration: 2 retries, 1 µs base
    /// backoff, fallback permitted, hedging off.
    #[must_use]
    pub fn new(base: SortConfig) -> Self {
        Self {
            base,
            max_retries: 2,
            retry_backoff_s: 1e-6,
            allow_fallback: true,
            hedge: HedgeConfig::default(),
        }
    }
}

/// Scalar recovery counters, designed to fold into run artifacts so CI
/// can assert "N faults injected, N detected, N recovered".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Fault injections that actually fired (all kinds, spikes included).
    pub faults_injected: u64,
    /// Block verification failures observed (each failed attempt counts).
    pub faults_detected: u64,
    /// Distinct block executions that needed at least one retry.
    pub blocks_retried: u64,
    /// Total extra block executions (failed attempts that were re-run).
    pub retries: u64,
    /// Pipeline-level fallbacks taken.
    pub fallbacks: u64,
    /// Jobs that ended in [`SortError::UnrecoverableFault`] (only nonzero
    /// in service-level aggregates — a run that returns `Ok` recovered
    /// everything it detected).
    pub unrecovered: u64,
    /// Hedged duplicate executions launched for straggling blocks.
    pub hedges_launched: u64,
    /// Hedges whose duplicate beat the straggler.
    pub hedges_won: u64,
}

impl RecoveryCounters {
    /// Fold `other` into `self` field by field.
    pub fn merge(&mut self, other: &RecoveryCounters) {
        self.faults_injected += other.faults_injected;
        self.faults_detected += other.faults_detected;
        self.blocks_retried += other.blocks_retried;
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.unrecovered += other.unrecovered;
        self.hedges_launched += other.hedges_launched;
        self.hedges_won += other.hedges_won;
    }
}

impl ToJson for RecoveryCounters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("faults_injected", Json::from(self.faults_injected)),
            ("faults_detected", Json::from(self.faults_detected)),
            ("blocks_retried", Json::from(self.blocks_retried)),
            ("retries", Json::from(self.retries)),
            ("fallbacks", Json::from(self.fallbacks)),
            ("unrecovered", Json::from(self.unrecovered)),
            ("hedges_launched", Json::from(self.hedges_launched)),
            ("hedges_won", Json::from(self.hedges_won)),
        ])
    }
}

impl FromJson for RecoveryCounters {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            faults_injected: v.field("faults_injected")?,
            faults_detected: v.field("faults_detected")?,
            blocks_retried: v.field("blocks_retried")?,
            retries: v.field("retries")?,
            fallbacks: v.field("fallbacks")?,
            unrecovered: v.field("unrecovered")?,
            // The hedge counters postdate the original schema; absent in
            // pre-resilience artifacts.
            hedges_launched: v.field_opt("hedges_launched")?.unwrap_or(0),
            hedges_won: v.field_opt("hedges_won")?.unwrap_or(0),
        })
    }
}

/// One verification failure the driver observed, located to the launch,
/// block, and attempt that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionRecord {
    /// Kernel launch name (`blocksort`, `merge-pass-0`, `output-verify`).
    pub kernel: String,
    /// Block index within the launch.
    pub block: usize,
    /// Execution attempt that failed (0 = first try).
    pub attempt: u32,
    /// What the verifier saw.
    pub failure: VerifyFailure,
}

impl std::fmt::Display for DetectionRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} block {} attempt {}: {}", self.kernel, self.block, self.attempt, self.failure)
    }
}

impl ToJson for DetectionRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kernel", Json::from(self.kernel.as_str())),
            ("block", Json::from(self.block)),
            ("attempt", Json::from(self.attempt)),
            ("failure", Json::from(self.failure.to_string().as_str())),
        ])
    }
}

/// Full forensic record of a robust run: what fired, what was caught,
/// what it cost, and how the driver compromised (if it did).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Scalar counters (artifact-friendly).
    pub counters: RecoveryCounters,
    /// Every fault injection that fired, in launch/block order.
    pub injections: Vec<InjectionRecord>,
    /// Every verification failure observed.
    pub detections: Vec<DetectionRecord>,
    /// Every degradation taken (empty = the requested pipeline ran as
    /// asked).
    pub degradations: Vec<Degradation>,
    /// Modeled seconds of exponential backoff charged before retries.
    pub backoff_seconds: f64,
    /// Modeled seconds spent re-executing failed blocks.
    pub retry_seconds: f64,
    /// Modeled seconds of injected latency spikes (after hedge wins
    /// replaced straggler latencies).
    pub spike_seconds: f64,
    /// What straggler hedging did (zeroed when hedging is disabled or
    /// nothing straggled).
    pub hedges: HedgeCounters,
}

impl RecoveryReport {
    /// `true` when nothing fired, nothing failed verification, and
    /// nothing degraded: the run was indistinguishable from a plain one.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.injections.is_empty() && self.detections.is_empty() && self.degradations.is_empty()
    }
}

impl ToJson for RecoveryReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("counters", self.counters.to_json()),
            ("injections", Json::arr(self.injections.iter().map(ToJson::to_json))),
            ("detections", Json::arr(self.detections.iter().map(ToJson::to_json))),
            ("degradations", Json::arr(self.degradations.iter().map(ToJson::to_json))),
            ("backoff_seconds", Json::from(self.backoff_seconds)),
            ("retry_seconds", Json::from(self.retry_seconds)),
            ("spike_seconds", Json::from(self.spike_seconds)),
            ("hedges", self.hedges.to_json()),
        ])
    }
}

/// A sort that completed under the robust driver: the run itself, the
/// pipeline that actually produced it, and the recovery forensics.
#[derive(Debug, Clone)]
pub struct RobustSortRun<K = u32> {
    /// Output, profile, per-launch reports, modeled seconds
    /// (`simulated_seconds` includes retries, backoff, and spikes).
    pub run: SortRun<K>,
    /// The pipeline that produced the output (differs from the request
    /// after a fallback — and the report says why).
    pub algorithm: SortAlgorithm,
    /// What happened along the way.
    pub report: RecoveryReport,
}

/// Blocks per kernel launch for a sort of `n` keys at `params` — the
/// shape [`FaultPlan::generate`] needs. Launch 0 is the block sort; each
/// of the `log₂(runs)` merge passes launches the same number of blocks.
#[must_use]
pub fn pipeline_shape(n: usize, params: &SortParams) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let runs = n.div_ceil(params.tile()).next_power_of_two();
    vec![runs as u64; 1 + runs.trailing_zeros() as usize]
}

fn strategy_of(algo: SortAlgorithm) -> MergeStrategy {
    match algo {
        SortAlgorithm::ThrustMergesort => MergeStrategy::DirectSerial,
        SortAlgorithm::CfMerge => MergeStrategy::Gather,
    }
}

/// Outcome of one block's execute-verify-retry loop.
struct BlockExec {
    /// Profile of the successful (or last) attempt.
    profile: KernelProfile,
    /// Merged profiles of every failed attempt that was re-run.
    retry_profile: KernelProfile,
    /// Total executions (1 = verified first try).
    executions: u32,
    /// Latency-spike cycles accumulated across all attempts.
    spike_cycles: u64,
    injections: Vec<InjectionRecord>,
    detections: Vec<DetectionRecord>,
    /// `Some` when the last permitted attempt still failed verification.
    failure: Option<VerifyFailure>,
    /// Hedged duplicate executions launched for this block.
    hedges: u32,
    /// Hedges that beat the straggler (their latency was taken).
    hedge_wins: u32,
    /// Straggler spike cycles avoided by winning hedges.
    hedge_cycles_saved: u64,
    /// Merged profiles of every hedged duplicate (priced as an auxiliary
    /// launch in `settle_kernel`).
    hedge_profile: KernelProfile,
}

/// Execute-verify loop for one block: `attempt_fn` runs the kernel under
/// the given injector and returns its profile, the spent injector, and
/// the verification verdict on what it wrote.
fn recover_block(
    kernel_idx: u32,
    kernel_name: &str,
    block_idx: usize,
    plan: &FaultPlan,
    fallback: bool,
    max_retries: u32,
    mut attempt_fn: impl FnMut(BlockFaults) -> (KernelProfile, BlockFaults, Result<(), VerifyFailure>),
) -> BlockExec {
    let mut out = BlockExec {
        profile: KernelProfile::new(),
        retry_profile: KernelProfile::new(),
        executions: 0,
        spike_cycles: 0,
        injections: Vec::new(),
        detections: Vec::new(),
        failure: None,
        hedges: 0,
        hedge_wins: 0,
        hedge_cycles_saved: 0,
        hedge_profile: KernelProfile::new(),
    };
    for attempt in 0..=max_retries {
        let injector = plan.block_faults(kernel_idx, block_idx as u32, attempt, fallback);
        let (profile, injector, verdict) = attempt_fn(injector);
        out.executions = attempt + 1;
        out.spike_cycles += injector.spike_cycles();
        out.injections.extend(injector.into_records());
        match verdict {
            Ok(()) => {
                out.profile = profile;
                out.failure = None;
                return out;
            }
            Err(failure) => {
                out.detections.push(DetectionRecord {
                    kernel: kernel_name.to_string(),
                    block: block_idx,
                    attempt,
                    failure,
                });
                out.retry_profile.merge(&profile);
                out.failure = Some(failure);
            }
        }
    }
    out
}

/// A block that exhausted its retries — the trigger for fallback (or,
/// failing that, [`SortError::UnrecoverableFault`]).
struct BlockFailure {
    kernel: String,
    block: usize,
    attempts: u32,
    failure: VerifyFailure,
}

impl BlockFailure {
    fn into_error(self) -> SortError {
        SortError::UnrecoverableFault {
            kernel: self.kernel,
            block: self.block,
            attempts: self.attempts,
            failure: self.failure,
        }
    }
}

/// Cross-run accumulator (survives a fallback restart).
#[derive(Default)]
struct RunStats {
    counters: RecoveryCounters,
    injections: Vec<InjectionRecord>,
    detections: Vec<DetectionRecord>,
    backoff_seconds: f64,
    retry_seconds: f64,
    spike_seconds: f64,
    hedges: HedgeCounters,
}

/// Outcome of one hedged duplicate execution, applied to its straggler's
/// [`BlockExec`] before the launch settles.
///
/// A winning hedge (verified output, fewer spike cycles than the
/// straggler accumulated) replaces the block's latency contribution; the
/// output bytes need no replacing, because a verified duplicate *is* the
/// unique sorted permutation the straggler already produced. A losing or
/// corrupted hedge is discarded — its injections are still recorded, but
/// a failed duplicate is not a detection against the primary result.
fn apply_hedge(
    ex: &mut BlockExec,
    profile: KernelProfile,
    injector: BlockFaults,
    verdict: Result<(), VerifyFailure>,
) {
    let hedge_spikes = injector.spike_cycles();
    ex.hedges += 1;
    ex.hedge_profile.merge(&profile);
    ex.injections.extend(injector.into_records());
    if verdict.is_ok() && hedge_spikes < ex.spike_cycles {
        ex.hedge_wins += 1;
        ex.hedge_cycles_saved += ex.spike_cycles - hedge_spikes;
        ex.spike_cycles = hedge_spikes;
    }
}

/// Fold one kernel's per-block outcomes into the stats, price the launch
/// (main profile as one launch; retries as an extra launch; spikes at the
/// device clock; backoff as configured), and surface the first
/// unrecovered block if any.
///
/// Returns the kernel report plus the extra modeled seconds beyond the
/// main launch.
fn settle_kernel(
    cfg: &SortConfig,
    rcfg: &RobustConfig,
    name: &str,
    blocks: u64,
    base_profile: KernelProfile,
    execs: Vec<BlockExec>,
    stats: &mut RunStats,
) -> Result<(KernelReport, f64, Option<BlockFailure>), SortError> {
    let mut profile = base_profile;
    let mut retry_profile = KernelProfile::new();
    let mut retried_execs = 0u64;
    let mut spike_cycles = 0u64;
    let mut backoff = 0.0f64;
    let mut failure: Option<BlockFailure> = None;
    let mut hedge_profile = KernelProfile::new();
    let mut hedged_execs = 0u64;
    for (block, mut ex) in execs.into_iter().enumerate() {
        profile.merge(&ex.profile);
        retry_profile.merge(&ex.retry_profile);
        stats.counters.faults_injected += ex.injections.len() as u64;
        stats.counters.faults_detected += ex.detections.len() as u64;
        stats.injections.append(&mut ex.injections);
        stats.detections.append(&mut ex.detections);
        hedge_profile.merge(&ex.hedge_profile);
        hedged_execs += u64::from(ex.hedges);
        stats.counters.hedges_launched += u64::from(ex.hedges);
        stats.counters.hedges_won += u64::from(ex.hedge_wins);
        stats.hedges.launched += u64::from(ex.hedges);
        stats.hedges.won += u64::from(ex.hedge_wins);
        stats.hedges.cycles_saved += ex.hedge_cycles_saved;
        if ex.executions > 1 {
            let retries = u64::from(ex.executions - 1);
            stats.counters.blocks_retried += 1;
            stats.counters.retries += retries;
            retried_execs += retries;
            // Σ_{r=1..retries} backoff · 2^(r−1) = backoff · (2^retries − 1).
            backoff += rcfg.retry_backoff_s * (2f64.powi(retries as i32) - 1.0);
        }
        spike_cycles += ex.spike_cycles;
        if failure.is_none() {
            if let Some(f) = ex.failure {
                failure = Some(BlockFailure {
                    kernel: name.to_string(),
                    block,
                    attempts: ex.executions,
                    failure: f,
                });
            }
        }
    }
    let unlaunchable = |why| SortError::Unlaunchable { device: cfg.device.name.clone(), why };
    let time = cfg
        .timing
        .kernel_time(&cfg.device, &profile.total(), &cfg.launch(blocks))
        .map_err(unlaunchable)?;
    let mut extra = 0.0f64;
    if retried_execs > 0 {
        let rt = cfg
            .timing
            .kernel_time(&cfg.device, &retry_profile.total(), &cfg.launch(retried_execs))
            .map_err(unlaunchable)?;
        extra += rt.seconds;
        stats.retry_seconds += rt.seconds;
    }
    if hedged_execs > 0 {
        // Hedged duplicates are enqueued device-side while the primary
        // launch drains — priced in full minus the host launch overhead.
        let ht = cfg
            .timing
            .auxiliary_launch_time(&cfg.device, &hedge_profile.total(), &cfg.launch(hedged_execs))
            .map_err(unlaunchable)?;
        extra += ht.seconds;
        stats.hedges.hedge_seconds += ht.seconds;
    }
    let spike_s = spike_cycles as f64 / cfg.device.clock_hz;
    extra += spike_s;
    stats.spike_seconds += spike_s;
    extra += backoff;
    stats.backoff_seconds += backoff;
    Ok((KernelReport { name: name.to_string(), blocks, profile, time }, extra, failure))
}

/// Checkpoint control threaded through one pipeline execution: the
/// policy plus the checkpoints captured along the way.
struct CkptCtl {
    policy: CheckpointPolicy,
    taken: Vec<SortCheckpoint>,
}

impl CkptCtl {
    fn noop() -> Self {
        Self { policy: CheckpointPolicy::default(), taken: Vec::new() }
    }
}

/// One pipeline execution under the plan. `Ok(Err(_))` is a block that
/// stayed failed after retries (the fallback trigger); outer `Err` is a
/// configuration-level error (or a simulated kill, when `ckpt` asks for
/// one). With `resume`, the block sort and completed merge passes are
/// skipped and execution continues from the checkpoint's verified state
/// (the caller has already validated it).
#[allow(clippy::too_many_arguments)]
fn run_pipeline<K: SortKey>(
    input: &[K],
    algo: SortAlgorithm,
    cfg: &SortConfig,
    rcfg: &RobustConfig,
    plan: &FaultPlan,
    fallback: bool,
    stats: &mut RunStats,
    resume: Option<&SortCheckpoint>,
    ckpt: &mut CkptCtl,
) -> Result<Result<SortRun<K>, BlockFailure>, SortError> {
    let banks = cfg.device.bank_model();
    let strategy = strategy_of(algo);
    let (e, u) = (cfg.params.e, cfg.params.u);
    let tile = u * e;
    let n = if let Some(cp) = resume { cp.n } else { input.len() };
    if n == 0 {
        return Ok(Ok(SortRun {
            output: Vec::new(),
            profile: KernelProfile::new(),
            simulated_seconds: 0.0,
            kernels: Vec::new(),
            n: 0,
        }));
    }
    let track = !ckpt.policy.is_noop();

    let mut kernels: Vec<KernelReport> = Vec::new();
    let (
        n_pad,
        mut src,
        mut dst,
        input_checksum,
        padded_checksum,
        mut width,
        mut pass,
        mut seconds,
    );
    if let Some(cp) = resume {
        n_pad = cp.n_pad;
        src = cp.state_keys::<K>();
        dst = vec![K::default(); n_pad];
        input_checksum = cp.unpadded_input_checksum::<K>();
        padded_checksum = cp.input_checksum;
        width = cp.width;
        pass = cp.completed_passes;
        seconds = cp.seconds_so_far;
    } else {
        input_checksum = multiset_checksum(input);
        let runs = n.div_ceil(tile).next_power_of_two();
        n_pad = runs * tile;
        src = input.to_vec();
        src.resize(n_pad, K::MAX_SENTINEL);
        padded_checksum = if track { multiset_checksum(&src) } else { 0 };
        dst = vec![K::default(); n_pad];
        width = tile;
        pass = 0;
        seconds = 0.0;

        // ---- Block sort (launch 0) ----
        let mut execs: Vec<BlockExec> = src
            .par_chunks(tile)
            .zip(dst.par_chunks_mut(tile))
            .enumerate()
            .map(|(t, (s, d))| {
                let expect = multiset_checksum(s);
                recover_block(0, "blocksort", t, plan, fallback, rcfg.max_retries, |inj| {
                    let (profile, NullTracer, NoCheck, inj) = blocksort_block_faulty(
                        banks,
                        u,
                        e,
                        strategy,
                        s,
                        d,
                        t * tile,
                        cfg.count_accesses,
                        NullTracer,
                        NoCheck,
                        inj,
                    );
                    (profile, inj, verify_sorted_checksum(d, expect))
                })
            })
            .collect();
        // ---- Straggler hedging over the block-sort launch ----
        let latencies: Vec<u64> = execs.iter().map(|ex| ex.spike_cycles).collect();
        for i in rcfg.hedge.stragglers(&latencies) {
            if execs[i].failure.is_some() {
                continue; // about to trigger fallback; duplicating it is pointless
            }
            let s = &src[i * tile..(i + 1) * tile];
            let mut scratch = vec![K::default(); tile];
            let expect = multiset_checksum(s);
            let inj = plan.block_faults(0, i as u32, execs[i].executions, fallback);
            let (profile, NullTracer, NoCheck, inj) = blocksort_block_faulty(
                banks,
                u,
                e,
                strategy,
                s,
                &mut scratch,
                i * tile,
                cfg.count_accesses,
                NullTracer,
                NoCheck,
                inj,
            );
            let verdict = verify_sorted_checksum(&scratch, expect);
            apply_hedge(&mut execs[i], profile, inj, verdict);
        }
        let (report, extra, failed) =
            settle_kernel(cfg, rcfg, "blocksort", runs as u64, KernelProfile::new(), execs, stats)?;
        seconds += report.time.seconds + extra;
        kernels.push(report);
        if let Some(f) = failed {
            return Ok(Err(f));
        }
        std::mem::swap(&mut src, &mut dst);

        if track && (ckpt.policy.every_pass || ckpt.policy.kill_after_pass == Some(0)) {
            let cp = SortCheckpoint::capture(
                algo.label(),
                (e, u),
                n,
                tile,
                0,
                seconds,
                stats.counters,
                padded_checksum,
                &src,
            );
            if ckpt.policy.kill_after_pass == Some(0) {
                return Err(SortError::Interrupted { after_pass: 0, checkpoint: Box::new(cp) });
            }
            ckpt.taken.push(cp);
        }
    }

    // ---- Merge passes (launches 1..) ----
    while width < n_pad {
        let pair = 2 * width;
        let kernel_idx = 1 + pass as u32;
        let name = format!("merge-pass-{pass}");
        let mut jobs: Vec<MergeChunkJob> = Vec::with_capacity(n_pad / tile);
        let mut search_cost = KernelProfile::new();
        for pair_lo in (0..n_pad).step_by(pair) {
            let a = &src[pair_lo..pair_lo + width];
            let b = &src[pair_lo + width..pair_lo + pair];
            for c in partition_merge(a, b, tile) {
                jobs.push(MergeChunkJob {
                    a_begin: pair_lo + c.a_begin,
                    a_end: pair_lo + c.a_end,
                    b_begin: pair_lo + width + c.b_begin,
                    b_end: pair_lo + width + c.b_end,
                });
            }
            if cfg.count_accesses {
                let blocks_in_pair = (pair / tile) as u64;
                let steps = u64::from(merge_path_steps(pair / 2, width, width));
                let s = search_cost.phase_mut(PhaseClass::Search);
                s.global_ld_requests += blocks_in_pair * steps * 2;
                s.global_ld_sectors += blocks_in_pair * steps * 2;
                s.alu_ops += blocks_in_pair * steps * 6;
            }
        }
        let mut execs: Vec<BlockExec> = jobs
            .par_iter()
            .zip(dst.par_chunks_mut(tile))
            .enumerate()
            .map(|(bi, (job, chunk))| {
                // Checksum additivity: the block's expected checksum is
                // the sum of its two input ranges' checksums.
                let expect = multiset_checksum(&src[job.a_begin..job.a_end])
                    .wrapping_add(multiset_checksum(&src[job.b_begin..job.b_end]));
                recover_block(kernel_idx, &name, bi, plan, fallback, rcfg.max_retries, |inj| {
                    let (profile, NullTracer, NoCheck, inj) = merge_pass_block_faulty(
                        banks,
                        u,
                        e,
                        strategy,
                        &src,
                        *job,
                        chunk,
                        cfg.count_accesses,
                        NullTracer,
                        NoCheck,
                        inj,
                    );
                    (profile, inj, verify_sorted_checksum(chunk, expect))
                })
            })
            .collect();
        // ---- Straggler hedging over this merge launch ----
        let latencies: Vec<u64> = execs.iter().map(|ex| ex.spike_cycles).collect();
        for bi in rcfg.hedge.stragglers(&latencies) {
            if execs[bi].failure.is_some() {
                continue;
            }
            let job = jobs[bi];
            let mut scratch = vec![K::default(); tile];
            let expect = multiset_checksum(&src[job.a_begin..job.a_end])
                .wrapping_add(multiset_checksum(&src[job.b_begin..job.b_end]));
            let inj = plan.block_faults(kernel_idx, bi as u32, execs[bi].executions, fallback);
            let (profile, NullTracer, NoCheck, inj) = merge_pass_block_faulty(
                banks,
                u,
                e,
                strategy,
                &src,
                job,
                &mut scratch,
                cfg.count_accesses,
                NullTracer,
                NoCheck,
                inj,
            );
            let verdict = verify_sorted_checksum(&scratch, expect);
            apply_hedge(&mut execs[bi], profile, inj, verdict);
        }
        let blocks = jobs.len() as u64;
        let (report, extra, failed) =
            settle_kernel(cfg, rcfg, &name, blocks, search_cost, execs, stats)?;
        seconds += report.time.seconds + extra;
        kernels.push(report);
        if let Some(f) = failed {
            return Ok(Err(f));
        }
        std::mem::swap(&mut src, &mut dst);
        width = pair;
        pass += 1;

        if track && (ckpt.policy.every_pass || ckpt.policy.kill_after_pass == Some(pass)) {
            let cp = SortCheckpoint::capture(
                algo.label(),
                (e, u),
                n,
                width,
                pass,
                seconds,
                stats.counters,
                padded_checksum,
                &src,
            );
            if ckpt.policy.kill_after_pass == Some(pass) {
                return Err(SortError::Interrupted { after_pass: pass, checkpoint: Box::new(cp) });
            }
            ckpt.taken.push(cp);
        }
    }

    src.truncate(n);
    // Defense in depth: the whole output against the whole input. Block
    // verification should make this unreachable; if it ever fires, the
    // run is treated exactly like a failed block (fallback, then typed
    // error) — never returned as a success.
    if let Err(failure) = verify_sorted_checksum(&src, input_checksum) {
        stats.counters.faults_detected += 1;
        stats.detections.push(DetectionRecord {
            kernel: "output-verify".into(),
            block: 0,
            attempt: 0,
            failure,
        });
        return Ok(Err(BlockFailure {
            kernel: "output-verify".into(),
            block: 0,
            attempts: 1,
            failure,
        }));
    }

    let mut profile = KernelProfile::new();
    for k in &kernels {
        profile.merge(&k.profile);
    }
    Ok(Ok(SortRun { output: src, profile, simulated_seconds: seconds, kernels, n }))
}

/// Sort under fault injection with verified, block-granular recovery.
///
/// Every block's output is verified (sorted + multiset checksum of its
/// input ranges); failed blocks are re-executed up to
/// [`RobustConfig::max_retries`] times with priced retries and backoff;
/// persistent failures degrade to the Thrust pipeline when
/// [`RobustConfig::allow_fallback`] permits. The returned
/// [`RecoveryReport`] records every injection, detection, and
/// degradation. Faults that survive everything come back as
/// [`SortError::UnrecoverableFault`] — a successful return is always a
/// verified sorted permutation of the input.
///
/// Pass [`FaultPlan::none()`] for a production (no-injection) run: the
/// result is bit-identical to [`crate::sort::pipeline::simulate_sort`],
/// with verification as pure insurance.
pub fn simulate_sort_robust<K: SortKey>(
    input: &[K],
    algo: SortAlgorithm,
    config: &RobustConfig,
    plan: &FaultPlan,
) -> Result<RobustSortRun<K>, SortError> {
    simulate_sort_robust_inner(input, algo, config, plan, &mut CkptCtl::noop())
}

/// [`simulate_sort_robust`] with checkpoint capture: returns the run
/// plus the checkpoints taken under `policy`. A
/// [`CheckpointPolicy::kill_after`] policy instead interrupts the run
/// with [`SortError::Interrupted`] carrying the checkpoint — the modeled
/// equivalent of killing the process mid-sort. If the primary pipeline
/// degrades to the fallback, checkpoints restart with the fallback run
/// (the primary's partial state is junk once abandoned).
///
/// # Errors
/// Same contract as [`simulate_sort_robust`], plus
/// [`SortError::Interrupted`] when the policy kills the run.
pub fn simulate_sort_robust_checkpointed<K: SortKey>(
    input: &[K],
    algo: SortAlgorithm,
    config: &RobustConfig,
    plan: &FaultPlan,
    policy: CheckpointPolicy,
) -> Result<(RobustSortRun<K>, Vec<SortCheckpoint>), SortError> {
    let mut ctl = CkptCtl { policy, taken: Vec::new() };
    let run = simulate_sort_robust_inner(input, algo, config, plan, &mut ctl)?;
    Ok((run, ctl.taken))
}

fn simulate_sort_robust_inner<K: SortKey>(
    input: &[K],
    algo: SortAlgorithm,
    config: &RobustConfig,
    plan: &FaultPlan,
    ckpt: &mut CkptCtl,
) -> Result<RobustSortRun<K>, SortError> {
    let mut stats = RunStats::default();
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut cfg = config.base.clone();
    let mut algo_used = algo;

    match validate_sort_config(&cfg) {
        Ok(()) => {}
        Err(SortError::Unlaunchable { device, why }) if config.allow_fallback => {
            let sub = SortParams::known_good_default();
            degradations.push(Degradation::ParamsSubstituted {
                from: (cfg.params.e, cfg.params.u),
                to: (sub.e, sub.u),
            });
            degradations.push(Degradation::Fallback {
                from: algo_used,
                to: SortAlgorithm::ThrustMergesort,
                reason: format!("requested configuration cannot launch on {device}: {why}"),
            });
            stats.counters.fallbacks += 1;
            cfg.params = sub;
            algo_used = SortAlgorithm::ThrustMergesort;
            validate_sort_config(&cfg)?;
        }
        Err(e) => return Err(e),
    }

    let first = run_pipeline(input, algo_used, &cfg, config, plan, false, &mut stats, None, ckpt)?;
    let run = match first {
        Ok(run) => run,
        Err(block_failure) if config.allow_fallback => {
            degradations.push(Degradation::Fallback {
                from: algo_used,
                to: SortAlgorithm::ThrustMergesort,
                reason: format!(
                    "{} block {} failed verification after {} attempts",
                    block_failure.kernel, block_failure.block, block_failure.attempts
                ),
            });
            stats.counters.fallbacks += 1;
            algo_used = SortAlgorithm::ThrustMergesort;
            ckpt.taken.clear(); // primary checkpoints are void once abandoned
            match run_pipeline(input, algo_used, &cfg, config, plan, true, &mut stats, None, ckpt)?
            {
                Ok(run) => run,
                Err(f) => return Err(f.into_error()),
            }
        }
        Err(block_failure) => return Err(block_failure.into_error()),
    };

    Ok(RobustSortRun {
        run,
        algorithm: algo_used,
        report: RecoveryReport {
            counters: stats.counters,
            injections: stats.injections,
            detections: stats.detections,
            degradations,
            backoff_seconds: stats.backoff_seconds,
            retry_seconds: stats.retry_seconds,
            spike_seconds: stats.spike_seconds,
            hedges: stats.hedges,
        },
    })
}

/// Resume a sort from a [`SortCheckpoint`], skipping the block sort and
/// every completed merge pass.
///
/// The checkpoint is validated first — version, structural shape, every
/// run sorted, every block checksum matching
/// ([`SortCheckpoint::validate_as`]) — so work is only skipped when the
/// saved state is provably the verified state the original run produced.
/// The resumed run's `simulated_seconds` includes the checkpoint's
/// `seconds_so_far`, and with the same fault plan the final output is
/// byte-identical to the uninterrupted run; on a fault-free plan the
/// total modeled seconds and recovery counters are byte-identical too.
/// (With live faults exact cost equality is not guaranteed: a
/// corruption that stale scratch data masked in the original run is
/// detected against the resume's fresh scratch buffers and priced as an
/// extra retry, and a fallback restart discards the abandoned
/// pipeline's partial seconds while a resume keeps the checkpoint's
/// committed seconds.) Kernel reports cover only the re-executed
/// remainder. The checkpoint's counters are folded into the returned
/// report.
///
/// If a resumed block exhausts its retries and fallback is allowed, the
/// driver re-sorts the checkpoint state on the Thrust pipeline (the
/// state is a permutation of the padded input, so sorting it yields the
/// same output).
///
/// # Errors
/// [`SortError::CheckpointInvalid`] when validation fails, otherwise the
/// [`simulate_sort_robust`] contract.
pub fn resume_sort_robust<K: SortKey>(
    checkpoint: &SortCheckpoint,
    config: &RobustConfig,
    plan: &FaultPlan,
) -> Result<RobustSortRun<K>, SortError> {
    checkpoint.validate_as::<K>()?;
    let algo = if checkpoint.algorithm == SortAlgorithm::CfMerge.label() {
        SortAlgorithm::CfMerge
    } else if checkpoint.algorithm == SortAlgorithm::ThrustMergesort.label() {
        SortAlgorithm::ThrustMergesort
    } else {
        return Err(SortError::CheckpointInvalid {
            reason: format!("unknown algorithm {:?}", checkpoint.algorithm),
        });
    };
    let cfg = &config.base;
    if (cfg.params.e, cfg.params.u) != (checkpoint.e, checkpoint.u) {
        return Err(SortError::CheckpointInvalid {
            reason: format!(
                "checkpoint captured at (E={}, u={}) cannot resume under (E={}, u={})",
                checkpoint.e, checkpoint.u, cfg.params.e, cfg.params.u
            ),
        });
    }
    validate_sort_config(cfg)?;

    let mut stats = RunStats::default();
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut algo_used = algo;
    let first = run_pipeline::<K>(
        &[],
        algo,
        cfg,
        config,
        plan,
        false,
        &mut stats,
        Some(checkpoint),
        &mut CkptCtl::noop(),
    )?;
    let run = match first {
        Ok(run) => run,
        Err(block_failure) if config.allow_fallback => {
            degradations.push(Degradation::Fallback {
                from: algo_used,
                to: SortAlgorithm::ThrustMergesort,
                reason: format!(
                    "resumed {} block {} failed verification after {} attempts",
                    block_failure.kernel, block_failure.block, block_failure.attempts
                ),
            });
            stats.counters.fallbacks += 1;
            algo_used = SortAlgorithm::ThrustMergesort;
            // Restart from the checkpoint state as input: a permutation
            // of the padded input, so its sort is the same output (the
            // sentinels sort to the tail and are truncated off).
            let keys = checkpoint.state_keys::<K>();
            match run_pipeline(
                &keys,
                algo_used,
                cfg,
                config,
                plan,
                true,
                &mut stats,
                None,
                &mut CkptCtl::noop(),
            )? {
                Ok(mut run) => {
                    run.output.truncate(checkpoint.n);
                    run.n = checkpoint.n;
                    run.simulated_seconds += checkpoint.seconds_so_far;
                    run
                }
                Err(f) => return Err(f.into_error()),
            }
        }
        Err(block_failure) => return Err(block_failure.into_error()),
    };

    let mut counters = checkpoint.counters;
    counters.merge(&stats.counters);
    Ok(RobustSortRun {
        run,
        algorithm: algo_used,
        report: RecoveryReport {
            counters,
            injections: stats.injections,
            detections: stats.detections,
            degradations,
            backoff_seconds: stats.backoff_seconds,
            retry_seconds: stats.retry_seconds,
            spike_seconds: stats.spike_seconds,
            hedges: stats.hedges,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::InputSpec;
    use crate::sort::pipeline::simulate_sort;
    use crate::verify::verify_sorted_permutation;
    use cfmerge_gpu_sim::fault::{FaultKind, FaultSite, Persistence};

    fn small_rcfg() -> RobustConfig {
        RobustConfig::new(SortConfig::with_params(SortParams::new(5, 32)))
    }

    fn site(kernel: u32, block: u32, kind: FaultKind, persistence: Persistence) -> FaultSite {
        FaultSite { kernel, block, phase: 1, kind, persistence }
    }

    #[test]
    fn clean_run_matches_plain_pipeline_exactly() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 11 }.generate(4 * 160 + 7);
        for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
            let plain = simulate_sort(&input, algo, &rcfg.base);
            let robust =
                simulate_sort_robust(&input, algo, &rcfg, &FaultPlan::none()).expect("clean run");
            assert_eq!(robust.run.output, plain.output);
            assert_eq!(robust.run.simulated_seconds, plain.simulated_seconds, "{algo:?}");
            assert_eq!(robust.run.kernels.len(), plain.kernels.len());
            assert_eq!(robust.algorithm, algo);
            assert!(robust.report.is_clean());
            assert_eq!(robust.report.counters, RecoveryCounters::default());
        }
    }

    #[test]
    fn transient_fault_is_detected_and_retried() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 12 }.generate(4 * 160);
        let plan = FaultPlan::from_sites(vec![site(
            0,
            0,
            FaultKind::StuckBank { bank: 0, bit: 4 },
            Persistence::Transient,
        )]);
        let r = simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &plan)
            .expect("transient fault must recover");
        verify_sorted_permutation(&input, &r.run.output).expect("output exactly sorted");
        assert_eq!(r.algorithm, SortAlgorithm::CfMerge, "no fallback needed");
        assert!(r.report.counters.faults_injected >= 1);
        assert_eq!(r.report.counters.faults_detected, 1);
        assert_eq!(r.report.counters.blocks_retried, 1);
        assert_eq!(r.report.counters.retries, 1);
        assert_eq!(r.report.counters.fallbacks, 0);
        assert!(r.report.backoff_seconds > 0.0);
        assert!(r.report.retry_seconds > 0.0);
        let plain = simulate_sort(&input, SortAlgorithm::CfMerge, &rcfg.base);
        assert!(
            r.run.simulated_seconds > plain.simulated_seconds,
            "recovery must cost modeled time"
        );
    }

    #[test]
    fn merge_pass_fault_recovers_via_checksum_additivity() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 21 }.generate(4 * 160);
        let plan = FaultPlan::from_sites(vec![site(
            1,
            1,
            FaultKind::StuckBank { bank: 3, bit: 7 },
            Persistence::Transient,
        )]);
        let r = simulate_sort_robust(&input, SortAlgorithm::ThrustMergesort, &rcfg, &plan)
            .expect("merge-pass fault must recover");
        verify_sorted_permutation(&input, &r.run.output).expect("output exactly sorted");
        assert_eq!(r.report.detections[0].kernel, "merge-pass-0");
        assert_eq!(r.report.counters.retries, 1);
    }

    #[test]
    fn sticky_fault_degrades_to_fallback() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 13 }.generate(2 * 160);
        let plan = FaultPlan::from_sites(vec![site(
            0,
            1,
            FaultKind::StuckBank { bank: 1, bit: 2 },
            Persistence::Sticky,
        )]);
        let r = simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &plan)
            .expect("sticky fault must recover via fallback");
        verify_sorted_permutation(&input, &r.run.output).expect("output exactly sorted");
        assert_eq!(r.algorithm, SortAlgorithm::ThrustMergesort);
        assert_eq!(r.report.counters.fallbacks, 1);
        assert!(matches!(r.report.degradations[0], Degradation::Fallback { .. }));
        // Detected on the first try and on both retries before degrading.
        assert_eq!(r.report.counters.faults_detected, 1 + u64::from(rcfg.max_retries));
    }

    #[test]
    fn sticky_fault_without_fallback_is_typed() {
        let mut rcfg = small_rcfg();
        rcfg.allow_fallback = false;
        let input = InputSpec::UniformRandom { seed: 14 }.generate(160);
        let plan = FaultPlan::from_sites(vec![site(
            0,
            0,
            FaultKind::StuckBank { bank: 1, bit: 2 },
            Persistence::Sticky,
        )]);
        match simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &plan) {
            Err(SortError::UnrecoverableFault { kernel, block, attempts, .. }) => {
                assert_eq!(kernel, "blocksort");
                assert_eq!(block, 0);
                assert_eq!(attempts, rcfg.max_retries + 1);
            }
            other => panic!("expected UnrecoverableFault, got {other:?}"),
        }
    }

    #[test]
    fn permanent_fault_is_unrecoverable_even_with_fallback() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 15 }.generate(160);
        let plan = FaultPlan::from_sites(vec![site(
            0,
            0,
            FaultKind::StuckBank { bank: 0, bit: 1 },
            Persistence::Permanent,
        )]);
        match simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &plan) {
            Err(SortError::UnrecoverableFault { .. }) => {}
            other => panic!("expected UnrecoverableFault, got {other:?}"),
        }
    }

    #[test]
    fn unlaunchable_config_substitutes_params_and_reports() {
        let mut rcfg = RobustConfig::new(SortConfig::with_params(SortParams::new(15, 2048)));
        let input = InputSpec::UniformRandom { seed: 16 }.generate(10_000);
        let r = simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &FaultPlan::none())
            .expect("must degrade, not fail");
        verify_sorted_permutation(&input, &r.run.output).expect("output exactly sorted");
        assert_eq!(r.algorithm, SortAlgorithm::ThrustMergesort);
        assert!(matches!(r.report.degradations[0], Degradation::ParamsSubstituted { .. }));
        assert!(matches!(r.report.degradations[1], Degradation::Fallback { .. }));
        rcfg.allow_fallback = false;
        match simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &FaultPlan::none()) {
            Err(SortError::Unlaunchable { .. }) => {}
            other => panic!("expected Unlaunchable, got {other:?}"),
        }
    }

    #[test]
    fn latency_spike_costs_time_but_needs_no_retry() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 17 }.generate(160);
        let plan = FaultPlan::from_sites(vec![site(
            0,
            0,
            FaultKind::LatencySpike { cycles: 1_000_000 },
            Persistence::Transient,
        )]);
        let r = simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &plan).expect("ok");
        assert!(r.run.output.is_sorted());
        assert_eq!(r.report.counters.faults_detected, 0);
        assert_eq!(r.report.counters.retries, 0);
        assert!(r.report.spike_seconds > 0.0);
        let plain = simulate_sort(&input, SortAlgorithm::CfMerge, &rcfg.base);
        assert!(r.run.simulated_seconds > plain.simulated_seconds);
    }

    #[test]
    fn empty_and_single_inputs_are_fine() {
        let rcfg = small_rcfg();
        let r = simulate_sort_robust::<u32>(&[], SortAlgorithm::CfMerge, &rcfg, &FaultPlan::none())
            .expect("empty");
        assert!(r.run.output.is_empty());
        let r = simulate_sort_robust(&[42u32], SortAlgorithm::CfMerge, &rcfg, &FaultPlan::none())
            .expect("single");
        assert_eq!(r.run.output, vec![42]);
    }

    #[test]
    fn pipeline_shape_matches_driver() {
        let p = SortParams::new(5, 32); // tile = 160
        assert_eq!(pipeline_shape(0, &p), Vec::<u64>::new());
        assert_eq!(pipeline_shape(1, &p), vec![1]);
        assert_eq!(pipeline_shape(160, &p), vec![1]);
        assert_eq!(pipeline_shape(161, &p), vec![2, 2]);
        assert_eq!(pipeline_shape(4 * 160, &p), vec![4, 4, 4]);
    }

    #[test]
    fn hedging_cuts_straggler_latency_and_is_priced() {
        let mut rcfg = small_rcfg();
        rcfg.hedge = HedgeConfig::on();
        let input = InputSpec::UniformRandom { seed: 31 }.generate(8 * 160);
        // One block of the block-sort launch stalls for half a million
        // cycles; the other seven are clean, so it is a clear p95 outlier.
        let plan = FaultPlan::from_sites(vec![site(
            0,
            3,
            FaultKind::LatencySpike { cycles: 500_000 },
            Persistence::Transient,
        )]);
        let hedged =
            simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &plan).expect("hedged run");
        verify_sorted_permutation(&input, &hedged.run.output).expect("output exactly sorted");
        assert_eq!(hedged.report.hedges.launched, 1);
        // The spike is transient: it does not re-fire on the duplicate
        // (attempt 1), so the hedge wins and the spike cost vanishes.
        assert_eq!(hedged.report.hedges.won, 1);
        assert_eq!(hedged.report.hedges.cycles_saved, 500_000);
        assert!(hedged.report.hedges.hedge_seconds > 0.0);
        assert_eq!(hedged.report.counters.hedges_launched, 1);
        assert_eq!(hedged.report.counters.hedges_won, 1);
        assert_eq!(hedged.report.spike_seconds, 0.0);

        let mut unhedged_cfg = small_rcfg();
        unhedged_cfg.hedge = HedgeConfig::default();
        let unhedged = simulate_sort_robust(&input, SortAlgorithm::CfMerge, &unhedged_cfg, &plan)
            .expect("unhedged run");
        assert_eq!(unhedged.run.output, hedged.run.output);
        assert!(
            hedged.run.simulated_seconds < unhedged.run.simulated_seconds,
            "winning hedge must beat eating the spike: {} vs {}",
            hedged.run.simulated_seconds,
            unhedged.run.simulated_seconds
        );
    }

    #[test]
    fn hedging_is_bit_identical_on_fault_free_runs() {
        let mut rcfg = small_rcfg();
        rcfg.hedge = HedgeConfig::on();
        let input = InputSpec::UniformRandom { seed: 32 }.generate(4 * 160 + 9);
        let plain = simulate_sort(&input, SortAlgorithm::CfMerge, &rcfg.base);
        let r = simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &FaultPlan::none())
            .expect("clean run");
        assert_eq!(r.run.output, plain.output);
        assert_eq!(r.run.simulated_seconds, plain.simulated_seconds);
        assert_eq!(r.report.hedges, HedgeCounters::default());
    }

    #[test]
    fn sticky_spike_hedge_loses_and_costs_time() {
        let mut rcfg = small_rcfg();
        rcfg.hedge = HedgeConfig::on();
        let input = InputSpec::UniformRandom { seed: 33 }.generate(8 * 160);
        // A sticky spike re-fires on the hedged duplicate too: the hedge
        // loses and the straggler's latency stands.
        let plan = FaultPlan::from_sites(vec![site(
            0,
            5,
            FaultKind::LatencySpike { cycles: 500_000 },
            Persistence::Sticky,
        )]);
        let r = simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &plan).expect("ok");
        assert_eq!(r.report.hedges.launched, 1);
        assert_eq!(r.report.hedges.won, 0);
        assert!(r.report.spike_seconds > 0.0, "losing hedge leaves the spike in place");
    }

    #[test]
    fn checkpoints_capture_every_pass() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 34 }.generate(4 * 160 + 17);
        let (run, checkpoints) = simulate_sort_robust_checkpointed(
            &input,
            SortAlgorithm::CfMerge,
            &rcfg,
            &FaultPlan::none(),
            CheckpointPolicy::every_pass(),
        )
        .expect("checkpointed run");
        // One capture point per launch: blocksort plus every merge pass.
        let launches = pipeline_shape(input.len(), &rcfg.base.params).len();
        assert_eq!(checkpoints.len(), launches);
        for (i, cp) in checkpoints.iter().enumerate() {
            assert_eq!(cp.completed_passes, i);
            cp.validate_as::<u32>().expect("every captured checkpoint validates");
        }
        // Capture must not perturb the run itself.
        let plain = simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &FaultPlan::none())
            .expect("plain robust run");
        assert_eq!(run.run.output, plain.run.output);
        assert_eq!(run.run.simulated_seconds, plain.run.simulated_seconds);
    }

    #[test]
    fn kill_and_resume_is_byte_identical_without_redoing_passes() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 35 }.generate(8 * 160 + 3);
        // A transient fault in a *late* merge pass: it must still fire
        // (and be recovered) in the resumed half of the run.
        let plan = FaultPlan::from_sites(vec![site(
            3,
            1,
            FaultKind::StuckBank { bank: 2, bit: 5 },
            Persistence::Transient,
        )]);
        let whole = simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &plan)
            .expect("uninterrupted run");

        let killed = simulate_sort_robust_checkpointed(
            &input,
            SortAlgorithm::CfMerge,
            &rcfg,
            &plan,
            CheckpointPolicy::kill_after(1),
        );
        let cp = match killed {
            Err(SortError::Interrupted { after_pass: 1, checkpoint }) => *checkpoint,
            other => panic!("expected Interrupted after pass 1, got {other:?}"),
        };
        let resumed = resume_sort_robust::<u32>(&cp, &rcfg, &plan).expect("resume");
        assert_eq!(resumed.run.output, whole.run.output, "byte-identical output");
        assert_eq!(
            resumed.run.simulated_seconds, whole.run.simulated_seconds,
            "modeled seconds match the uninterrupted run"
        );
        assert_eq!(resumed.report.counters, whole.report.counters);
        // Only the remaining passes were executed: no blocksort, no
        // merge-pass-0 (completed_passes = 1 covers both).
        assert_eq!(resumed.run.kernels.first().map(|k| k.name.as_str()), Some("merge-pass-1"));
        assert!(resumed.run.kernels.len() < whole.run.kernels.len());
    }

    #[test]
    fn tampered_checkpoint_is_rejected() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 36 }.generate(4 * 160);
        let cp = match simulate_sort_robust_checkpointed(
            &input,
            SortAlgorithm::CfMerge,
            &rcfg,
            &FaultPlan::none(),
            CheckpointPolicy::kill_after(0),
        ) {
            Err(SortError::Interrupted { checkpoint, .. }) => *checkpoint,
            other => panic!("expected Interrupted, got {other:?}"),
        };
        let mut bad = cp.clone();
        bad.state[7] ^= 0x10;
        assert!(matches!(
            resume_sort_robust::<u32>(&bad, &rcfg, &FaultPlan::none()),
            Err(SortError::CheckpointInvalid { .. })
        ));
        // Wrong launch config for the checkpoint.
        let other_cfg = RobustConfig::new(SortConfig::with_params(SortParams::new(4, 64)));
        assert!(matches!(
            resume_sort_robust::<u32>(&cp, &other_cfg, &FaultPlan::none()),
            Err(SortError::CheckpointInvalid { .. })
        ));
    }

    #[test]
    fn report_serializes() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 19 }.generate(160);
        let plan = FaultPlan::from_sites(vec![site(
            0,
            0,
            FaultKind::SharedBitFlip { bit: 3 },
            Persistence::Transient,
        )]);
        let r = simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg, &plan).expect("ok");
        let j = r.report.to_json();
        assert!(j.req("counters").is_ok());
        let back: RecoveryCounters =
            RecoveryCounters::from_json(j.req("counters").unwrap()).expect("round trip");
        assert_eq!(back, r.report.counters);
    }
}
