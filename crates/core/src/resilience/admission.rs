//! Admission control: a bounded work queue with typed load shedding.
//!
//! The service's queue has an optional capacity; when a submission finds
//! it full, the configured [`ShedPolicy`] decides who pays:
//!
//! * [`ShedPolicy::RejectNewest`] — the incoming job is refused with
//!   [`SortError::Overloaded`](crate::sort::SortError::Overloaded).
//! * [`ShedPolicy::RejectLargest`] — the largest queued job (by key
//!   count; ties to the newest) is evicted with a typed
//!   [`SortError::Shed`](crate::sort::SortError::Shed) if it is at least
//!   as large as the incoming job; otherwise the incoming job is
//!   refused.
//! * [`ShedPolicy::DeadlineAware`] — queued jobs whose deadlines cannot
//!   be met given the queue's modeled cost ahead of them (estimated by
//!   [`estimate_sort_seconds`]) are shed first; if nothing is
//!   unreachable, the incoming job is refused.
//!
//! Shed jobs never execute — not even partially — which
//! `tests/resilience_proptests.rs` asserts.

use crate::recovery::pipeline_shape;
use crate::sort::pipeline::SortConfig;

/// Who gets shed when the queue is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the incoming job (classic bounded queue).
    #[default]
    RejectNewest,
    /// Evict the largest queued job in favor of the incoming one.
    RejectLargest,
    /// Shed queued jobs that cannot meet their deadline anyway.
    DeadlineAware,
}

impl ShedPolicy {
    /// Stable label for artifacts and typed errors.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ShedPolicy::RejectNewest => "reject-newest",
            ShedPolicy::RejectLargest => "reject-largest",
            ShedPolicy::DeadlineAware => "deadline-aware",
        }
    }
}

/// Queue bound and shed policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum admitted (pending, non-shed, non-cancelled) jobs; `None`
    /// (the default) is the legacy unbounded queue.
    pub capacity: Option<usize>,
    /// Policy when a submission finds the queue full.
    pub policy: ShedPolicy,
}

impl AdmissionConfig {
    /// A bounded queue of `capacity` jobs under `policy`.
    #[must_use]
    pub fn bounded(capacity: usize, policy: ShedPolicy) -> Self {
        Self { capacity: Some(capacity), policy }
    }
}

/// Cheap deterministic estimate of a sort's modeled seconds: per launch,
/// the fixed launch overhead plus one read and one write of the padded
/// buffer at the device's full-occupancy effective bandwidth. Used only
/// for deadline-aware admission (the real run is priced exactly by the
/// timing model); it deliberately ignores conflicts, retries, and
/// occupancy, so it is a *lower* bound — a job it calls unreachable
/// truly is.
#[must_use]
pub fn estimate_sort_seconds(n: usize, cfg: &SortConfig) -> f64 {
    let shape = pipeline_shape(n, &cfg.params);
    if shape.is_empty() {
        return 0.0;
    }
    let n_pad = shape[0] as usize * cfg.params.tile();
    let bytes_per_pass = (n_pad * 2 * std::mem::size_of::<u32>()) as f64;
    let bw = cfg.device.mem_bandwidth * cfg.timing.bw_efficiency_full;
    shape.len() as f64 * (cfg.timing.launch_overhead_s + bytes_per_pass / bw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SortParams;

    #[test]
    fn estimate_is_monotone_and_cheap_lower_bound() {
        let cfg = SortConfig::with_params(SortParams::new(5, 32));
        assert_eq!(estimate_sort_seconds(0, &cfg), 0.0);
        let small = estimate_sort_seconds(160, &cfg);
        let big = estimate_sort_seconds(16 * 160, &cfg);
        assert!(small > 0.0);
        assert!(big > small);
        // Lower bound vs the exact pipeline price.
        let input = crate::inputs::InputSpec::UniformRandom { seed: 1 }.generate(4 * 160);
        let run = crate::sort::pipeline::simulate_sort(
            &input,
            crate::sort::pipeline::SortAlgorithm::CfMerge,
            &cfg,
        );
        assert!(estimate_sort_seconds(input.len(), &cfg) <= run.simulated_seconds);
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(ShedPolicy::RejectNewest.label(), "reject-newest");
        assert_eq!(ShedPolicy::RejectLargest.label(), "reject-largest");
        assert_eq!(ShedPolicy::DeadlineAware.label(), "deadline-aware");
    }
}
