//! Versioned checkpoint/resume for multi-pass sorts.
//!
//! A [`SortCheckpoint`] captures the state of a robust sort after a
//! completed, *verified* merge pass: the padded working buffer, the pass
//! index, per-run multiset checksums (see [`crate::verify`]), and the
//! modeled seconds spent so far. `resume_sort_robust`
//! (see [`crate::recovery`]) validates the checkpoint — structural
//! shape, per-run sortedness, and every block checksum — before skipping
//! any work, so a corrupted checkpoint is a typed
//! [`SortError::CheckpointInvalid`], never silent corruption.
//!
//! Serialization is `cfmerge-json`. Because the JSON layer stores
//! numbers as `f64` (exact only up to 2⁵³), all 64-bit checksums and key
//! bit patterns are serialized as `0x`-prefixed hex strings.

use crate::sort::error::SortError;
use crate::sort::key::SortKey;
use crate::verify::{mix64, multiset_checksum};
use cfmerge_json::{FromJson, Json, JsonError, ToJson};

use crate::recovery::RecoveryCounters;

/// Current checkpoint schema version. Bump on any incompatible change;
/// [`SortCheckpoint::validate_as`] rejects other versions.
pub const CHECKPOINT_VERSION: u64 = 1;

/// When (and whether) the robust driver captures checkpoints, and
/// whether it simulates a kill for chaos testing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Capture a checkpoint after the block sort and after every
    /// completed merge pass.
    pub every_pass: bool,
    /// Simulate a kill: interrupt the run (with
    /// [`SortError::Interrupted`] carrying a checkpoint) once this many
    /// merge passes have completed. `Some(0)` interrupts right after the
    /// block sort. `None` never interrupts.
    pub kill_after_pass: Option<usize>,
}

impl CheckpointPolicy {
    /// Capture after every pass, never kill.
    #[must_use]
    pub fn every_pass() -> Self {
        Self { every_pass: true, kill_after_pass: None }
    }

    /// Simulate a kill after `pass` completed merge passes (0 = right
    /// after the block sort).
    #[must_use]
    pub fn kill_after(pass: usize) -> Self {
        Self { every_pass: false, kill_after_pass: Some(pass) }
    }

    /// `true` when the policy neither captures nor kills — the driver
    /// skips all checkpoint bookkeeping (the zero-cost default).
    #[must_use]
    pub fn is_noop(&self) -> bool {
        !self.every_pass && self.kill_after_pass.is_none()
    }
}

/// Verified mid-sort state: everything `resume_sort_robust` needs to
/// finish the sort without re-executing completed passes.
///
/// Key bit patterns (not typed keys) are stored so the checkpoint type
/// stays non-generic; [`SortCheckpoint::state_keys`] rebuilds typed keys
/// via [`FaultWord::from_fault_bits`](cfmerge_gpu_sim::fault::FaultWord::from_fault_bits).
#[derive(Debug, Clone, PartialEq)]
pub struct SortCheckpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Label of the pipeline that was running (`SortAlgorithm::label`).
    pub algorithm: String,
    /// Elements per thread of the run.
    pub e: usize,
    /// Threads per block of the run.
    pub u: usize,
    /// Unpadded input length.
    pub n: usize,
    /// Padded working-buffer length (`runs · tile`).
    pub n_pad: usize,
    /// Sorted-run width of `state` (tile after the block sort, doubling
    /// each merge pass).
    pub width: usize,
    /// Merge passes completed (0 = only the block sort has run).
    pub completed_passes: usize,
    /// Modeled seconds spent producing this state (retries, backoff, and
    /// spikes included).
    pub seconds_so_far: f64,
    /// Recovery counters accumulated up to the capture point.
    pub counters: RecoveryCounters,
    /// Multiset checksum of the padded input (sentinels included) — the
    /// whole-run invariant every pass must preserve.
    pub input_checksum: u64,
    /// Per-run multiset checksums of `state` (`n_pad / width` runs).
    pub block_checksums: Vec<u64>,
    /// Key bit patterns of the working buffer, length `n_pad`.
    pub state: Vec<u64>,
}

impl SortCheckpoint {
    /// Capture the working buffer after a verified pass.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn capture<K: SortKey>(
        algorithm: &str,
        (e, u): (usize, usize),
        n: usize,
        width: usize,
        completed_passes: usize,
        seconds_so_far: f64,
        counters: RecoveryCounters,
        input_checksum: u64,
        state: &[K],
    ) -> Self {
        let block_checksums = state.chunks(width).map(multiset_checksum).collect::<Vec<u64>>();
        Self {
            version: CHECKPOINT_VERSION,
            algorithm: algorithm.to_string(),
            e,
            u,
            n,
            n_pad: state.len(),
            width,
            completed_passes,
            seconds_so_far,
            counters,
            input_checksum,
            block_checksums,
            state: state.iter().map(|k| k.to_fault_bits()).collect(),
        }
    }

    /// Rebuild the typed working buffer.
    #[must_use]
    pub fn state_keys<K: SortKey>(&self) -> Vec<K> {
        self.state.iter().map(|&bits| K::from_fault_bits(bits)).collect()
    }

    /// The multiset checksum of the *unpadded* input, derived from the
    /// padded checksum by additivity (`padded = input + pad·mix(sentinel)`).
    #[must_use]
    pub fn unpadded_input_checksum<K: SortKey>(&self) -> u64 {
        let pad = (self.n_pad - self.n) as u64;
        self.input_checksum.wrapping_sub(pad.wrapping_mul(mix64(K::MAX_SENTINEL.to_fault_bits())))
    }

    /// Validate the checkpoint for resuming as key type `K`: version,
    /// structural shape, every run sorted under `K`'s order, every block
    /// checksum matching, and the whole state matching `input_checksum`.
    ///
    /// # Errors
    /// [`SortError::CheckpointInvalid`] naming the first violated
    /// invariant.
    pub fn validate_as<K: SortKey>(&self) -> Result<(), SortError> {
        let bad = |reason: String| Err(SortError::CheckpointInvalid { reason });
        if self.version != CHECKPOINT_VERSION {
            return bad(format!(
                "version {} (this build reads {CHECKPOINT_VERSION})",
                self.version
            ));
        }
        if self.state.len() != self.n_pad {
            return bad(format!("state has {} keys, n_pad says {}", self.state.len(), self.n_pad));
        }
        if self.n > self.n_pad || self.n == 0 {
            return bad(format!("n={} out of range for n_pad={}", self.n, self.n_pad));
        }
        if self.width == 0 || !self.n_pad.is_multiple_of(self.width) {
            return bad(format!("width {} does not tile n_pad {}", self.width, self.n_pad));
        }
        if self.block_checksums.len() != self.n_pad / self.width {
            return bad(format!(
                "{} block checksums for {} runs",
                self.block_checksums.len(),
                self.n_pad / self.width
            ));
        }
        let keys = self.state_keys::<K>();
        let mut whole = 0u64;
        for (run, (chunk, &expect)) in
            keys.chunks(self.width).zip(&self.block_checksums).enumerate()
        {
            if let Some(i) = (1..chunk.len()).find(|&i| chunk[i - 1] > chunk[i]) {
                return bad(format!("run {run} not sorted (inversion at offset {})", i - 1));
            }
            let got = multiset_checksum(chunk);
            if got != expect {
                return bad(format!(
                    "run {run} checksum mismatch (expect {expect:#018x}, got {got:#018x})"
                ));
            }
            whole = whole.wrapping_add(got);
        }
        if whole != self.input_checksum {
            return bad(format!(
                "state checksum {whole:#018x} does not match input checksum {:#018x}",
                self.input_checksum
            ));
        }
        Ok(())
    }
}

fn hex(v: u64) -> Json {
    Json::from(format!("{v:#018x}"))
}

fn from_hex(v: &Json) -> Result<u64, JsonError> {
    let s = v.as_str().ok_or_else(|| JsonError::new("expected hex string"))?;
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| JsonError::new(format!("hex string missing 0x prefix: {s:?}")))?;
    u64::from_str_radix(digits, 16)
        .map_err(|e| JsonError::new(format!("bad hex string {s:?}: {e}")))
}

impl ToJson for SortCheckpoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::from(self.version)),
            ("algorithm", Json::from(self.algorithm.as_str())),
            ("e", Json::from(self.e)),
            ("u", Json::from(self.u)),
            ("n", Json::from(self.n)),
            ("n_pad", Json::from(self.n_pad)),
            ("width", Json::from(self.width)),
            ("completed_passes", Json::from(self.completed_passes)),
            ("seconds_so_far", Json::from(self.seconds_so_far)),
            ("counters", self.counters.to_json()),
            ("input_checksum", hex(self.input_checksum)),
            ("block_checksums", Json::arr(self.block_checksums.iter().map(|&c| hex(c)))),
            ("state", Json::arr(self.state.iter().map(|&k| hex(k)))),
        ])
    }
}

impl FromJson for SortCheckpoint {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let hex_list = |key: &str| -> Result<Vec<u64>, JsonError> {
            v.req(key)?
                .as_arr()
                .ok_or_else(|| JsonError::new(format!("{key} must be an array")))?
                .iter()
                .map(from_hex)
                .collect()
        };
        Ok(Self {
            version: v.field("version")?,
            algorithm: v.field("algorithm")?,
            e: v.field("e")?,
            u: v.field("u")?,
            n: v.field("n")?,
            n_pad: v.field("n_pad")?,
            width: v.field("width")?,
            completed_passes: v.field("completed_passes")?,
            seconds_so_far: v.field("seconds_so_far")?,
            counters: v.field("counters")?,
            input_checksum: from_hex(v.req("input_checksum")?)?,
            block_checksums: hex_list("block_checksums")?,
            state: hex_list("state")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SortCheckpoint {
        let state: Vec<u32> = vec![1, 3, 5, 7, 2, 4, 6, 8];
        let input_checksum = multiset_checksum(&state);
        SortCheckpoint::capture::<u32>(
            "cf-merge",
            (1, 4),
            7,
            4,
            0,
            1.5e-5,
            RecoveryCounters::default(),
            input_checksum,
            &state,
        )
    }

    #[test]
    fn capture_validate_roundtrip() {
        let cp = sample();
        assert_eq!(cp.version, CHECKPOINT_VERSION);
        assert_eq!(cp.block_checksums.len(), 2);
        cp.validate_as::<u32>().expect("fresh capture must validate");
        let back = SortCheckpoint::from_json(&cp.to_json()).expect("round trip");
        assert_eq!(back, cp);
        back.validate_as::<u32>().expect("deserialized copy must validate");
    }

    #[test]
    fn corruption_is_detected() {
        let mut cp = sample();
        cp.state[2] ^= 1 << 9;
        assert!(matches!(cp.validate_as::<u32>(), Err(SortError::CheckpointInvalid { .. })));

        let mut cp = sample();
        cp.state.swap(0, 1); // breaks run sortedness, preserves checksums? no: order only
        assert!(matches!(cp.validate_as::<u32>(), Err(SortError::CheckpointInvalid { .. })));

        let mut cp = sample();
        cp.version = 99;
        assert!(cp.validate_as::<u32>().is_err());

        let mut cp = sample();
        cp.block_checksums[1] = cp.block_checksums[1].wrapping_add(1);
        assert!(cp.validate_as::<u32>().is_err());
    }

    #[test]
    fn hex_fields_preserve_full_64_bits() {
        // A value above 2^53 — would silently lose precision as an f64
        // JSON number, hence the hex-string representation.
        let big = 0xDEAD_BEEF_CAFE_F00Du64;
        assert_eq!(from_hex(&hex(big)).unwrap(), big);
        assert!(from_hex(&Json::from("deadbeef")).is_err());
        assert!(from_hex(&Json::from(1.0)).is_err());
    }

    #[test]
    fn unpadded_checksum_subtracts_sentinels() {
        let real: Vec<u32> = vec![9, 1, 5];
        let mut padded = real.clone();
        padded.resize(4, u32::MAX);
        let cp = SortCheckpoint::capture::<u32>(
            "thrust",
            (1, 4),
            3,
            4,
            0,
            0.0,
            RecoveryCounters::default(),
            multiset_checksum(&padded),
            &padded,
        );
        assert_eq!(cp.unpadded_input_checksum::<u32>(), multiset_checksum(&real));
    }
}
