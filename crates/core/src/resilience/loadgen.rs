//! Open-loop load generation for the cluster service.
//!
//! Seeded, deterministic arrival processes over modeled time: the same
//! [`LoadGenConfig`] always yields the same job stream (arrival times,
//! tenants, priorities, input data), so a traffic scenario can be
//! pinned in CI. Arrival jitter uses only rational arithmetic (no
//! transcendental functions), keeping the stream bit-identical across
//! platforms; the diurnal curve is a triangle wave for the same reason.
//!
//! The flood shape generates Theorem-8 worst-case inputs
//! ([`InputSpec::worst_case`]) — the paper's own adversarial workload
//! turned into an overload scenario.

use crate::inputs::InputSpec;
use crate::params::SortParams;
use crate::sort::pipeline::SortAlgorithm;

/// Priority class of a cluster job. Dispatch picks strictly by class
/// first ([`Priority::rank`]), then per-tenant fairness inside a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive foreground work.
    #[default]
    Interactive,
    /// Throughput-oriented background work.
    Batch,
    /// Runs only when nothing else wants the device.
    BestEffort,
}

impl Priority {
    /// Dispatch rank: lower runs first.
    #[must_use]
    pub fn rank(&self) -> u8 {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::BestEffort => 2,
        }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::BestEffort => "best-effort",
        }
    }
}

/// Shape of the arrival process (rates are modeled-time Hz — jobs here
/// run in microseconds, so realistic rates are 1e4–1e6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficShape {
    /// Constant rate with deterministic per-gap jitter.
    Steady {
        /// Mean arrival rate.
        rate_hz: f64,
    },
    /// Rate swings between `base_hz` and `peak_hz` on a triangle wave of
    /// the given period.
    Diurnal {
        /// Off-peak arrival rate.
        base_hz: f64,
        /// Peak arrival rate.
        peak_hz: f64,
        /// Full wave period in modeled seconds.
        period_s: f64,
    },
    /// Steady background plus simultaneous bursts every `burst_every_s`.
    Bursty {
        /// Background arrival rate.
        base_hz: f64,
        /// Burst spacing in modeled seconds.
        burst_every_s: f64,
        /// Jobs per burst (all arrive at the same instant).
        burst_size: usize,
    },
    /// A flood of Theorem-8 worst-case inputs at a fixed rate.
    WorstCaseFlood {
        /// Arrival rate of the flood.
        rate_hz: f64,
    },
}

impl TrafficShape {
    /// Short label for scenario names and reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TrafficShape::Steady { .. } => "steady",
            TrafficShape::Diurnal { .. } => "diurnal",
            TrafficShape::Bursty { .. } => "bursty",
            TrafficShape::WorstCaseFlood { .. } => "flood",
        }
    }
}

/// One generated job, ready to submit to the cluster.
#[derive(Debug, Clone)]
pub struct ClusterRequest {
    /// Arrival time in modeled seconds.
    pub at_s: f64,
    /// Submission label.
    pub label: String,
    /// Owning tenant.
    pub tenant: String,
    /// Priority class.
    pub priority: Priority,
    /// Keys to sort.
    pub input: Vec<u32>,
    /// Pipeline to run.
    pub algo: SortAlgorithm,
    /// Optional deadline on the job's modeled execution time.
    pub deadline_s: Option<f64>,
}

/// Deterministic load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Arrival process.
    pub shape: TrafficShape,
    /// Total jobs to generate.
    pub jobs: usize,
    /// Tenants to draw from (round-robin seeded assignment).
    pub tenants: Vec<String>,
    /// Stream seed: same seed, same stream.
    pub seed: u64,
    /// Sort parameters (sets the tile size and the worst-case shape).
    pub params: SortParams,
    /// Minimum job size in tiles.
    pub min_tiles: usize,
    /// Maximum job size in tiles (inclusive).
    pub max_tiles: usize,
    /// Deadline applied to every [`Priority::Interactive`] job.
    pub interactive_deadline_s: Option<f64>,
}

impl LoadGenConfig {
    /// A small default stream: steady traffic, two tenants, 2–3-tile
    /// jobs.
    #[must_use]
    pub fn steady(seed: u64, jobs: usize, rate_hz: f64) -> Self {
        Self {
            shape: TrafficShape::Steady { rate_hz },
            jobs,
            tenants: vec!["tenant-a".into(), "tenant-b".into()],
            seed,
            params: SortParams::new(5, 32),
            min_tiles: 2,
            max_tiles: 3,
            interactive_deadline_s: None,
        }
    }

    /// Generate the job stream, sorted by arrival time (stable: jobs in
    /// the same burst keep generation order).
    #[must_use]
    pub fn generate(&self) -> Vec<ClusterRequest> {
        let mut state = self.seed ^ 0x10AD_6E4E;
        let mut requests = Vec::with_capacity(self.jobs);
        let mut t = 0.0f64;
        let mut burst_k = 0u64; // next burst index for Bursty
        for i in 0..self.jobs {
            let at_s = match self.shape {
                TrafficShape::Steady { rate_hz } => {
                    t += jittered_gap(&mut state, rate_hz);
                    t
                }
                TrafficShape::Diurnal { base_hz, peak_hz, period_s } => {
                    // Triangle wave: 0 at phase 0 and 1, 1 at phase 0.5.
                    let phase = (t / period_s).fract();
                    let tri = 1.0 - (2.0 * phase - 1.0).abs();
                    let rate = base_hz + (peak_hz - base_hz) * tri;
                    t += jittered_gap(&mut state, rate);
                    t
                }
                TrafficShape::Bursty { base_hz, burst_every_s, burst_size } => {
                    // Fill each burst completely before resuming the
                    // steady background between bursts.
                    let in_burst = i % (burst_size + 4) < burst_size;
                    if in_burst {
                        let burst_t = (burst_k as f64) * burst_every_s;
                        if i % (burst_size + 4) == burst_size - 1 {
                            burst_k += 1;
                        }
                        t = t.max(burst_t);
                        burst_t
                    } else {
                        t += jittered_gap(&mut state, base_hz);
                        t
                    }
                }
                TrafficShape::WorstCaseFlood { rate_hz } => {
                    t += 1.0 / rate_hz;
                    t
                }
            };

            let tenant = self.tenants
                [(splitmix64(&mut state) % self.tenants.len().max(1) as u64) as usize]
                .clone();
            let priority = match splitmix64(&mut state) % 10 {
                0..=4 => Priority::Interactive,
                5..=7 => Priority::Batch,
                _ => Priority::BestEffort,
            };
            let tile = self.params.tile();
            let tiles = self.min_tiles
                + (splitmix64(&mut state) % (self.max_tiles - self.min_tiles + 1) as u64) as usize;
            let tail = (splitmix64(&mut state) % 8) as usize;
            // The Theorem-8 builder needs n = tile · 2^k exactly: round
            // the tile count down to a power of two and drop the tail.
            let n = match self.shape {
                TrafficShape::WorstCaseFlood { .. } => {
                    tile << (usize::BITS - 1 - tiles.leading_zeros())
                }
                _ => tiles * tile + tail,
            };
            let input_seed = splitmix64(&mut state);
            let spec = match self.shape {
                TrafficShape::WorstCaseFlood { .. } => InputSpec::worst_case(self.params),
                _ => match splitmix64(&mut state) % 4 {
                    0 => InputSpec::UniformRandom { seed: input_seed },
                    1 => InputSpec::FewDistinct { seed: input_seed, distinct: 7 },
                    2 => InputSpec::NearlySorted { seed: input_seed, swaps: 9 },
                    _ => InputSpec::RandomPermutation { seed: input_seed },
                },
            };
            let deadline_s = match priority {
                Priority::Interactive => self.interactive_deadline_s,
                _ => None,
            };
            requests.push(ClusterRequest {
                at_s,
                label: format!("{}/{}/job-{i}", self.shape.label(), tenant),
                tenant,
                priority,
                input: spec.generate(n),
                algo: SortAlgorithm::CfMerge,
                deadline_s,
            });
        }
        requests.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        requests
    }
}

/// A deterministic arrival gap around `1 / rate`: uniform jitter in
/// `[0.5, 1.5) / rate` from a dyadic fraction (exact in f64).
fn jittered_gap(state: &mut u64, rate_hz: f64) -> f64 {
    let u = (splitmix64(state) % (1 << 20)) as f64 / (1u64 << 20) as f64;
    (0.5 + u) / rate_hz
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_time_sorted() {
        for shape in [
            TrafficShape::Steady { rate_hz: 5e4 },
            TrafficShape::Diurnal { base_hz: 2e4, peak_hz: 1e5, period_s: 1e-3 },
            TrafficShape::Bursty { base_hz: 2e4, burst_every_s: 2e-4, burst_size: 4 },
            TrafficShape::WorstCaseFlood { rate_hz: 1e5 },
        ] {
            let cfg = LoadGenConfig { shape, ..LoadGenConfig::steady(7, 24, 5e4) };
            let a = cfg.generate();
            let b = cfg.generate();
            assert_eq!(a.len(), 24);
            assert!(a.iter().zip(&b).all(|(x, y)| {
                x.at_s == y.at_s
                    && x.input == y.input
                    && x.tenant == y.tenant
                    && x.priority == y.priority
            }));
            assert!(a.windows(2).all(|w| w[0].at_s <= w[1].at_s), "{shape:?} not sorted");
            assert!(a.iter().all(|r| r.at_s.is_finite() && r.at_s >= 0.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = LoadGenConfig::steady(1, 16, 5e4).generate();
        let b = LoadGenConfig::steady(2, 16, 5e4).generate();
        assert!(a.iter().zip(&b).any(|(x, y)| x.at_s != y.at_s || x.input != y.input));
    }

    #[test]
    fn flood_generates_worst_case_inputs() {
        let cfg = LoadGenConfig {
            shape: TrafficShape::WorstCaseFlood { rate_hz: 1e5 },
            ..LoadGenConfig::steady(3, 4, 1e5)
        };
        let reqs = cfg.generate();
        // Worst-case inputs are a deterministic function of (params, n):
        // two same-size flood jobs carry identical adversarial inputs.
        let by_n: Vec<_> = reqs.iter().map(|r| (r.input.len(), &r.input)).collect();
        for (n, input) in &by_n {
            let expect = InputSpec::worst_case(cfg.params).generate(*n);
            assert_eq!(**input, expect);
        }
    }

    #[test]
    fn bursts_arrive_simultaneously() {
        let cfg = LoadGenConfig {
            shape: TrafficShape::Bursty { base_hz: 1e4, burst_every_s: 3e-4, burst_size: 5 },
            ..LoadGenConfig::steady(11, 27, 1e4)
        };
        let reqs = cfg.generate();
        // The first burst lands at t = 0: at least `burst_size` jobs
        // share that timestamp exactly.
        let at_zero = reqs.iter().filter(|r| r.at_s == 0.0).count();
        assert!(at_zero >= 5, "expected a simultaneous burst at t=0, got {at_zero}");
    }
}
