//! Per-(pipeline, launch-config) circuit breakers (Nygard's *Release
//! It!* pattern), driven by the recovery-counter stream and scheduled in
//! modeled time.
//!
//! A breaker watches the outcomes of jobs routed at its launch config.
//! `failure_threshold` consecutive failures (an unrecoverable fault, or
//! a run rescued only by the Thrust fallback) open it; while open, jobs
//! are quarantined onto the known-good config
//! ([`SortParams::known_good_default`](crate::params::SortParams::known_good_default))
//! instead of the poisoned one — or, when a tuning ladder is installed
//! ([`crate::tuning`]), onto the next certified rung below the tripped
//! one. After `cooldown_s` modeled seconds the breaker
//! half-opens and the next job probes the original config: success
//! closes the breaker, failure re-opens it for another cooldown. All
//! transitions are logged with their modeled timestamps, and the legal
//! transition set is exactly
//! `closed→open→half-open→{closed, open}` — property-tested in
//! `tests/resilience_proptests.rs`.

use cfmerge_json::{Json, ToJson};

/// Breaker policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Master switch; `false` (the default) routes everything normally.
    pub enabled: bool,
    /// Consecutive failures that open the breaker.
    pub failure_threshold: u32,
    /// Modeled seconds the breaker stays open before half-opening for a
    /// probe.
    pub cooldown_s: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { enabled: false, failure_threshold: 3, cooldown_s: 5e-3 }
    }
}

impl BreakerConfig {
    /// Default thresholds, switched on.
    #[must_use]
    pub fn on() -> Self {
        Self { enabled: true, ..Self::default() }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: jobs route to their requested config.
    Closed,
    /// Tripped: jobs are quarantined onto the known-good config until
    /// the cooldown elapses.
    Open,
    /// Cooldown elapsed: the next job probes the requested config.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label for artifacts.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// One logged state change, stamped with the modeled service clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerTransition {
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// Modeled service time of the change.
    pub at_s: f64,
}

impl ToJson for BreakerTransition {
    fn to_json(&self) -> Json {
        Json::obj([
            ("from", Json::from(self.from.label())),
            ("to", Json::from(self.to.label())),
            ("at_s", Json::from(self.at_s)),
        ])
    }
}

/// Where the breaker routes the next job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Requested config, outcome feeds the breaker.
    Normal,
    /// Substituted known-good config, outcome does *not* feed the
    /// breaker (a quarantined run says nothing about the poisoned
    /// config).
    Quarantine,
    /// Requested config as a half-open probe; the outcome decides
    /// closed vs re-open.
    Probe,
}

/// One breaker instance (the service keeps one per (pipeline, E, u)).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    open_until_s: f64,
    transitions: Vec<BreakerTransition>,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self::new()
    }
}

impl CircuitBreaker {
    /// A closed (healthy) breaker.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until_s: 0.0,
            transitions: Vec::new(),
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Every transition so far, in order, with modeled timestamps.
    #[must_use]
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// Times the breaker has opened (first trips and probe failures).
    #[must_use]
    pub fn opens(&self) -> u64 {
        self.transitions.iter().filter(|t| t.to == BreakerState::Open).count() as u64
    }

    fn transition(&mut self, to: BreakerState, at_s: f64) {
        self.transitions.push(BreakerTransition { from: self.state, to, at_s });
        self.state = to;
    }

    /// Route the next job at modeled time `now_s`. May move an open
    /// breaker to half-open when the cooldown has elapsed.
    pub fn route(&mut self, now_s: f64) -> Route {
        match self.state {
            BreakerState::Closed => Route::Normal,
            BreakerState::Open if now_s >= self.open_until_s => {
                self.transition(BreakerState::HalfOpen, now_s);
                Route::Probe
            }
            BreakerState::Open => Route::Quarantine,
            BreakerState::HalfOpen => Route::Probe,
        }
    }

    /// Feed the outcome of a `Normal` or `Probe` run that finished at
    /// modeled time `now_s`. Quarantined runs must not be fed.
    pub fn on_outcome(&mut self, success: bool, now_s: f64, config: &BreakerConfig) {
        match self.state {
            BreakerState::Closed => {
                if success {
                    self.consecutive_failures = 0;
                } else {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= config.failure_threshold {
                        self.open_until_s = now_s + config.cooldown_s;
                        self.transition(BreakerState::Open, now_s);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if success {
                    self.consecutive_failures = 0;
                    self.transition(BreakerState::Closed, now_s);
                } else {
                    self.consecutive_failures = config.failure_threshold;
                    self.open_until_s = now_s + config.cooldown_s;
                    self.transition(BreakerState::Open, now_s);
                }
            }
            // An open breaker receives no outcomes (everything routed
            // while open was quarantined); tolerate the call.
            BreakerState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig { enabled: true, failure_threshold: 2, cooldown_s: 1.0 }
    }

    #[test]
    fn trips_after_threshold_then_quarantines() {
        let c = cfg();
        let mut b = CircuitBreaker::new();
        assert_eq!(b.route(0.0), Route::Normal);
        b.on_outcome(false, 0.1, &c);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.route(0.1), Route::Normal);
        b.on_outcome(false, 0.2, &c);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.route(0.3), Route::Quarantine, "cooldown not elapsed");
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let c = cfg();
        let mut b = CircuitBreaker::new();
        b.on_outcome(false, 0.0, &c);
        b.on_outcome(true, 0.1, &c);
        b.on_outcome(false, 0.2, &c);
        assert_eq!(b.state(), BreakerState::Closed, "streak broken by success");
    }

    #[test]
    fn probe_after_cooldown_closes_or_reopens() {
        let c = cfg();
        let mut b = CircuitBreaker::new();
        b.on_outcome(false, 0.0, &c);
        b.on_outcome(false, 0.0, &c); // open until 1.0
        assert_eq!(b.route(1.0), Route::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_outcome(false, 1.1, &c); // probe fails: re-open until 2.1
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.route(2.0), Route::Quarantine);
        assert_eq!(b.route(2.2), Route::Probe);
        b.on_outcome(true, 2.3, &c);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens(), 2);
        // The transition log is exactly the legal chain.
        let log: Vec<(BreakerState, BreakerState)> =
            b.transitions().iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            log,
            vec![
                (BreakerState::Closed, BreakerState::Open),
                (BreakerState::Open, BreakerState::HalfOpen),
                (BreakerState::HalfOpen, BreakerState::Open),
                (BreakerState::Open, BreakerState::HalfOpen),
                (BreakerState::HalfOpen, BreakerState::Closed),
            ]
        );
    }
}
