//! Deterministic discrete-event scheduler over modeled time.
//!
//! The cluster layer (`crate::resilience::cluster`) is an event
//! simulation: arrivals, device faults, restarts, completions, and
//! migration hand-offs all happen at modeled timestamps. This module's
//! [`EventQueue`] is the single ordering authority for those events:
//! events pop in `(time, push-sequence)` order, so two runs that push
//! the same events in the same order pop them identically — there is no
//! wall clock, no hash-map iteration order, and no thread scheduling
//! anywhere in the loop. That property is what makes every cluster
//! artifact bit-stable.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: a payload due at a modeled timestamp, tagged
/// with the monotonically increasing sequence number of its `push` (the
/// deterministic tie-break for simultaneous events).
#[derive(Debug, Clone, PartialEq)]
pub struct Event<T> {
    /// Modeled due time in seconds.
    pub at_s: f64,
    /// Push sequence number (unique per queue, monotonically increasing).
    pub seq: u64,
    /// The event itself.
    pub payload: T,
}

/// Min-heap keyed on `(at_s, seq)`. `f64` times are compared with
/// `total_cmp`; non-finite times are a caller bug and rejected by
/// `push` via `debug_assert`.
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
}

struct HeapEntry<T>(Event<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other.0.at_s.total_cmp(&self.0.at_s).then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `payload` at modeled time `at_s`; returns the sequence
    /// number assigned to the event.
    pub fn push(&mut self, at_s: f64, payload: T) -> u64 {
        debug_assert!(at_s.is_finite(), "event times must be finite modeled seconds");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event { at_s, seq, payload }));
        seq
    }

    /// Pop the earliest event (ties broken by push order).
    pub fn pop(&mut self) -> Option<Event<T>> {
        self.heap.pop().map(|e| e.0)
    }

    /// Due time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.0.at_s)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_push_order() {
        let mut q = EventQueue::new();
        q.push(2.0, "late");
        q.push(1.0, "early-a");
        q.push(1.0, "early-b");
        q.push(0.5, "first");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["first", "early-a", "early-b", "late"]);
    }

    #[test]
    fn simultaneous_events_keep_fifo_order_exhaustively() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            // Three distinct timestamps, pushed interleaved.
            q.push(f64::from(i % 3), i);
        }
        let mut last = (f64::NEG_INFINITY, 0u64);
        while let Some(e) = q.pop() {
            assert!(e.at_s > last.0 || (e.at_s == last.0 && e.seq > last.1));
            last = (e.at_s, e.seq);
        }
    }

    #[test]
    fn identical_push_sequences_pop_identically() {
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..64u64 {
                // A deterministic but scrambled time pattern.
                let t = ((i * 37) % 11) as f64 * 1e-6;
                q.push(t, i);
            }
            std::iter::from_fn(move || q.pop())
                .map(|e| (e.at_s, e.seq, e.payload))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(3.5, ());
        q.push(1.5, ());
        assert_eq!(q.peek_time(), Some(1.5));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().at_s, 1.5);
        assert_eq!(q.peek_time(), Some(3.5));
    }
}
