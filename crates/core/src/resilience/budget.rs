//! Service-wide retry budget: a deterministic token bucket that prevents
//! correlated faults from multiplying priced retry launches.
//!
//! Each retry execution costs one token. Before a job runs, the service
//! grants it an effective per-block retry cap of
//! `min(job cap, ⌊tokens⌋)`; after the run, the retries the job actually
//! performed are debited (clamped at zero). With the bucket empty a job
//! runs verify-once and degrades straight to the Thrust fallback on its
//! first detection — the retry *storm* is gone, the recovery guarantee
//! is not. Tokens refill at a configured rate per modeled second of
//! service time, so the budget is a pure function of the (deterministic)
//! job sequence.
//!
//! Granularity caveat, documented honestly: the grant is made per job,
//! so a single job with many failing blocks can spend more than the
//! tokens remaining at grant time (bounded by `cap · failing blocks`).
//! The debit clamps at zero and the next grant sees the empty bucket.

/// Retry-budget policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudgetConfig {
    /// Bucket capacity in retry tokens; `None` (the default) is an
    /// unlimited budget — every job keeps its full per-job retry cap.
    pub capacity: Option<f64>,
    /// Tokens restored per modeled second of service time.
    pub refill_per_second: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        Self { capacity: None, refill_per_second: 0.0 }
    }
}

impl RetryBudgetConfig {
    /// A bounded budget of `tokens` with no refill.
    #[must_use]
    pub fn bounded(tokens: f64) -> Self {
        Self { capacity: Some(tokens), refill_per_second: 0.0 }
    }
}

/// The bucket itself. All mutation is driven by the service's modeled
/// clock, never wall time.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    config: RetryBudgetConfig,
    tokens: f64,
    last_refill_s: f64,
}

impl RetryBudget {
    /// A full bucket under `config`.
    #[must_use]
    pub fn new(config: RetryBudgetConfig) -> Self {
        Self { config, tokens: config.capacity.unwrap_or(0.0), last_refill_s: 0.0 }
    }

    /// Tokens currently in the bucket; `None` when the budget is
    /// unlimited.
    #[must_use]
    pub fn tokens(&self) -> Option<f64> {
        self.config.capacity.map(|_| self.tokens)
    }

    /// Accrue refill up to modeled time `now_s` (monotonic; earlier
    /// times are ignored).
    pub fn advance_to(&mut self, now_s: f64) {
        let Some(cap) = self.config.capacity else { return };
        if now_s > self.last_refill_s {
            self.tokens = (self.tokens
                + (now_s - self.last_refill_s) * self.config.refill_per_second)
                .min(cap);
            self.last_refill_s = now_s;
        }
    }

    /// The effective per-block retry cap for the next job:
    /// `min(want, ⌊tokens⌋)`, or `want` unchanged when unlimited. Grants
    /// consume nothing — spend is debited after the run.
    #[must_use]
    pub fn grant(&self, want: u32) -> u32 {
        match self.config.capacity {
            None => want,
            Some(_) => want.min(self.tokens.max(0.0).floor() as u32),
        }
    }

    /// Debit the retries a job actually executed, clamping at zero.
    pub fn debit(&mut self, retries: u64) {
        if self.config.capacity.is_some() {
            self.tokens = (self.tokens - retries as f64).max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_transparent() {
        let mut b = RetryBudget::new(RetryBudgetConfig::default());
        assert_eq!(b.grant(3), 3);
        b.debit(1_000_000);
        b.advance_to(1e9);
        assert_eq!(b.grant(2), 2);
        assert_eq!(b.tokens(), None);
    }

    #[test]
    fn bounded_budget_drains_clamps_and_refills() {
        let mut b =
            RetryBudget::new(RetryBudgetConfig { capacity: Some(4.0), refill_per_second: 2.0 });
        assert_eq!(b.grant(3), 3);
        b.debit(3);
        assert_eq!(b.tokens(), Some(1.0));
        assert_eq!(b.grant(3), 1);
        b.debit(10); // overdraw clamps at zero, never negative
        assert_eq!(b.tokens(), Some(0.0));
        assert_eq!(b.grant(3), 0);
        b.advance_to(1.0); // +2 tokens
        assert_eq!(b.tokens(), Some(2.0));
        assert_eq!(b.grant(3), 2);
        b.advance_to(100.0); // refill saturates at capacity
        assert_eq!(b.tokens(), Some(4.0));
        b.advance_to(50.0); // time never runs backwards
        assert_eq!(b.tokens(), Some(4.0));
    }
}
